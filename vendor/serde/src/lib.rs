//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde stack. Instead of real serde's
//! `Serializer`/`Deserializer` visitor machinery, this crate uses a small
//! self-describing [`Value`] model: `Serialize` converts into a `Value`,
//! `Deserialize` converts back out of one. `serde_json` (also vendored)
//! prints and parses that model as JSON with the same external shape real
//! serde_json produces for the derives this workspace uses.
//!
//! The public surface is intentionally tiny: the two traits, the derive
//! re-exports, and a few helpers the derive macro expands against.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// The self-describing data model every serializable type round-trips
/// through. Numbers keep their integer/float distinction so `u64`
/// sequence numbers survive exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Ordered key/value pairs (insertion order preserved — maps to a JSON
    /// object).
    Map(Vec<(String, Value)>),
}

/// Convert into the [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Convert out of the [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization failure: which type rejected which shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Self::new(format!("expected {expected}, found {}", value_kind(found)))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Self::new(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

fn value_kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

// ---- helpers the derive macro expands against --------------------------

/// Expect a map value (derived named-field structs).
pub fn expect_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DeError::type_mismatch(ty, other)),
    }
}

/// Expect a sequence of exactly `len` values (derived tuple shapes).
pub fn expect_seq<'v>(v: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => {
            Err(DeError::new(format!("expected {len} elements for {ty}, found {}", s.len())))
        }
        other => Err(DeError::type_mismatch(ty, other)),
    }
}

/// Pull a named field out of a map. A missing field deserializes from
/// `Null`, so `Option` fields tolerate omission.
pub fn de_field<T: Deserialize>(
    m: &[(String, Value)],
    field: &str,
    ty: &str,
) -> Result<T, DeError> {
    let v = m.iter().find(|(k, _)| k == field).map(|(_, v)| v).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{field}: {e}")))
}

// ---- primitive impls ---------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    // Real serde_json prints non-finite floats as null;
                    // accept that back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` fields (machine profile names and the like) round-trip
/// by leaking the deserialized string — acceptable for the small,
/// rarely-deserialized config structs that use them.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::type_mismatch("char", other)),
        }
    }
}

// ---- container impls ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected {N} elements, found {n}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

/// Maps serialize as a sequence of `[key, value]` pairs: lossless for any
/// key type (real serde_json restricts object keys to strings; nothing in
/// this workspace depends on that shape).
macro_rules! impl_map {
    ($name:ident, $($bound:tt)*) => {
        impl<K: Serialize + $($bound)*, V: Serialize> Serialize for $name<K, V> {
            fn to_value(&self) -> Value {
                Value::Seq(
                    self.iter()
                        .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)*, V: Deserialize> Deserialize for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(s) => s
                        .iter()
                        .map(|pair| match pair {
                            Value::Seq(kv) if kv.len() == 2 => {
                                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                            }
                            other => Err(DeError::type_mismatch("[key, value] pair", other)),
                        })
                        .collect(),
                    other => Err(DeError::type_mismatch("map", other)),
                }
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, Eq + std::hash::Hash);

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                let s = expect_seq(v, LEN, "tuple")?;
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

macro_rules! impl_smart_ptr {
    ($($ptr:ident :: $ctor:ident),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $ptr<T> {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok($ptr::$ctor(T::from_value(v)?))
            }
        }
    )*};
}

impl_smart_ptr!(Arc::new, Rc::new, Box::new);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::type_mismatch("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_and_containers_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let mut m = BTreeMap::new();
        m.insert(1u64, "a".to_string());
        assert_eq!(BTreeMap::<u64, String>::from_value(&m.to_value()).unwrap(), m);
        let arr = [1.0f32, 2.0, 3.0];
        assert_eq!(<[f32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
