//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use,
//! backed by a plain wall-clock timing loop: each benchmark warms up
//! once, then runs up to `sample_size` samples (time-boxed so `cargo
//! bench` stays fast) and reports the mean per-iteration time. No
//! statistical analysis, HTML reports, or baselines.

use std::time::{Duration, Instant};

/// Per-benchmark time box so a full bench binary finishes in seconds.
const SAMPLE_TIME_BOX: Duration = Duration::from_millis(250);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// A benchmark label with an attached parameter, e.g. `encode/rle`.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self { param: p.to_string() }
    }

    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        Self { param: format!("{name}/{p}") }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Real criterion finalizes reports here; nothing to do.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.param);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; records how long the measured routine
/// ran and for how many iterations.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }

    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }

    pub fn iter_batched_ref<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> T,
    {
        let mut input = setup();
        let start = Instant::now();
        let out = routine(&mut input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

fn run_bench<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up / first sample (also primes caches and lazy statics).
    let box_start = Instant::now();
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    for _ in 1..sample_size.max(2) {
        if box_start.elapsed() > SAMPLE_TIME_BOX {
            break;
        }
        f(&mut b);
    }
    let iters = b.iters.max(1);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {:>12.0} ns/iter ({} samples){rate}", per_iter * 1e9, iters);
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
/// declares a function running every target against the shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                    c.final_summary();
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        assert!(ran >= 1);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &41u32, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
    }
}
