//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro surface and the strategy combinators
//! this workspace's property tests use, backed by a deterministic
//! SplitMix64 generator. Differences from the real crate: no shrinking
//! (a failing case panics with the assertion message directly) and no
//! persisted failure seeds — every run replays the same fixed seed
//! sequence, so failures are reproducible by construction.

use std::ops::Range;

// ---- deterministic RNG -------------------------------------------------

/// SplitMix64: tiny, fast, and plenty uniform for test-input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- test runner -------------------------------------------------------

/// Mirror of proptest's config; only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A rejected/failed case. With no shrinking, assertions panic directly;
/// this type exists so `prop_assume!`-style early returns type-check.
#[derive(Debug)]
pub struct TestCaseError {
    pub msg: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Run `cases` iterations of `f` with a deterministic seed sequence.
pub fn run_cases<F>(config: ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut rng = TestRng::seeded(
            0xC0FF_EE00_D15E_A5E5 ^ (case as u64).wrapping_mul(0x1234_5678_9ABC_DEF1),
        );
        if let Err(e) = f(&mut rng) {
            panic!("property failed on case {case}: {e}");
        }
    }
}

// ---- strategies --------------------------------------------------------

/// A generator of values of type `Value`. Object-safe so `prop_oneof!`
/// can mix differently-typed strategy arms behind `Box<dyn Strategy>`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_filter` combinator: rejection-samples, panicking if the
/// predicate is too restrictive (real proptest gives up similarly).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed arms (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Integer ranges.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges.
macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as f64;
                (self.start as f64 + rng.unit_f64() * span) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// Arrays of strategies → arrays of values.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String strategies from a regex-like pattern. Supports the subset the
/// tests use: literal characters, `[a-z]`-style classes (with ranges and
/// plain members), and `{m}`/`{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal.
        let atom: Vec<char> = if chars[i] == '[' {
            let close =
                chars[i..].iter().position(|&c| c == ']').expect("unclosed [ in pattern") + i;
            let mut members = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    members.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    members.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            members
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional {m} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close =
                chars[i..].iter().position(|&c| c == '}').expect("unclosed { in pattern") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n}"),
                    n.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad {m}");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let pick = atom[rng.below(atom.len() as u64) as usize];
            out.push(pick);
        }
    }
    out
}

// ---- any / Arbitrary ---------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

// ---- collections -------------------------------------------------------

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros ------------------------------------------------------------

/// The `proptest!` block: each contained `fn` becomes a `#[test]` (the
/// attribute is written at the call site and passed through) that runs
/// its body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                let __body_result: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })();
                __body_result
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// With no shrinking, a failed property assertion just panics — the
/// deterministic seed makes the failure reproducible.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __arms: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::Union::new(__arms)
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Alias module so `prop::collection::vec(...)` resolves as it does
    /// with the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seeded(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = crate::TestRng::seeded(42);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_mixed_params(
            xs in prop::collection::vec(0u32..10, 1..5),
            flag in any::<bool>(),
            pick: usize,
        ) {
            prop_assert!(xs.len() < 5);
            prop_assume!(flag || !flag);
            let _ = pick;
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }
}
