//! Offline stand-in for `rayon`, now backed by real OS threads.
//!
//! Exposes the subset of rayon's API shape this workspace uses —
//! `into_par_iter()` with `map`/`collect`/`reduce`/`for_each`, plus
//! `ThreadPoolBuilder::install` and `current_num_threads` — executed on
//! `std::thread::scope` workers. Unlike real rayon there is no
//! work-stealing pool: each call splits its input into contiguous,
//! order-preserving chunks, one per worker thread, and joins them in
//! submission order. That makes every combinator **deterministic**: the
//! result of `collect` is in input order and the reduction tree of
//! `reduce` depends only on the input length and the thread count, never
//! on scheduling. Determinism is a feature here — simulation tests and
//! the renderer's bit-identical-to-serial guarantee depend on it.
//!
//! Thread-count resolution, strongest first:
//! 1. the innermost active [`ThreadPool::install`] on this thread,
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Thread count forced by an enclosing `ThreadPool::install`.
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    })
}

/// Number of worker threads parallel combinators on this thread will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED.with(|c| c.get()) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builder for a [`ThreadPool`] (API-compatible subset).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.unwrap_or(0) })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that pins the thread count for combinators run under
/// [`ThreadPool::install`]. Workers themselves are spawned per call
/// (scoped), not kept alive — sufficient for the workspace's usage.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        }
    }

    /// Run `op` with this pool's thread count forced for any parallel
    /// combinator invoked (transitively) on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED.with(|c| c.replace(Some(self.current_num_threads())));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Split `items` into at most `parts` contiguous chunks of near-equal
/// length, preserving order.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.clamp(1, items.len().max(1));
    let mut chunks = Vec::with_capacity(parts);
    let total = items.len();
    // Peel chunks off the front so chunk k covers the k-th contiguous
    // range of the input.
    let mut taken = 0;
    for k in 0..parts {
        let want = (total * (k + 1)) / parts - taken;
        taken += want;
        let rest = items.split_off(want);
        chunks.push(items);
        items = rest;
    }
    chunks
}

/// Map `f` over `items` on `threads` scoped workers, returning per-chunk
/// outputs in input order.
fn par_map_chunks<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return vec![items.into_iter().map(f).collect()];
    }
    let chunks = split_chunks(items, threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect()
    })
}

/// Blanket "parallel" conversion: any `IntoIterator` gains
/// `into_par_iter()`, returning a [`ParIter`] over its items.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// The combinators shared by [`ParIter`] and [`ParMap`]. Mirrors the
/// `rayon::iter::ParallelIterator` trait so `use rayon::prelude::*` call
/// sites read identically to the real crate.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Consume into a vector of items, in input order.
    fn into_vec(self) -> Vec<Self::Item>;

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_vec().into_iter().collect()
    }

    fn for_each(self, f: impl Fn(Self::Item) + Sync) {
        self.into_vec();
        let _ = &f;
    }

    /// Deterministic parallel reduction: chunk results are folded in
    /// chunk (= input) order.
    fn reduce(
        self,
        identity: impl Fn() -> Self::Item + Sync,
        op: impl Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    ) -> Self::Item {
        self.into_vec().into_iter().fold(identity(), &op)
    }
}

/// A materialized parallel iterator (input order preserved).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    pub fn with_min_len(self, _n: usize) -> Self {
        self
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_vec(self) -> Vec<T> {
        self.items
    }

    fn for_each(self, f: impl Fn(T) + Sync) {
        let threads = current_num_threads();
        par_map_chunks(self.items, threads, &|item| f(item));
    }

    fn reduce(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T {
        let threads = current_num_threads();
        let chunks = par_map_chunks(self.items, threads, &|x| x);
        chunks.into_iter().map(|c| c.into_iter().fold(identity(), &op)).fold(identity(), &op)
    }
}

/// A mapped parallel iterator: runs `f` on scoped worker threads at the
/// terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParallelIterator for ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    type Item = R;

    fn into_vec(self) -> Vec<R> {
        let threads = current_num_threads();
        let mut out = Vec::with_capacity(self.items.len());
        for chunk in par_map_chunks(self.items, threads, &self.f) {
            out.extend(chunk);
        }
        out
    }

    fn for_each(self, f: impl Fn(R) + Sync) {
        let threads = current_num_threads();
        let map = &self.f;
        par_map_chunks(self.items, threads, &|item| f(map(item)));
    }

    /// Deterministic parallel map-reduce: each worker folds its contiguous
    /// chunk left-to-right, then chunk results fold in chunk order. For a
    /// given input length and thread count the float rounding is fixed;
    /// for associative ops (counters, max) it equals the serial fold.
    fn reduce(self, identity: impl Fn() -> R + Sync, op: impl Fn(R, R) -> R + Sync) -> R {
        let threads = current_num_threads();
        let chunks = par_map_chunks(self.items, threads, &self.f);
        chunks.into_iter().map(|c| c.into_iter().fold(identity(), &op)).fold(identity(), &op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_matches_sequential() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..1000usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn order_preserved_at_any_thread_count() {
        let expect: Vec<usize> = (0..257).collect();
        for n in [1, 2, 3, 8, 64] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..257usize).into_par_iter().map(|i| i).collect());
            assert_eq!(got, expect, "{n} threads");
        }
    }

    #[test]
    fn reduce_sums_counters() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let total =
            pool.install(|| (1..=100u64).into_par_iter().map(|i| i).reduce(|| 0, |a, b| a + b));
        assert_eq!(total, 5050);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn split_chunks_covers_all() {
        let chunks = split_chunks((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_ok() {
        let v: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn really_runs_on_worker_threads() {
        use std::sync::Mutex;
        let ids: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64u32).into_par_iter().map(|i| i).for_each(|_| {
                let id = std::thread::current().id();
                let mut g = ids.lock().unwrap();
                if !g.contains(&id) {
                    g.push(id);
                }
            });
        });
        // At least one worker distinct from the caller (scoped spawn).
        let g = ids.lock().unwrap();
        assert!(!g.is_empty());
        assert!(g.iter().any(|&id| id != std::thread::current().id()));
    }
}
