//! Offline stand-in for `rayon`.
//!
//! Exposes `into_par_iter()` with rayon's API shape but sequential
//! execution: the workspace's parallel call sites compile and produce
//! identical results, just without the thread pool. Determinism is a
//! feature here — simulation tests stay reproducible.

pub mod prelude {
    pub use super::IntoParallelIterator;
}

/// Blanket "parallel" conversion: any `IntoIterator` gains
/// `into_par_iter()`, returning its ordinary sequential iterator (which
/// already has `map`/`filter`/`collect`/...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..10usize).map(|i| i * i).collect::<Vec<_>>());
    }
}
