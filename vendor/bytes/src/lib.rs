//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is a cheaply-cloneable immutable buffer (shared via `Arc`),
//! [`BytesMut`] a growable buffer with the big-endian `put_*` writers and
//! the `advance`/`split_to` readers the frame codec uses. Only the API
//! surface this workspace exercises is implemented.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// Discard the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

/// Write-side append operations (big-endian, matching the real crate's
/// default `put_*` byte order).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::new(data.to_vec()) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Self::copy_from_slice(&a)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data.as_slice() == other.data.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.as_slice().hash(state);
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off the first `at` bytes as a new buffer, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, cnt: usize) {
        self.data.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { data: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes (mut)\"", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_writers_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u16(0xCADF);
        b.put_u8(7);
        b.put_u32(0x01020304);
        assert_eq!(&b[..], &[0xCA, 0xDF, 7, 1, 2, 3, 4]);
    }

    #[test]
    fn advance_and_split_to() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        b.advance(2);
        assert_eq!(&b[..], b"cdef");
        let head = b.split_to(3);
        assert_eq!(&head[..], b"cde");
        assert_eq!(&b[..], b"f");
        assert_eq!(&head.freeze()[..], b"cde");
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
    }
}
