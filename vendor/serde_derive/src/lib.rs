//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unavailable in this build environment,
//! so the workspace vendors a minimal serde stack (see `vendor/serde`).
//! This proc-macro crate implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against that stack's value model: derived
//! impls convert to/from `serde::Value`, mirroring real serde's external
//! JSON shape (structs → objects, unit variants → strings, data variants
//! → single-key objects, newtype structs → transparent).
//!
//! Supported shapes are exactly what this workspace uses: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple, struct variants).
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item, just deep enough to generate impls.
struct Item {
    name: String,
    body: ItemBody,
}

enum ItemBody {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error tokens")
}

/// Skip a run of outer attributes (`#[...]`), e.g. doc comments.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token slice on top-level commas. Angle brackets are plain
/// punctuation in a token stream (only `()`/`[]`/`{}` nest as groups), so
/// generic arguments like `BTreeMap<NodeId, Node>` need explicit `<`/`>`
/// depth tracking to keep their commas from splitting a field.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field group: each comma-separated chunk is
/// `attrs vis name : type...`.
fn named_field_names(group: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_commas(group) {
        let mut i = skip_attrs(&chunk, 0);
        i = skip_vis(&chunk, i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("vendored serde_derive does not support generic type `{name}`"));
        }
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemBody::NamedStruct(named_field_names(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemBody::TupleStruct(split_commas(&inner).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemBody::UnitStruct,
            other => return Err(format!("unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for chunk in split_commas(&inner) {
                    let mut j = skip_attrs(&chunk, 0);
                    let vname = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => return Err(format!("expected variant name, found {other:?}")),
                    };
                    j += 1;
                    let fields = match chunk.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantFields::Named(named_field_names(&inner)?)
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantFields::Tuple(split_commas(&inner).len())
                        }
                        // Unit variant, possibly with a `= discriminant`.
                        _ => VariantFields::Unit,
                    };
                    variants.push(Variant { name: vname, fields });
                }
                ItemBody::Enum(variants)
            }
            other => return Err(format!("unsupported enum body {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, body })
}

// ---- Serialize ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        ItemBody::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemBody::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemBody::TupleStruct(n) => {
            let entries: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        ItemBody::UnitStruct => "::serde::Value::Null".to_string(),
        ItemBody::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---- Deserialize -------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        ItemBody::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__m, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let __m = ::serde::expect_map(__v, {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemBody::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemBody::TupleStruct(n) => {
            let inits: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?")).collect();
            format!(
                "let __s = ::serde::expect_seq(__v, {n}, {name:?})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemBody::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemBody::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantFields::Tuple(n) => Some(format!(
                            "{vn:?} => {{\n\
                             let __s = ::serde::expect_seq(__payload, {n}, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},",
                            (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )),
                        VariantFields::Named(fields) => Some(format!(
                            "{vn:?} => {{\n\
                             let __m = ::serde::expect_map(__payload, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }},",
                            fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(__m, {f:?}, {name:?})?"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )),
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __payload) = &__m[0];\n\
                 let _ = __payload;\n\
                 match __k.as_str() {{\n\
                 {data}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::type_mismatch({name:?}, __other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl"),
        Err(e) => compile_error(&e),
    }
}
