//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`] model as JSON. Only the
//! entry points this workspace uses are provided: [`to_string`],
//! [`to_string_pretty`] (alias), and [`from_str`].

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value to JSON. The vendored printer does not indent; the
/// output is still valid JSON, just compact.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    to_string(value)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- printer -----------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, matching real serde_json closely enough.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json prints non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Handle surrogate pairs for non-BMP characters.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".to_string(), Value::Str("hi \"there\"\n".to_string())),
            ("d".to_string(), Value::I64(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_shortest() {
        let s = to_string(&0.1f64).unwrap();
        assert_eq!(s, "0.1");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 0.1);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Value::Str("héllo ✨ \u{1F600}".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let escaped: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(escaped, Value::Str("\u{1F600}".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
