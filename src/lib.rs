//! Umbrella crate re-exporting the full RAVE public API.
pub use rave_compress as compress;
pub use rave_core as core;
pub use rave_grid as grid;
pub use rave_math as math;
pub use rave_models as models;
pub use rave_net as net;
pub use rave_render as render;
pub use rave_scene as scene;
pub use rave_sim as sim;
pub use rave_store as store;
