//! Render-service bootstrap (§5.3/§5.5).
//!
//! A render service joining a session receives a scene snapshot while
//! live updates are buffered; on arrival the snapshot is installed, the
//! buffer replays, and the replica is "pre-synchronised with [the] data
//! service". Snapshot marshalling goes through the *introspective* path
//! (the paper's measured bottleneck); [`marshal_time_direct`] prices the
//! ablation alternative.

use crate::data_service::DataService;
use crate::ids::{DataServiceId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_grid::{SoapCodec, SoapEnvelope, SoapValue};
use rave_scene::introspect::{marshal_direct, marshal_introspective, MarshalStats};
use rave_scene::{InterestSet, NodeId, SceneTree};
use rave_sim::SimTime;
use rave_store::StoreConfig;
use std::path::Path;

/// CPU time of introspective marshalling under the configured rates.
pub fn marshal_time_introspective(stats: &MarshalStats, cfg: &crate::RaveConfig) -> SimTime {
    SimTime::from_secs(
        stats.field_visits as f64 * cfg.introspect_per_field
            + stats.interface_checks as f64 * cfg.introspect_per_field
            + stats.bytes as f64 * cfg.introspect_per_byte,
    )
}

/// CPU time of direct marshalling of the same tree (ablation).
pub fn marshal_time_direct(stats: &MarshalStats, cfg: &crate::RaveConfig) -> SimTime {
    SimTime::from_secs(stats.bytes as f64 * cfg.direct_per_byte)
}

/// Result of initiating a bootstrap.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapTiming {
    /// When the subscribe handshake completed.
    pub subscribed_at: SimTime,
    /// When the snapshot finished marshalling at the data service.
    pub marshalled_at: SimTime,
    /// When the replica became live (snapshot applied + buffer drained).
    pub ready_at: SimTime,
    /// Snapshot payload size.
    pub snapshot_bytes: u64,
}

/// Connect `rs` to `ds` with the given interest set. Returns the
/// projected timing; the actual state flips happen in scheduled events.
pub fn connect_render_service(
    sim: &mut RaveSim,
    rs_id: RenderServiceId,
    ds_id: DataServiceId,
    interest: InterestSet,
) -> BootstrapTiming {
    let t0 = sim.now();
    let ds_host = sim.world.data(ds_id).host.clone();
    let rs_host = sim.world.render(rs_id).host.clone();

    // 1. SOAP subscribe handshake (discovery/subscription is the one
    //    place SOAP is used, §4.3).
    let codec = SoapCodec::default();
    let subscribe = SoapEnvelope::new("data-service", "subscribe")
        .arg("renderService", SoapValue::Str(rs_id.to_string()))
        .arg("interest", SoapValue::Str(format!("{} roots", interest.roots().count())));
    let soap_cpu = codec.marshal_time(&subscribe) * 2.0;
    let rtt = sim.world.network.round_trip(&rs_host, &ds_host, codec.wire_size(&subscribe), 256);
    let subscribed_at = t0 + soap_cpu + rtt;

    // 2. Snapshot extraction + introspective marshal at the data service.
    let (snapshot, stats) = {
        let ds = sim.world.data(ds_id);
        let snapshot = snapshot_for(&ds.scene, &interest);
        let (_bytes, stats) = marshal_introspective(&snapshot);
        (snapshot, stats)
    };
    let marshal = marshal_time_introspective(&stats, &sim.world.config);
    let marshalled_at = subscribed_at + marshal;

    // 3. Register the buffering subscription, ship the snapshot.
    sim.world.data_mut(ds_id).begin_bootstrap(rs_id, interest.clone());
    sim.world.render_mut(rs_id).bootstrapping = true;
    let arrival = sim.world.send_bytes(marshalled_at, &ds_host, &rs_host, stats.bytes);

    // 4. On arrival: install replica, drain buffered updates in order.
    sim.schedule_at(arrival, move |sim| {
        let now = sim.now();
        let buffered = sim.world.data_mut(ds_id).complete_bootstrap(rs_id);
        let n_buffered = buffered.len();
        {
            let rs = sim.world.render_mut(rs_id);
            // Merge (not replace): nodes that arrived through other paths
            // while the snapshot was in flight — e.g. migration moving
            // work onto a freshly recruited service — must survive.
            rs.scene.merge_subset(&snapshot);
            let mut interest = interest.clone();
            for root in rs.interest.roots() {
                interest.add_root(root);
            }
            interest.refresh(&rs.scene);
            rs.interest = interest;
            for stamped in buffered {
                // Buffered updates may touch nodes outside the snapshot
                // (interest conservatism); ignore those.
                let _ = stamped.update.apply(&mut rs.scene);
            }
            rs.bootstrapping = false;
        }
        sim.world.trace.record(
            now,
            TraceKind::Bootstrap,
            format!("{rs_id} live on {ds_id} ({n_buffered} buffered updates replayed)"),
        );
    });

    BootstrapTiming { subscribed_at, marshalled_at, ready_at: arrival, snapshot_bytes: stats.bytes }
}

/// Connect every render service named by a [`DistributionPlan`], each with
/// an interest set covering exactly its assigned subtrees. Returns the
/// per-service timings in plan order.
pub fn connect_planned(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    plan: &crate::distribution::DistributionPlan,
) -> Vec<(RenderServiceId, BootstrapTiming)> {
    plan.assignments
        .iter()
        .map(|a| {
            let interest = InterestSet::subtrees(a.nodes.iter().copied());
            (a.service, connect_render_service(sim, a.service, ds_id, interest))
        })
        .collect()
}

/// Replace a crashed data service with one recovered from its durable
/// store (§3.1.1's persistence made crash-tolerant).
///
/// The failed instance is dropped from the world; a replacement on
/// `host` rebuilds the session from the latest snapshot checkpoint plus
/// the write-ahead-log tail, keeps the session name, and re-attaches the
/// store so logging continues where it stopped. Every render service the
/// failed instance was serving is re-bootstrapped against the
/// replacement with its original interest set — the §5.5 overlap
/// machinery makes the re-mirror safe against updates published while
/// the snapshots are in flight.
pub fn recover_data_service(
    sim: &mut RaveSim,
    failed: DataServiceId,
    host: &str,
    dir: impl AsRef<Path>,
) -> std::io::Result<DataServiceId> {
    let failed_ds = sim
        .world
        .data_services
        .remove(&failed)
        .unwrap_or_else(|| panic!("no data service {failed} to recover"));
    sim.world.registry.unpublish("RAVE", &failed_ds.host, &failed_ds.name);
    let cfg =
        StoreConfig { checkpoint_every: sim.world.config.checkpoint_every, ..Default::default() };
    let new_id = sim.world.next_data_service_id();
    let (ds, rec) = DataService::recover_from_store(new_id, host, &failed_ds.name, dir, cfg)?;
    sim.world.install_data_service(ds);
    let now = sim.now();
    sim.world.trace.record(
        now,
        TraceKind::Recovery,
        format!(
            "{failed} -> {new_id} on {host}: recovered \"{}\" at seq {} \
             (snapshot seq {}, {} WAL entries replayed), {} subscriber(s) re-mirroring",
            failed_ds.name,
            rec.last_seq,
            rec.snapshot_seq,
            rec.entries.len(),
            failed_ds.subscribers.len(),
        ),
    );
    for (rs_id, sub) in failed_ds.subscribers {
        connect_render_service(sim, rs_id, new_id, sub.interest);
    }
    Ok(new_id)
}

/// The snapshot a subscriber receives: the whole scene, or the interest
/// closure with ancestor orientation (§3.2.5).
pub fn snapshot_for(scene: &SceneTree, interest: &InterestSet) -> SceneTree {
    if interest.is_everything() {
        scene.clone()
    } else {
        let roots: Vec<NodeId> = interest.roots().collect();
        scene.extract_subset(&roots)
    }
}

/// Ablation datum: marshalling times for a scene under both paths.
pub fn marshal_comparison(
    scene: &SceneTree,
    cfg: &crate::RaveConfig,
) -> (SimTime, SimTime, MarshalStats) {
    let (_b, intro_stats) = marshal_introspective(scene);
    let (_b2, direct_stats) = marshal_direct(scene);
    (
        marshal_time_introspective(&intro_stats, cfg),
        marshal_time_direct(&direct_stats, cfg),
        intro_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{publish_update, RaveWorld};
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeKind, SceneUpdate};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn sim_with_scene(polys: usize) -> (RaveSim, DataServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 3));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let mesh = MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; polys],
            texture_bytes: 0,
        };
        let scene = &mut sim.world.data_mut(ds).scene;
        let root = scene.root();
        scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        (sim, ds)
    }

    #[test]
    fn bootstrap_installs_replica() {
        let (mut sim, ds) = sim_with_scene(500);
        let rs = sim.world.spawn_render_service("tower");
        let timing = connect_render_service(&mut sim, rs, ds, InterestSet::everything());
        assert!(sim.world.render(rs).bootstrapping);
        sim.run();
        let rs_ref = sim.world.render(rs);
        assert!(!rs_ref.bootstrapping);
        assert!(rs_ref.scene.find_by_path("/model").is_some());
        assert_eq!(rs_ref.assigned_cost().polygons, 500);
        assert!(timing.ready_at > timing.marshalled_at);
        assert_eq!(sim.world.trace.count(TraceKind::Bootstrap), 1);
    }

    #[test]
    fn updates_during_bootstrap_are_replayed_in_order() {
        // The §5.5 overlap: scene and camera changes published while the
        // snapshot is in flight must be reflected when the replica goes
        // live.
        let (mut sim, ds) = sim_with_scene(200_000); // big: slow marshal
        let rs = sim.world.spawn_render_service("tower");
        connect_render_service(&mut sim, rs, ds, InterestSet::everything());
        // Publish while the bootstrap is still in flight (t=0).
        let id = sim.world.data_mut(ds).scene.allocate_id();
        publish_update(
            &mut sim,
            ds,
            "user",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "mid-flight".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        sim.run();
        assert!(
            sim.world.render(rs).scene.contains(id),
            "replica pre-synchronised with mid-flight update"
        );
        let detail = &sim.world.trace.first_of(TraceKind::Bootstrap).unwrap().detail;
        assert!(detail.contains("1 buffered"), "trace: {detail}");
    }

    #[test]
    fn subset_interest_gets_subset_snapshot() {
        let (mut sim, ds) = sim_with_scene(100);
        // Add a second subtree the subscriber does NOT want.
        let other = {
            let scene = &mut sim.world.data_mut(ds).scene;
            let root = scene.root();
            scene.add_node(root, "other", NodeKind::Group).unwrap()
        };
        let model = sim.world.data(ds).scene.find_by_path("/model").unwrap();
        let rs = sim.world.spawn_render_service("desktop");
        connect_render_service(&mut sim, rs, ds, InterestSet::subtrees([model]));
        sim.run();
        let replica = &sim.world.render(rs).scene;
        assert!(replica.contains(model));
        assert!(!replica.contains(other));
    }

    #[test]
    fn bigger_scenes_bootstrap_slower() {
        let (mut sim_small, ds_s) = sim_with_scene(1_000);
        let rs_s = sim_small.world.spawn_render_service("tower");
        let t_small = connect_render_service(&mut sim_small, rs_s, ds_s, InterestSet::everything());

        let (mut sim_big, ds_b) = sim_with_scene(800_000);
        let rs_b = sim_big.world.spawn_render_service("tower");
        let t_big = connect_render_service(&mut sim_big, rs_b, ds_b, InterestSet::everything());

        assert!(t_big.ready_at.as_secs() > t_small.ready_at.as_secs() * 5.0);
        assert!(t_big.snapshot_bytes > t_small.snapshot_bytes * 100);
    }

    #[test]
    fn introspection_dominates_direct_marshalling() {
        let (sim, ds) = sim_with_scene(100_000);
        let (intro, direct, _) = marshal_comparison(&sim.world.data(ds).scene, &sim.world.config);
        assert!(
            intro.as_secs() > direct.as_secs() * 20.0,
            "introspective {intro} vs direct {direct}"
        );
    }
}
