//! The data service (§3.1.1): "a persistent, central distribution point
//! for the data to be visualized".

use crate::ids::{DataServiceId, RenderServiceId};
use crate::persist::{Persistence, StorePersistence};
use rave_scene::{
    AuditEntry, AuditTrail, CostDirt, InterestIndex, InterestSet, SceneTree, SceneUpdate,
    StampedUpdate, UpdateError,
};
use rave_store::StoreConfig;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A subscriber's delivery state.
#[derive(Debug, Clone)]
pub enum SubState {
    /// Scene snapshot still in flight; live updates are buffered and
    /// replayed on arrival so the replica comes up pre-synchronised
    /// (§5.5: "We overlap update messages with the initial bootstrap
    /// messages, so the remote resource does not miss any updates").
    /// Buffered updates are `Arc`-shared with every other buffering
    /// subscriber — a 10k-client bootstrap storm holds one copy of each
    /// update, not 10k.
    Bootstrapping { buffered: Vec<Arc<StampedUpdate>> },
    /// Replica live; updates stream as they are published.
    Live,
}

/// Running totals of the delivery fan-out a data service has charged
/// through segment multicast, against the unicast baseline. The
/// collab-scale bench and EXPERIMENTS tables read these.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FanoutTotals {
    /// Updates routed to at least one remote receiver.
    pub updates_routed: u64,
    /// Wire transmissions performed (one per receiving segment per
    /// update).
    pub transmissions: u64,
    /// Transmissions unicast would have performed (one per remote
    /// receiver per update).
    pub unicast_transmissions: u64,
    /// Bytes multicast put on the wire.
    pub wire_bytes: u64,
    /// Bytes unicast would have put on the wire.
    pub unicast_wire_bytes: u64,
    /// Receivers skipped because their host left the network topology.
    pub skipped_receivers: u64,
}

impl FanoutTotals {
    pub fn record(&mut self, d: &rave_net::MulticastDelivery) {
        self.updates_routed += 1;
        self.transmissions += d.cost.transmissions as u64;
        self.unicast_transmissions += d.cost.unicast_transmissions as u64;
        self.wire_bytes += d.wire_bytes;
        self.unicast_wire_bytes += d.unicast_wire_bytes;
        self.skipped_receivers += d.cost.skipped as u64;
    }

    /// Multicast wire bytes as a fraction of the unicast baseline
    /// (1.0 when nothing was fanned out).
    pub fn wire_ratio(&self) -> f64 {
        if self.unicast_wire_bytes == 0 {
            return 1.0;
        }
        self.wire_bytes as f64 / self.unicast_wire_bytes as f64
    }
}

/// One render service's subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    pub interest: InterestSet,
    pub state: SubState,
}

/// A data service instance. Multiple sessions may be managed by the same
/// service process; each `DataService` here is one session's distribution
/// point (the paper's "Skull" instance on host "adrenochrome", say).
#[derive(Debug, Clone)]
pub struct DataService {
    pub id: DataServiceId,
    pub host: String,
    /// Session name shown in the registry ("Skull").
    pub name: String,
    /// The master scene.
    pub scene: SceneTree,
    /// The persistent session record.
    pub audit: AuditTrail,
    next_seq: u64,
    pub subscribers: BTreeMap<RenderServiceId, Subscription>,
    /// Optional durable sink: every committed update is appended to it,
    /// with periodic snapshot checkpoints. Shared behind an `Arc` so
    /// clones of the service (mirrors) observe one log, not two
    /// half-written ones.
    persistence: Option<Arc<Mutex<dyn Persistence>>>,
    /// Directory of the attached [`rave_store::Store`], if the sink is
    /// one: failover uses it to recover or log-ship the session without
    /// asking the (dead) service.
    pub store_dir: Option<std::path::PathBuf>,
    /// Trace lines from checkpoints taken inside [`DataService::commit`],
    /// drained by the world into the event trace.
    checkpoint_notes: Vec<String>,
    /// The inverted interest index `route` consults, plus its slot → id
    /// map. Lazily (re)built: subscription changes bump `index_rev`, the
    /// next route rebuilds; structural scene edits are folded in via the
    /// tree's structure-dirt log instead of a rebuild.
    index: InterestIndex,
    index_sub_ids: Vec<RenderServiceId>,
    /// Slot → is the subscriber `Live`? Snapshotted at rebuild (state
    /// flips bump `index_rev`), so routing's hot path never touches the
    /// subscriber map for live matches.
    index_live: Vec<bool>,
    index_rev: u64,
    index_built_rev: u64,
    /// Scratch for `route`'s matched slots, reused across calls.
    route_slots: Vec<rave_scene::SubSlot>,
    /// Multicast-vs-unicast delivery accounting, fed by the world's
    /// publish path.
    pub fanout: FanoutTotals,
}

impl DataService {
    pub fn new(id: DataServiceId, host: &str, name: &str) -> Self {
        Self {
            id,
            host: host.into(),
            name: name.into(),
            scene: SceneTree::new(),
            audit: AuditTrail::new(),
            next_seq: 1,
            subscribers: BTreeMap::new(),
            persistence: None,
            store_dir: None,
            checkpoint_notes: Vec::new(),
            index: InterestIndex::new(),
            index_sub_ids: Vec::new(),
            index_live: Vec::new(),
            index_rev: 1,
            index_built_rev: 0,
            route_slots: Vec::new(),
            fanout: FanoutTotals::default(),
        }
    }

    /// Attach a durable persistence sink: every subsequent commit is
    /// appended to it, and snapshot checkpoints are taken on its cadence.
    pub fn attach_persistence(&mut self, sink: impl Persistence + 'static) {
        self.persistence = Some(Arc::new(Mutex::new(sink)));
    }

    /// Open (or create) a [`rave_store::Store`] at `dir` and attach it.
    pub fn attach_store(
        &mut self,
        dir: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
    ) -> std::io::Result<()> {
        self.attach_persistence(StorePersistence::open(dir.as_ref(), cfg)?);
        self.store_dir = Some(dir.as_ref().to_path_buf());
        Ok(())
    }

    pub fn has_persistence(&self) -> bool {
        self.persistence.is_some()
    }

    /// Drain trace lines from checkpoints taken during recent commits.
    pub fn take_checkpoint_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.checkpoint_notes)
    }

    /// Flush the persistence sink (if any) to stable storage.
    pub fn sync_persistence(&mut self) -> std::io::Result<()> {
        if let Some(p) = &self.persistence {
            let mut p = p.lock().map_err(|_| std::io::Error::other("persistence lock poisoned"))?;
            p.sync()?;
        }
        Ok(())
    }

    /// Rebuild a replacement data service from a durable store directory:
    /// the latest snapshot plus the write-ahead-log tail past it. The
    /// store is re-attached so the replacement keeps logging where the
    /// failed instance stopped, and the audit trail is seeded with the
    /// replayed tail entries. Returns the service and the recovery record
    /// (for tracing: how far the store got, and from which snapshot).
    pub fn recover_from_store(
        id: DataServiceId,
        host: &str,
        name: &str,
        dir: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
    ) -> std::io::Result<(Self, rave_store::Recovery)> {
        let dir = dir.as_ref();
        let rec = StorePersistence::recover(dir)?;
        let mut ds = Self::new(id, host, name);
        ds.scene = rec.tree.clone();
        ds.next_seq = rec.last_seq + 1;
        for e in &rec.entries {
            ds.audit.record(e.at_secs, e.stamped.clone()).map_err(|err| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string())
            })?;
        }
        ds.attach_store(dir, cfg)?;
        Ok((ds, rec))
    }

    /// Assign the next global sequence number to an update.
    pub fn stamp(&mut self, origin: &str, update: SceneUpdate) -> StampedUpdate {
        let seq = self.next_seq;
        self.next_seq += 1;
        StampedUpdate { seq, origin: origin.into(), update }
    }

    /// Apply a stamped update to the master scene and the audit trail.
    /// Also advances the sequence counter past the committed number, so a
    /// mirror that commits a primary's replicated log can take over
    /// stamping seamlessly after failover.
    pub fn commit(&mut self, at_secs: f64, stamped: &StampedUpdate) -> Result<(), UpdateError> {
        stamped.update.apply(&mut self.scene)?;
        self.audit.record(at_secs, stamped.clone())?;
        self.next_seq = self.next_seq.max(stamped.seq + 1);
        if let Some(p) = &self.persistence {
            let mut p = p
                .lock()
                .map_err(|_| UpdateError::Persistence("persistence lock poisoned".into()))?;
            p.append(&AuditEntry { at_secs, stamped: stamped.clone() })
                .map_err(|e| UpdateError::Persistence(e.to_string()))?;
            if p.checkpoint_due() {
                let note = p
                    .checkpoint(&self.scene, at_secs)
                    .map_err(|e| UpdateError::Persistence(e.to_string()))?;
                self.checkpoint_notes.push(note);
            }
        }
        Ok(())
    }

    /// Make future stamps continue after `seq` (used when state arrives
    /// out-of-band, e.g. a mirror replaying a whole audit trail).
    pub fn observe_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Register a live subscriber (used when the replica is seeded
    /// synchronously, e.g. a local active client).
    pub fn subscribe_live(&mut self, rs: RenderServiceId, interest: InterestSet) {
        let mut interest = interest;
        interest.refresh(&self.scene);
        self.subscribers.insert(rs, Subscription { interest, state: SubState::Live });
        self.index_rev += 1;
    }

    /// Begin a bootstrap: subscriber is registered but buffered.
    pub fn begin_bootstrap(&mut self, rs: RenderServiceId, interest: InterestSet) {
        let mut interest = interest;
        interest.refresh(&self.scene);
        self.subscribers.insert(
            rs,
            Subscription { interest, state: SubState::Bootstrapping { buffered: Vec::new() } },
        );
        self.index_rev += 1;
    }

    /// Finish a bootstrap: returns the updates buffered while the
    /// snapshot was in flight, in seq order, and flips the subscriber
    /// live.
    pub fn complete_bootstrap(&mut self, rs: RenderServiceId) -> Vec<Arc<StampedUpdate>> {
        match self.subscribers.get_mut(&rs) {
            Some(sub) => {
                let drained = match &mut sub.state {
                    SubState::Bootstrapping { buffered } => std::mem::take(buffered),
                    SubState::Live => Vec::new(),
                };
                sub.state = SubState::Live;
                // The liveness cache went stale; next route re-snapshots.
                self.index_rev += 1;
                drained
            }
            None => Vec::new(),
        }
    }

    pub fn unsubscribe(&mut self, rs: RenderServiceId) -> bool {
        let removed = self.subscribers.remove(&rs).is_some();
        if removed {
            self.index_rev += 1;
        }
        removed
    }

    /// Ids of every current subscriber, in stable (id) order.
    pub fn subscriber_ids(&self) -> Vec<RenderServiceId> {
        self.subscribers.keys().copied().collect()
    }

    /// Bring the inverted index in sync with the subscriber map and the
    /// scene: a full rebuild if subscriptions changed (or the map was
    /// mutated behind our back — failover clears it directly), otherwise
    /// an incremental repair from the tree's structure-dirt log.
    fn ensure_index(&mut self) {
        if self.index_built_rev != self.index_rev
            || self.index_sub_ids.len() != self.subscribers.len()
        {
            // A rebuild reads the current tree; any pending repair work
            // in the dirt log is superseded — drain it away.
            let _ = self.scene.drain_structure_dirt();
            self.index_sub_ids.clear();
            self.index_sub_ids.extend(self.subscribers.keys().copied());
            self.index_live.clear();
            self.index_live
                .extend(self.subscribers.values().map(|s| matches!(s.state, SubState::Live)));
            self.index.rebuild(&self.scene, self.subscribers.values().map(|s| &s.interest));
            self.index_built_rev = self.index_rev;
        } else {
            let dirt = self.scene.drain_structure_dirt();
            if !matches!(dirt, CostDirt::Clean) {
                self.index.repair(&self.scene, &dirt);
            }
        }
    }

    /// Route a freshly committed update: returns the live subscribers it
    /// must be delivered to, buffering an `Arc` share of it for
    /// bootstrapping ones. O(log roots + matches) through the inverted
    /// interest index — the naive O(subscribers) scan survives as
    /// [`DataService::route_naive`], the index's parity oracle.
    pub fn route(&mut self, stamped: &Arc<StampedUpdate>) -> Vec<RenderServiceId> {
        self.ensure_index();
        let mut slots = std::mem::take(&mut self.route_slots);
        self.index.matches(&stamped.update, &self.scene, &mut slots);
        let mut deliver = Vec::with_capacity(slots.len());
        for &slot in &slots {
            let rs = self.index_sub_ids[slot as usize];
            // Hot path: the liveness snapshot (refreshed with the index)
            // spares a subscriber-map lookup per matched slot — at 10k
            // subscribers the lookups, not the stab, dominate routing.
            if self.index_live[slot as usize] {
                deliver.push(rs);
                continue;
            }
            // The map cannot have shrunk (ensure_index compares counts),
            // but stay defensive about membership anyway.
            if let Some(sub) = self.subscribers.get_mut(&rs) {
                match &mut sub.state {
                    SubState::Bootstrapping { buffered } => buffered.push(Arc::clone(stamped)),
                    SubState::Live => deliver.push(rs),
                }
            }
        }
        self.route_slots = slots;
        deliver
    }

    /// The pre-index routing decision, kept as the embedded parity oracle
    /// for the inverted index: one `InterestSet::relevant` probe per
    /// subscriber against its current closure. Read-only — does not
    /// buffer for bootstrapping subscribers; returns every interested
    /// subscriber regardless of state, in id order.
    pub fn route_naive(&self, stamped: &StampedUpdate) -> Vec<RenderServiceId> {
        self.subscribers
            .iter()
            .filter(|(_, sub)| sub.interest.relevant(&stamped.update, &self.scene))
            .map(|(rs, _)| *rs)
            .collect()
    }

    /// Refresh every subscriber's interest closure after structural scene
    /// changes, and schedule an index rebuild (the rebalancer edits
    /// subscriber interests in place and then calls this).
    pub fn refresh_interests(&mut self) {
        for sub in self.subscribers.values_mut() {
            sub.interest.refresh(&self.scene);
        }
        self.index_rev += 1;
    }

    /// Stream the session to disk (§3.1.1: "The data are intermittently
    /// streamed to disk, recording any changes that are made in the form
    /// of an audit trail").
    pub fn save_session(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.audit.save(std::io::BufWriter::new(file))
    }

    /// Resume a recorded session from disk: replays the trail into the
    /// master scene and continues sequence numbers where the recording
    /// stopped, so new collaborators "append to a recorded session".
    pub fn load_session(
        id: DataServiceId,
        host: &str,
        name: &str,
        path: &std::path::Path,
    ) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let audit = rave_scene::AuditTrail::load(std::io::BufReader::new(file))?;
        let scene = audit
            .replay_all()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut ds = Self::new(id, host, name);
        ds.next_seq = audit.last_seq() + 1;
        ds.scene = scene;
        ds.audit = audit;
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{NodeId, NodeKind};

    fn add_update(ds: &mut DataService, name: &str) -> StampedUpdate {
        let id = ds.scene.allocate_id();
        ds.stamp(
            "test",
            SceneUpdate::AddNode {
                id,
                parent: ds.scene.root(),
                name: name.into(),
                kind: NodeKind::Group,
            },
        )
    }

    #[test]
    fn stamp_sequences_monotonically() {
        let mut ds = DataService::new(DataServiceId(1), "adrenochrome", "Skull");
        let a = add_update(&mut ds, "a");
        let b = add_update(&mut ds, "b");
        assert!(b.seq > a.seq);
    }

    #[test]
    fn commit_applies_and_records() {
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        let u = add_update(&mut ds, "node");
        ds.commit(0.5, &u).unwrap();
        assert!(ds.scene.find_by_path("/node").is_some());
        assert_eq!(ds.audit.len(), 1);
    }

    #[test]
    fn route_delivers_to_live_buffers_for_bootstrapping() {
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        ds.subscribe_live(RenderServiceId(1), InterestSet::everything());
        ds.begin_bootstrap(RenderServiceId(2), InterestSet::everything());
        let u = add_update(&mut ds, "x");
        ds.commit(0.0, &u).unwrap();
        let u = Arc::new(u);
        let deliver = ds.route(&u);
        assert_eq!(deliver, vec![RenderServiceId(1)]);
        // Completing the bootstrap yields the buffered update, sharing
        // the routed allocation rather than cloning it.
        let drained = ds.complete_bootstrap(RenderServiceId(2));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].seq, u.seq);
        assert!(Arc::ptr_eq(&drained[0], &u));
        // Next update now goes to both.
        let u2 = add_update(&mut ds, "y");
        ds.commit(0.0, &u2).unwrap();
        assert_eq!(ds.route(&Arc::new(u2)).len(), 2);
    }

    #[test]
    fn route_respects_interest_sets() {
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        // Build two subtrees in the master scene.
        let left = ds.scene.add_node(ds.scene.root(), "left", NodeKind::Group).unwrap();
        let right = ds.scene.add_node(ds.scene.root(), "right", NodeKind::Group).unwrap();
        ds.subscribe_live(RenderServiceId(1), InterestSet::subtrees([left]));
        ds.subscribe_live(RenderServiceId(2), InterestSet::subtrees([right]));
        let u = ds.stamp("t", SceneUpdate::SetName { id: left, name: "renamed".into() });
        ds.commit(0.0, &u).unwrap();
        assert_eq!(ds.route_naive(&u), vec![RenderServiceId(1)], "oracle agrees");
        assert_eq!(ds.route(&Arc::new(u)), vec![RenderServiceId(1)]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        ds.subscribe_live(RenderServiceId(1), InterestSet::everything());
        assert!(ds.unsubscribe(RenderServiceId(1)));
        assert!(!ds.unsubscribe(RenderServiceId(1)));
        let u = add_update(&mut ds, "x");
        ds.commit(0.0, &u).unwrap();
        assert!(ds.route(&Arc::new(u)).is_empty());
    }

    #[test]
    fn session_playback_from_audit() {
        // The persistence story end-to-end: commit updates, replay the
        // audit trail into a fresh tree, identical content.
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        for name in ["a", "b", "c"] {
            let u = add_update(&mut ds, name);
            ds.commit(0.0, &u).unwrap();
        }
        let u = ds.stamp("t", SceneUpdate::RemoveNode { id: NodeId(2) });
        ds.commit(1.0, &u).unwrap();
        let replayed = ds.audit.replay_all().unwrap();
        assert_eq!(replayed.len(), ds.scene.len());
        assert!(replayed.find_by_path("/a").is_some());
        assert!(replayed.find_by_path("/b").is_none());
    }

    #[test]
    fn session_save_load_resume_from_disk() {
        let dir = std::env::temp_dir().join(format!("rave-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");

        // Record a session and stream it to disk.
        let mut ds = DataService::new(DataServiceId(1), "adrenochrome", "recorded");
        for name in ["a", "b", "c"] {
            let u = add_update(&mut ds, name);
            ds.commit(0.0, &u).unwrap();
        }
        ds.save_session(&path).unwrap();

        // A later service process resumes it and appends.
        let mut resumed =
            DataService::load_session(DataServiceId(2), "tower", "resumed", &path).unwrap();
        assert_eq!(resumed.scene.len(), ds.scene.len());
        let u = add_update(&mut resumed, "appended");
        assert!(u.seq > 3, "sequence continues after the recording: {}", u.seq);
        resumed.commit(1.0, &u).unwrap();
        assert!(resumed.scene.find_by_path("/appended").is_some());
        assert!(resumed.scene.find_by_path("/a").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_bootstrap_on_unknown_subscriber_is_empty() {
        let mut ds = DataService::new(DataServiceId(1), "h", "s");
        assert!(ds.complete_bootstrap(RenderServiceId(9)).is_empty());
    }
}
