//! Workload migration (§3.2.7).
//!
//! "When a render service becomes overloaded (i.e. its rendering rate
//! drops below a given threshold), it informs the data server. The data
//! server then examines available render services to find which service
//! has spare capacity ... removing nodes or tiles from the overloaded
//! service and adding them to an alternate service. If there is
//! insufficient spare capacity, then the data server uses UDDI to
//! discover additional render services that are not connected to the data
//! service."
//!
//! The decision machinery lives in [`crate::sched::rebalance`] since the
//! scheduler unification; this module keeps the historical entry points
//! as thin adapters that detect the trigger condition and feed the
//! [`SchedEvent`] stream.

use crate::ids::{DataServiceId, RenderServiceId};
use crate::sched::rebalance::{
    detect_cost_drift, detect_overload, detect_underload, process_events,
};
use crate::world::RaveSim;

pub use crate::sched::rebalance::{
    incremental_replan, select_nodes_to_shed, IncrementalOutcome, MigrationOutcome, SchedEvent,
};

/// One migration pass for `ds_id`: shed from overloaded services onto
/// connected services with headroom, recruiting via UDDI when that is not
/// enough.
pub fn check_and_migrate(sim: &mut RaveSim, ds_id: DataServiceId) -> MigrationOutcome {
    let events = detect_overload(sim, ds_id);
    process_events(sim, ds_id, &events)
}

/// Track under-load and rebalance onto services that have been idle past
/// the debounce window: "When a render service is significantly
/// underloaded (for a given amount of time, to smooth out spikes of
/// usage), the data service again redistributes data."
pub fn check_underload_rebalance(sim: &mut RaveSim, ds_id: DataServiceId) -> MigrationOutcome {
    let events = detect_underload(sim, ds_id);
    process_events(sim, ds_id, &events)
}

/// Handle the death of a render service (§6: "we can stop using a machine
/// once it becomes loaded by (for instance) a local user logging on" — or
/// a crash): unsubscribe it and redistribute its scene share onto the
/// remaining services, recruiting via UDDI if necessary.
pub fn handle_service_failure(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    dead: RenderServiceId,
) -> MigrationOutcome {
    process_events(sim, ds_id, &[SchedEvent::Failure { service: dead }])
}

/// Handle the death of the data service itself — the last single point
/// of failure. The event flows through the same rebalance engine as
/// every other trigger: a warm standby (log-shipping link, see
/// [`crate::replica`]) is promoted in place; without one the service is
/// rebuilt cold from its durable store, and with neither the session is
/// refused as lost.
pub fn handle_data_service_failure(sim: &mut RaveSim, dead: DataServiceId) -> MigrationOutcome {
    process_events(sim, dead, &[SchedEvent::DataFailure { service: dead }])
}

/// One *incremental* rebalance pass for `ds_id`: run every detector and
/// fold the whole event batch into the data service's persistent plan —
/// the replay touches only the affected queue slice and emits a minimal
/// migration diff, instead of the per-event shedding heuristics of
/// [`check_and_migrate`]. Honors the `sched_max_staleness` coalescing
/// knob.
pub fn check_and_replan_incremental(sim: &mut RaveSim, ds_id: DataServiceId) -> IncrementalOutcome {
    let mut events = detect_overload(sim, ds_id);
    events.extend(detect_underload(sim, ds_id));
    events.extend(detect_cost_drift(sim, ds_id));
    incremental_replan(sim, ds_id, &events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::{Vec3, Viewport};
    use rave_render::OffscreenMode;
    use rave_scene::InterestSet;
    use rave_scene::{CameraParams, MeshData, NodeKind, SceneTree};
    use rave_sim::SimTime;
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn mesh(tris: usize) -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; tris],
            texture_bytes: 0,
        }))
    }

    /// Two connected render services: `slow` overloaded with two meshes,
    /// `fast` idle.
    fn overload_world() -> (RaveSim, DataServiceId, RenderServiceId, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 11));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let slow = sim.world.spawn_render_service("laptop");
        let fast = sim.world.spawn_render_service("onyx");
        // Master scene: one big and one small mesh.
        let (big, small) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            let root = scene.root();
            let big = scene.add_node(root, "big", mesh(600_000)).unwrap();
            let small = scene.add_node(root, "small", mesh(40_000)).unwrap();
            (big, small)
        };
        // Slow service holds everything; fast holds nothing.
        {
            let replica = sim.world.data(ds).scene.clone();
            let rs = sim.world.render_mut(slow);
            rs.scene = replica;
            rs.interest = InterestSet::subtrees([big, small]);
            rs.open_session(
                crate::ids::ClientId(1),
                Viewport::new(200, 200),
                CameraParams::default(),
                OffscreenMode::Sequential,
            );
        }
        sim.world.data_mut(ds).subscribe_live(slow, InterestSet::subtrees([big, small]));
        sim.world.data_mut(ds).subscribe_live(fast, InterestSet::subtrees([]));
        (sim, ds, slow, fast)
    }

    fn make_overloaded(sim: &mut RaveSim, rs: RenderServiceId) {
        // Record slow frames: 2 fps.
        for i in 0..6 {
            let t = SimTime::from_secs(i as f64 * 0.5);
            sim.world.render_mut(rs).record_frame(t, 10);
        }
    }

    #[test]
    fn overload_sheds_to_spare_capacity() {
        let (mut sim, ds, slow, fast) = overload_world();
        make_overloaded(&mut sim, slow);
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(outcome.acted(), "migration must act on overload");
        assert!(!outcome.refused);
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        sim.run();
        // Replicas updated: fast now holds content, slow holds less.
        let fast_polys = sim.world.render(fast).assigned_cost().polygons;
        assert!(fast_polys > 0, "receiver got content");
        let slow_polys = sim.world.render(slow).assigned_cost().polygons;
        assert!(slow_polys < 640_000);
        assert_eq!(sim.world.trace.count(TraceKind::Overload), 1);
        assert!(sim.world.trace.count(TraceKind::Migration) >= 1);
    }

    #[test]
    fn no_action_when_healthy() {
        let (mut sim, ds, slow, _) = overload_world();
        // Fast frames: healthy.
        for i in 0..6 {
            sim.world.render_mut(slow).record_frame(SimTime::from_secs(i as f64 * 0.02), 10);
        }
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(!outcome.acted());
    }

    #[test]
    fn shed_selection_is_fine_grained() {
        let mut scene = SceneTree::new();
        let root = scene.root();
        let tiny = scene.add_node(root, "tiny", mesh(5_000)).unwrap();
        let big = scene.add_node(root, "big", mesh(100_000)).unwrap();
        // Excess of 4k polygons: shedding the tiny node suffices; the big
        // one must stay.
        let shed = select_nodes_to_shed(&scene, &[tiny, big], 4_000);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0, tiny);
    }

    #[test]
    fn recruitment_via_uddi_when_no_connected_capacity() {
        let (mut sim, ds, slow, fast) = overload_world();
        // Saturate the fast service so nothing fits there.
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        // Spawn an unconnected render service for UDDI to find.
        let fresh = sim.world.spawn_render_service("tower");
        make_overloaded(&mut sim, slow);
        let outcome = check_and_migrate(&mut sim, ds);
        assert_eq!(outcome.recruited, vec![fresh]);
        assert!(sim.world.trace.count(TraceKind::Recruitment) == 1);
        sim.run();
        // The recruit ends up subscribed.
        assert!(sim.world.data(ds).subscribers.contains_key(&fresh));
    }

    #[test]
    fn refusal_when_nothing_available() {
        let (mut sim, ds, slow, fast) = overload_world();
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        make_overloaded(&mut sim, slow);
        // No unconnected services exist: must refuse.
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(outcome.refused);
        assert_eq!(sim.world.trace.count(TraceKind::Refusal), 1);
    }

    #[test]
    fn failed_service_work_redistributes() {
        let (mut sim, ds, slow, fast) = overload_world();
        // `slow` holds both subtrees; kill it.
        let outcome = handle_service_failure(&mut sim, ds, slow);
        sim.run();
        assert!(!outcome.refused);
        assert!(!outcome.moved.is_empty(), "orphans rehomed");
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        assert!(!sim.world.data(ds).subscribers.contains_key(&slow));
        assert!(!sim.world.render_services.contains_key(&slow));
        // Fast now holds the content.
        assert!(sim.world.render(fast).assigned_cost().polygons >= 640_000);
    }

    #[test]
    fn failure_recruits_when_survivors_are_full() {
        let (mut sim, ds, slow, fast) = overload_world();
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        let fresh = sim.world.spawn_render_service("tower");
        let outcome = handle_service_failure(&mut sim, ds, slow);
        sim.run();
        assert_eq!(outcome.recruited, vec![fresh]);
        assert!(outcome.moved.iter().all(|(_, _, to)| *to == fresh));
        assert!(sim.world.render(fresh).assigned_cost().polygons > 0);
    }

    #[test]
    fn failure_of_full_replica_orphans_nothing() {
        let (mut sim, ds, _slow, fast) = overload_world();
        // Make `fast` a full replica, then kill it.
        sim.world.data_mut(ds).subscribe_live(fast, InterestSet::everything());
        let outcome = handle_service_failure(&mut sim, ds, fast);
        assert!(!outcome.acted());
        assert!(!outcome.refused);
    }

    #[test]
    fn underload_rebalance_waits_for_debounce() {
        let (mut sim, ds, slow, fast) = overload_world();
        // Fast service renders very fast (underloaded); slow is the donor.
        for i in 0..6 {
            sim.world.render_mut(fast).record_frame(SimTime::from_secs(i as f64 * 0.01), 10);
        }
        let _ = slow;
        // First check: starts the debounce clock, no action.
        let o1 = check_underload_rebalance(&mut sim, ds);
        assert!(!o1.acted(), "debounce holds immediate action");
        // Advance past the debounce window and check again.
        sim.schedule_in(SimTime::from_secs(6.0), |_| {});
        sim.run();
        let o2 = check_underload_rebalance(&mut sim, ds);
        assert!(o2.acted(), "after debounce the rebalance moves work");
        assert!(o2.moved.iter().all(|(_, _, to)| *to == fast));
        // Receiver never overshoots its headroom.
        sim.run();
        let cfg = sim.world.config.clone();
        let fast_report = sim.world.render(fast).capacity_report(&cfg);
        assert!(fast_report.poly_headroom > 0 || fast_report.assigned.polygons > 0);
    }
}
