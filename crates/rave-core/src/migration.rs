//! Workload migration (§3.2.7).
//!
//! "When a render service becomes overloaded (i.e. its rendering rate
//! drops below a given threshold), it informs the data server. The data
//! server then examines available render services to find which service
//! has spare capacity ... removing nodes or tiles from the overloaded
//! service and adding them to an alternate service. If there is
//! insufficient spare capacity, then the data server uses UDDI to
//! discover additional render services that are not connected to the data
//! service."

use crate::bootstrap::connect_render_service;
use crate::ids::{DataServiceId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_grid::TechnicalModel;
use rave_scene::{InterestSet, NodeCost, NodeId};

/// What a migration pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationOutcome {
    /// `(node, from, to)` moves performed.
    pub moved: Vec<(NodeId, RenderServiceId, RenderServiceId)>,
    /// Render services recruited via UDDI this pass.
    pub recruited: Vec<RenderServiceId>,
    /// True when work remained unplaceable ("the request is refused").
    pub refused: bool,
}

impl MigrationOutcome {
    pub fn acted(&self) -> bool {
        !self.moved.is_empty() || !self.recruited.is_empty()
    }
}

/// The node set to shed from an overloaded service: smallest nodes first,
/// until `excess` polygons are covered. Fine-grain selection is the whole
/// point — "If an underloaded service has capacity for another 5k
/// polygons/sec ... we do not want to add 100k polygons by mistake."
pub fn select_nodes_to_shed(
    scene: &rave_scene::SceneTree,
    roots: &[NodeId],
    excess_polygons: u64,
) -> Vec<(NodeId, NodeCost)> {
    let mut candidates: Vec<(NodeId, NodeCost)> = roots
        .iter()
        .filter_map(|&id| scene.node(id).map(|_| (id, scene.subtree_cost(id))))
        .filter(|(_, c)| !c.is_zero())
        .collect();
    candidates.sort_by_key(|(id, c)| (c.render_weight(), *id));
    let mut shed = Vec::new();
    let mut covered = 0u64;
    for (id, cost) in candidates {
        if covered >= excess_polygons {
            break;
        }
        covered += cost.polygons;
        shed.push((id, cost));
    }
    shed
}

/// One migration pass for `ds_id`: shed from overloaded services onto
/// connected services with headroom, recruiting via UDDI when that is not
/// enough.
pub fn check_and_migrate(sim: &mut RaveSim, ds_id: DataServiceId) -> MigrationOutcome {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    let mut outcome = MigrationOutcome::default();

    // Interrogate every connected render service.
    let subscriber_ids: Vec<RenderServiceId> =
        sim.world.data(ds_id).subscribers.keys().copied().collect();
    let reports: Vec<_> =
        subscriber_ids.iter().map(|&rs| sim.world.render(rs).capacity_report(&cfg)).collect();

    let overloaded: Vec<RenderServiceId> = reports
        .iter()
        .filter(|r| r.rolling_fps.is_some_and(|f| f < cfg.overload_fps))
        .map(|r| r.service)
        .collect();
    if overloaded.is_empty() {
        return outcome;
    }
    for &rs in &overloaded {
        sim.world.trace.record(
            now,
            TraceKind::Overload,
            format!(
                "{rs} at {:.1} fps (threshold {})",
                sim.world.render(rs).rolling_fps().unwrap_or(0.0),
                cfg.overload_fps
            ),
        );
    }

    // Headroom ledger over connected, non-overloaded services.
    let mut ledger: Vec<(RenderServiceId, u64, u64)> = reports
        .iter()
        .filter(|r| !overloaded.contains(&r.service))
        .map(|r| (r.service, r.poly_headroom, r.texture_headroom))
        .collect();
    ledger.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for over_rs in overloaded {
        // How much must go: bring the service back inside its interactive
        // polygon budget.
        let (assigned, budget, roots) = {
            let rs = sim.world.render(over_rs);
            let pixels = rs
                .sessions
                .values()
                .map(|s| s.viewport.pixel_count() as u64)
                .max()
                .unwrap_or(160_000);
            let budget = rs.machine.poly_budget_at_fps(cfg.target_fps, pixels);
            let roots: Vec<NodeId> = if rs.interest.is_everything() {
                rs.scene.node(rs.scene.root()).map(|root| root.children.clone()).unwrap_or_default()
            } else {
                rs.interest.roots().collect()
            };
            (rs.assigned_cost(), budget, roots)
        };
        let excess = assigned.polygons.saturating_sub(budget);
        if excess == 0 {
            continue;
        }
        let shed = select_nodes_to_shed(&sim.world.render(over_rs).scene, &roots, excess);

        let mut unplaced: Vec<(NodeId, NodeCost)> = Vec::new();
        for (node, cost) in shed {
            let slot =
                ledger.iter_mut().find(|(_, p, t)| cost.polygons <= *p && cost.texture_bytes <= *t);
            match slot {
                Some((to, p, t)) => {
                    let to = *to;
                    *p -= cost.polygons;
                    *t -= cost.texture_bytes;
                    move_node(sim, ds_id, node, over_rs, to, &cost);
                    outcome.moved.push((node, over_rs, to));
                }
                None => unplaced.push((node, cost)),
            }
        }

        if !unplaced.is_empty() {
            // Recruit via UDDI: registered render services not yet
            // connected to this data service.
            let recruited = recruit_unconnected(sim, ds_id);
            match recruited {
                Some(new_rs) => {
                    outcome.recruited.push(new_rs);
                    let report = sim.world.render(new_rs).capacity_report(&cfg);
                    let mut p = report.poly_headroom;
                    let mut t = report.texture_headroom;
                    let mut still_unplaced = Vec::new();
                    for (node, cost) in unplaced {
                        if cost.polygons <= p && cost.texture_bytes <= t {
                            p -= cost.polygons;
                            t -= cost.texture_bytes;
                            move_node(sim, ds_id, node, over_rs, new_rs, &cost);
                            outcome.moved.push((node, over_rs, new_rs));
                        } else {
                            still_unplaced.push((node, cost));
                        }
                    }
                    ledger.push((new_rs, p, t));
                    if !still_unplaced.is_empty() {
                        refuse(sim, ds_id, &still_unplaced);
                        outcome.refused = true;
                    }
                }
                None => {
                    refuse(sim, ds_id, &unplaced);
                    outcome.refused = true;
                }
            }
        }
    }
    outcome
}

/// Track under-load and rebalance onto services that have been idle past
/// the debounce window: "When a render service is significantly
/// underloaded (for a given amount of time, to smooth out spikes of
/// usage), the data service again redistributes data."
pub fn check_underload_rebalance(sim: &mut RaveSim, ds_id: DataServiceId) -> MigrationOutcome {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    let mut outcome = MigrationOutcome::default();
    let subscriber_ids: Vec<RenderServiceId> =
        sim.world.data(ds_id).subscribers.keys().copied().collect();

    // Update the debounce ledger.
    let mut ready: Vec<RenderServiceId> = Vec::new();
    for &rs in &subscriber_ids {
        let fps = sim.world.render(rs).rolling_fps();
        // No fps data counts as under-loaded only for an *empty* service
        // (a fresh recruit); a loaded service that simply has not rendered
        // lately is not a migration target.
        let under = match fps {
            Some(f) => f > cfg.underload_fps,
            None => sim.world.render(rs).assigned_cost().is_zero(),
        };
        if under {
            let since = *sim.world.underload_since.entry(rs).or_insert(now);
            if now - since >= cfg.underload_debounce {
                ready.push(rs);
            }
        } else {
            sim.world.underload_since.remove(&rs);
        }
    }
    if ready.is_empty() {
        return outcome;
    }

    // Donor: the most loaded service not in the ready set.
    let donor = subscriber_ids
        .iter()
        .filter(|rs| !ready.contains(rs))
        .max_by_key(|&&rs| sim.world.render(rs).assigned_cost().polygons)
        .copied();
    let Some(donor) = donor else { return outcome };

    for under_rs in ready {
        sim.world.trace.record(now, TraceKind::Underload, format!("{under_rs} has headroom"));
        let headroom = sim.world.render(under_rs).capacity_report(&cfg).poly_headroom;
        if headroom == 0 {
            continue;
        }
        let roots: Vec<NodeId> = {
            let rs = sim.world.render(donor);
            if rs.interest.is_everything() {
                rs.scene.node(rs.scene.root()).map(|r| r.children.clone()).unwrap_or_default()
            } else {
                rs.interest.roots().collect()
            }
        };
        // Fine-grain: move the largest node set that FITS the headroom
        // (never overshoot — the §3.2.7 "5k vs 100k" rule).
        let mut candidates: Vec<(NodeId, NodeCost)> = roots
            .iter()
            .filter_map(|&id| {
                let scene = &sim.world.render(donor).scene;
                scene.node(id).map(|_| (id, scene.subtree_cost(id)))
            })
            .filter(|(_, c)| !c.is_zero())
            .collect();
        candidates.sort_by_key(|(id, c)| (std::cmp::Reverse(c.render_weight()), *id));
        let mut remaining = headroom;
        for (node, cost) in candidates {
            if cost.polygons <= remaining && donor != under_rs {
                remaining -= cost.polygons;
                move_node(sim, ds_id, node, donor, under_rs, &cost);
                outcome.moved.push((node, donor, under_rs));
            }
        }
        sim.world.underload_since.remove(&under_rs);
    }
    outcome
}

/// Execute one node move: update interest sets at the data service,
/// charge the data transfer to the receiving service, and install/remove
/// the subtree on the replicas.
fn move_node(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    node: NodeId,
    from: RenderServiceId,
    to: RenderServiceId,
    cost: &NodeCost,
) {
    let now = sim.now();
    let ds_host = sim.world.data(ds_id).host.clone();
    let to_host = sim.world.render(to).host.clone();

    // Update interest sets (data-service side routing).
    {
        let master_len;
        {
            let ds = sim.world.data_mut(ds_id);
            master_len = ds.scene.len();
            if let Some(sub) = ds.subscribers.get_mut(&from) {
                sub.interest.remove_root(node);
            }
            if let Some(sub) = ds.subscribers.get_mut(&to) {
                sub.interest.add_root(node);
            }
            ds.refresh_interests();
        }
        let _ = master_len;
    }

    // Replica surgery now; the transfer cost lands on the receiving side
    // as an arrival event (the node is "in flight" until then, but the
    // old holder keeps rendering it until the handoff — best effort).
    let subtree = {
        let ds = sim.world.data(ds_id);
        ds.scene.extract_subset(&[node])
    };
    let bytes = cost.data_bytes.max(256);
    let arrival = sim.world.send_bytes(now, &ds_host, &to_host, bytes);
    sim.schedule_at(arrival, move |sim| {
        let at = sim.now();
        // The donor may already be gone (failure-triggered moves).
        if let Some(rs) = sim.world.render_services.get_mut(&from) {
            let _ = rs.scene.remove(node);
            rs.interest.remove_root(node);
        }
        {
            let rs = sim.world.render_mut(to);
            rs.interest.add_root(node);
            rs.scene.merge_subset(&subtree);
        }
        sim.world.trace.record(
            at,
            TraceKind::Migration,
            format!("node {node} moved {from} -> {to}"),
        );
    });
}

/// Recruit one registered-but-unconnected render service via UDDI,
/// charging the warm-scan cost and the bootstrap. Returns its id.
fn recruit_unconnected(sim: &mut RaveSim, ds_id: DataServiceId) -> Option<RenderServiceId> {
    let now = sim.now();
    // Which render services exist but are not subscribed?
    let connected: Vec<RenderServiceId> =
        sim.world.data(ds_id).subscribers.keys().copied().collect();
    let candidate = sim
        .world
        .render_services
        .iter()
        .filter(|(id, rs)| !connected.contains(id) && rs.offscreen_capable)
        .map(|(id, _)| *id)
        .next()?;

    // Charge the UDDI inquiry (warm scan on the kept-alive proxy).
    let results =
        sim.world.registry.scan_access_points("RAVE", TechnicalModel::RenderService).len();
    let scan = sim.world.uddi_cost.scan_cost(results);
    sim.world.trace.record(
        now,
        TraceKind::Recruitment,
        format!("{candidate} discovered via UDDI ({results} services scanned, {scan})"),
    );
    // The bootstrap starts after the scan completes; we approximate by
    // offsetting the connect with a scheduled wrapper.
    let start = now + scan;
    sim.schedule_at(start, move |sim| {
        connect_render_service(sim, candidate, ds_id, InterestSet::subtrees([]));
    });
    Some(candidate)
}

/// Handle the death of a render service (§6: "we can stop using a machine
/// once it becomes loaded by (for instance) a local user logging on" — or
/// a crash): unsubscribe it and redistribute its scene share onto the
/// remaining services, recruiting via UDDI if necessary.
pub fn handle_service_failure(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    dead: RenderServiceId,
) -> MigrationOutcome {
    let now = sim.now();
    let mut outcome = MigrationOutcome::default();
    let cfg = sim.world.config.clone();

    // Take the dead service's interest roots off the subscription.
    let orphaned: Vec<NodeId> = {
        let ds = sim.world.data_mut(ds_id);
        let roots = ds
            .subscribers
            .get(&dead)
            .map(|sub| {
                if sub.interest.is_everything() {
                    // A full replica holds everything; its loss orphans
                    // nothing that others don't already have.
                    Vec::new()
                } else {
                    sub.interest.roots().collect()
                }
            })
            .unwrap_or_default();
        ds.unsubscribe(dead);
        roots
    };
    // Remove the dead service from the world and the registry: its
    // replica and advertisement are gone.
    let dead_host = sim.world.render(dead).host.clone();
    sim.world.render_services.remove(&dead);
    sim.world.registry.unpublish("RAVE", &dead_host, &format!("render-{dead}"));
    sim.world.trace.record(
        now,
        TraceKind::Overload,
        format!("{dead} failed; {} orphaned subtree(s)", orphaned.len()),
    );
    if orphaned.is_empty() {
        return outcome;
    }

    // Redistribute orphaned nodes onto surviving subscribers by headroom.
    let survivors: Vec<RenderServiceId> =
        sim.world.data(ds_id).subscribers.keys().copied().collect();
    let mut ledger: Vec<(RenderServiceId, u64, u64)> = survivors
        .iter()
        .map(|&rs| {
            let r = sim.world.render(rs).capacity_report(&cfg);
            (rs, r.poly_headroom, r.texture_headroom)
        })
        .collect();
    ledger.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut unplaced = Vec::new();
    for node in orphaned {
        let cost = sim.world.data(ds_id).scene.subtree_cost(node);
        let slot =
            ledger.iter_mut().find(|(_, p, t)| cost.polygons <= *p && cost.texture_bytes <= *t);
        match slot {
            Some((to, p, t)) => {
                let to = *to;
                *p -= cost.polygons;
                *t -= cost.texture_bytes;
                move_node(sim, ds_id, node, dead, to, &cost);
                outcome.moved.push((node, dead, to));
            }
            None => unplaced.push((node, cost)),
        }
    }
    if !unplaced.is_empty() {
        match recruit_unconnected(sim, ds_id) {
            Some(new_rs) => {
                outcome.recruited.push(new_rs);
                for (node, cost) in unplaced {
                    move_node(sim, ds_id, node, dead, new_rs, &cost);
                    outcome.moved.push((node, dead, new_rs));
                }
            }
            None => {
                refuse(sim, ds_id, &unplaced);
                outcome.refused = true;
            }
        }
    }
    outcome
}

fn refuse(sim: &mut RaveSim, ds_id: DataServiceId, unplaced: &[(NodeId, NodeCost)]) {
    let now = sim.now();
    let polys: u64 = unplaced.iter().map(|(_, c)| c.polygons).sum();
    sim.world.trace.record(
        now,
        TraceKind::Refusal,
        format!(
            "{ds_id}: insufficient resources for {} nodes ({polys} polygons) — request refused",
            unplaced.len()
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::{Vec3, Viewport};
    use rave_render::OffscreenMode;
    use rave_scene::{CameraParams, MeshData, NodeKind, SceneTree};
    use rave_sim::SimTime;
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn mesh(tris: usize) -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; tris],
            texture_bytes: 0,
        }))
    }

    /// Two connected render services: `slow` overloaded with two meshes,
    /// `fast` idle.
    fn overload_world() -> (RaveSim, DataServiceId, RenderServiceId, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 11));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let slow = sim.world.spawn_render_service("laptop");
        let fast = sim.world.spawn_render_service("onyx");
        // Master scene: one big and one small mesh.
        let (big, small) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            let root = scene.root();
            let big = scene.add_node(root, "big", mesh(600_000)).unwrap();
            let small = scene.add_node(root, "small", mesh(40_000)).unwrap();
            (big, small)
        };
        // Slow service holds everything; fast holds nothing.
        {
            let replica = sim.world.data(ds).scene.clone();
            let rs = sim.world.render_mut(slow);
            rs.scene = replica;
            rs.interest = InterestSet::subtrees([big, small]);
            rs.open_session(
                crate::ids::ClientId(1),
                Viewport::new(200, 200),
                CameraParams::default(),
                OffscreenMode::Sequential,
            );
        }
        sim.world.data_mut(ds).subscribe_live(slow, InterestSet::subtrees([big, small]));
        sim.world.data_mut(ds).subscribe_live(fast, InterestSet::subtrees([]));
        (sim, ds, slow, fast)
    }

    fn make_overloaded(sim: &mut RaveSim, rs: RenderServiceId) {
        // Record slow frames: 2 fps.
        for i in 0..6 {
            let t = SimTime::from_secs(i as f64 * 0.5);
            sim.world.render_mut(rs).record_frame(t, 10);
        }
    }

    #[test]
    fn overload_sheds_to_spare_capacity() {
        let (mut sim, ds, slow, fast) = overload_world();
        make_overloaded(&mut sim, slow);
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(outcome.acted(), "migration must act on overload");
        assert!(!outcome.refused);
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        sim.run();
        // Replicas updated: fast now holds content, slow holds less.
        let fast_polys = sim.world.render(fast).assigned_cost().polygons;
        assert!(fast_polys > 0, "receiver got content");
        let slow_polys = sim.world.render(slow).assigned_cost().polygons;
        assert!(slow_polys < 640_000);
        assert_eq!(sim.world.trace.count(TraceKind::Overload), 1);
        assert!(sim.world.trace.count(TraceKind::Migration) >= 1);
    }

    #[test]
    fn no_action_when_healthy() {
        let (mut sim, ds, slow, _) = overload_world();
        // Fast frames: healthy.
        for i in 0..6 {
            sim.world.render_mut(slow).record_frame(SimTime::from_secs(i as f64 * 0.02), 10);
        }
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(!outcome.acted());
    }

    #[test]
    fn shed_selection_is_fine_grained() {
        let mut scene = SceneTree::new();
        let root = scene.root();
        let tiny = scene.add_node(root, "tiny", mesh(5_000)).unwrap();
        let big = scene.add_node(root, "big", mesh(100_000)).unwrap();
        // Excess of 4k polygons: shedding the tiny node suffices; the big
        // one must stay.
        let shed = select_nodes_to_shed(&scene, &[tiny, big], 4_000);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0, tiny);
    }

    #[test]
    fn recruitment_via_uddi_when_no_connected_capacity() {
        let (mut sim, ds, slow, fast) = overload_world();
        // Saturate the fast service so nothing fits there.
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        // Spawn an unconnected render service for UDDI to find.
        let fresh = sim.world.spawn_render_service("tower");
        make_overloaded(&mut sim, slow);
        let outcome = check_and_migrate(&mut sim, ds);
        assert_eq!(outcome.recruited, vec![fresh]);
        assert!(sim.world.trace.count(TraceKind::Recruitment) == 1);
        sim.run();
        // The recruit ends up subscribed.
        assert!(sim.world.data(ds).subscribers.contains_key(&fresh));
    }

    #[test]
    fn refusal_when_nothing_available() {
        let (mut sim, ds, slow, fast) = overload_world();
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        make_overloaded(&mut sim, slow);
        // No unconnected services exist: must refuse.
        let outcome = check_and_migrate(&mut sim, ds);
        assert!(outcome.refused);
        assert_eq!(sim.world.trace.count(TraceKind::Refusal), 1);
    }

    #[test]
    fn failed_service_work_redistributes() {
        let (mut sim, ds, slow, fast) = overload_world();
        // `slow` holds both subtrees; kill it.
        let outcome = handle_service_failure(&mut sim, ds, slow);
        sim.run();
        assert!(!outcome.refused);
        assert!(!outcome.moved.is_empty(), "orphans rehomed");
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        assert!(!sim.world.data(ds).subscribers.contains_key(&slow));
        assert!(!sim.world.render_services.contains_key(&slow));
        // Fast now holds the content.
        assert!(sim.world.render(fast).assigned_cost().polygons >= 640_000);
    }

    #[test]
    fn failure_recruits_when_survivors_are_full() {
        let (mut sim, ds, slow, fast) = overload_world();
        {
            let rs = sim.world.render_mut(fast);
            let root = rs.scene.root();
            rs.scene.add_node(root, "filler", mesh(3_000_000)).unwrap();
        }
        let fresh = sim.world.spawn_render_service("tower");
        let outcome = handle_service_failure(&mut sim, ds, slow);
        sim.run();
        assert_eq!(outcome.recruited, vec![fresh]);
        assert!(outcome.moved.iter().all(|(_, _, to)| *to == fresh));
        assert!(sim.world.render(fresh).assigned_cost().polygons > 0);
    }

    #[test]
    fn failure_of_full_replica_orphans_nothing() {
        let (mut sim, ds, _slow, fast) = overload_world();
        // Make `fast` a full replica, then kill it.
        sim.world.data_mut(ds).subscribe_live(fast, InterestSet::everything());
        let outcome = handle_service_failure(&mut sim, ds, fast);
        assert!(!outcome.acted());
        assert!(!outcome.refused);
    }

    #[test]
    fn underload_rebalance_waits_for_debounce() {
        let (mut sim, ds, slow, fast) = overload_world();
        // Fast service renders very fast (underloaded); slow is the donor.
        for i in 0..6 {
            sim.world.render_mut(fast).record_frame(SimTime::from_secs(i as f64 * 0.01), 10);
        }
        let _ = slow;
        // First check: starts the debounce clock, no action.
        let o1 = check_underload_rebalance(&mut sim, ds);
        assert!(!o1.acted(), "debounce holds immediate action");
        // Advance past the debounce window and check again.
        sim.schedule_in(SimTime::from_secs(6.0), |_| {});
        sim.run();
        let o2 = check_underload_rebalance(&mut sim, ds);
        assert!(o2.acted(), "after debounce the rebalance moves work");
        assert!(o2.moved.iter().all(|(_, _, to)| *to == fast));
        // Receiver never overshoots its headroom.
        sim.run();
        let cfg = sim.world.config.clone();
        let fast_report = sim.world.render(fast).capacity_report(&cfg);
        assert!(fast_report.poly_headroom > 0 || fast_report.assigned.polygons > 0);
    }
}
