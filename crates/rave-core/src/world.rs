//! The assembled RAVE world: network + registry + containers + services,
//! living inside a `rave_sim::Simulation`.

use crate::config::RaveConfig;
use crate::data_service::DataService;
use crate::frame_stream::FrameCache;
use crate::ids::{ClientId, DataServiceId, RenderServiceId};
use crate::render_service::RenderService;
use crate::sched::ThroughputTracker;
use crate::thin_client::ThinClient;
use crate::trace::{EventTrace, TraceKind};
use rave_grid::uddi::ServiceBinding;
use rave_grid::wsdl::WsdlDocument;
use rave_grid::{ServiceContainer, TechnicalModel, UddiCostModel, UddiRegistry};
use rave_net::{Channel, Network};
use rave_render::MachineProfile;
use rave_scene::{SceneUpdate, UpdateError};
use rave_sim::{SimRng, SimTime, Simulation};
use std::collections::{BTreeMap, BTreeSet};

/// The simulation type every RAVE experiment drives.
pub type RaveSim = Simulation<RaveWorld>;

/// All mutable state of a RAVE deployment.
pub struct RaveWorld {
    pub config: RaveConfig,
    pub network: Network,
    pub registry: UddiRegistry,
    pub uddi_cost: UddiCostModel,
    pub containers: BTreeMap<String, ServiceContainer>,
    pub data_services: BTreeMap<DataServiceId, DataService>,
    pub render_services: BTreeMap<RenderServiceId, RenderService>,
    pub thin_clients: BTreeMap<ClientId, ThinClient>,
    /// Serializing per-(sender, receiver) channels for bulk streams.
    channels: BTreeMap<(String, String), Channel>,
    /// Compressed frame-stream state per (render service, client).
    pub frame_cache: FrameCache,
    /// Active log-shipping replication links, keyed by primary.
    pub replicas: BTreeMap<DataServiceId, crate::replica::ReplicaLink>,
    pub trace: EventTrace,
    pub rng: SimRng,
    /// The unified scheduler's cross-pass state (throughput memory and
    /// under-load debounce).
    pub sched: SchedState,
    /// Latest scheduled update-delivery time per (data service,
    /// subscriber) pair: updates are applied strictly in publish order on
    /// every replica, so a small update must not overtake a large one
    /// still on the wire (TCP FIFO semantics).
    delivery_high_water: BTreeMap<(DataServiceId, RenderServiceId), SimTime>,
    next_ds: u64,
    next_rs: u64,
    next_cl: u64,
}

/// Scheduler state that outlives any single rebalance pass.
#[derive(Debug, Clone)]
pub struct SchedState {
    /// Measured per-service throughput (EWMA), fed by tile cost feedback
    /// and consulted by the `CostDrift` rebalance trigger.
    pub throughput: ThroughputTracker,
    /// When each render service first reported sustained under-load
    /// (debounce state for §3.2.7's "for a given amount of time").
    pub underload_since: BTreeMap<RenderServiceId, SimTime>,
    /// The persistent incremental plan per data service: workload →
    /// service with ledger checkpoints, replayed (not rebuilt) on each
    /// rebalance pass.
    pub plans: BTreeMap<DataServiceId, crate::sched::PlanState>,
    /// Drift hysteresis: services whose measured throughput fell below
    /// the drift ratio on the *last* detect pass. A `CostDrift` event
    /// only fires once the drift persists into a second consecutive pass.
    pub drift_pending: BTreeSet<RenderServiceId>,
}

impl SchedState {
    fn new(config: &RaveConfig) -> Self {
        Self {
            throughput: ThroughputTracker::with_alpha(config.sched_ewma_alpha),
            underload_since: BTreeMap::new(),
            plans: BTreeMap::new(),
            drift_pending: BTreeSet::new(),
        }
    }
}

impl RaveWorld {
    pub fn new(network: Network, config: RaveConfig, seed: u64) -> Self {
        let mut registry = UddiRegistry::new();
        registry.register_business("RAVE");
        let sched = SchedState::new(&config);
        Self {
            config,
            network,
            registry,
            uddi_cost: UddiCostModel::default(),
            containers: BTreeMap::new(),
            data_services: BTreeMap::new(),
            render_services: BTreeMap::new(),
            thin_clients: BTreeMap::new(),
            channels: BTreeMap::new(),
            frame_cache: FrameCache::new(),
            replicas: BTreeMap::new(),
            trace: EventTrace::new(),
            rng: SimRng::new(seed),
            sched,
            delivery_high_water: BTreeMap::new(),
            next_ds: 1,
            next_rs: 1,
            next_cl: 1,
        }
    }

    /// The paper's testbed (§4.4): LAN + wireless, one container per
    /// render-capable host with both factories deployed.
    pub fn paper_testbed(config: RaveConfig, seed: u64) -> Self {
        let mut w = Self::new(Network::paper_testbed(1.0), config, seed);
        for host in ["onyx", "v880z", "laptop", "desktop", "tower", "adrenochrome"] {
            let mut c = ServiceContainer::new(host);
            c.deploy_factory("data-factory", TechnicalModel::DataService);
            c.deploy_factory("render-factory", TechnicalModel::RenderService);
            w.containers.insert(host.to_string(), c);
        }
        w
    }

    /// The machine profile for a testbed host.
    pub fn machine_for(host: &str) -> MachineProfile {
        match host {
            "onyx" => MachineProfile::sgi_onyx(),
            "v880z" => MachineProfile::sun_v880z(),
            "laptop" => MachineProfile::centrino_laptop(),
            "tower" => MachineProfile::xeon_tower(),
            // "desktop" and anything unknown: the Athlon.
            _ => MachineProfile::athlon_desktop(),
        }
    }

    // ---- spawning -----------------------------------------------------

    pub fn spawn_data_service(&mut self, host: &str, name: &str) -> DataServiceId {
        let id = DataServiceId(self.next_ds);
        self.next_ds += 1;
        self.data_services.insert(id, DataService::new(id, host, name));
        self.publish_to_registry(host, name, TechnicalModel::DataService);
        id
    }

    /// The id the next data service will be assigned (used by failover to
    /// construct a recovered replacement before installing it).
    pub fn next_data_service_id(&self) -> DataServiceId {
        DataServiceId(self.next_ds)
    }

    /// Install an externally constructed data service — e.g. a
    /// replacement recovered from a durable store — publishing it to the
    /// registry like any other spawn.
    pub fn install_data_service(&mut self, ds: DataService) -> DataServiceId {
        let id = ds.id;
        self.next_ds = self.next_ds.max(id.0 + 1);
        let (host, name) = (ds.host.clone(), ds.name.clone());
        self.data_services.insert(id, ds);
        self.publish_to_registry(&host, &name, TechnicalModel::DataService);
        id
    }

    pub fn spawn_render_service(&mut self, host: &str) -> RenderServiceId {
        let id = RenderServiceId(self.next_rs);
        self.next_rs += 1;
        let name = format!("render-{id}");
        self.render_services.insert(id, RenderService::new(id, host, Self::machine_for(host)));
        self.publish_to_registry(host, &name, TechnicalModel::RenderService);
        id
    }

    /// An active render client: render engine without a grid container —
    /// not registered in UDDI (it "does not have a Grid/Web service
    /// interface to advertise", §3.1.2) and cannot assist off-screen.
    pub fn spawn_active_client(&mut self, host: &str) -> RenderServiceId {
        let id = RenderServiceId(self.next_rs);
        self.next_rs += 1;
        self.render_services
            .insert(id, RenderService::active_client(id, host, Self::machine_for(host)));
        id
    }

    pub fn spawn_thin_client(&mut self, host: &str) -> ClientId {
        let id = ClientId(self.next_cl);
        self.next_cl += 1;
        self.thin_clients.insert(id, ThinClient::new(id, host));
        id
    }

    fn publish_to_registry(&mut self, host: &str, name: &str, tmodel: TechnicalModel) {
        let access_point = format!("{host}:{}", 4400 + self.next_rs + self.next_ds);
        let binding = ServiceBinding {
            business: "RAVE".into(),
            service_name: name.to_string(),
            host: host.to_string(),
            tmodel,
            access_point: access_point.clone(),
            wsdl: WsdlDocument::conforming(name, tmodel, &access_point),
        };
        self.registry.publish(binding).expect("registry publish");
    }

    // ---- transport ----------------------------------------------------

    /// The serializing channel from one host to another.
    pub fn channel(&mut self, from: &str, to: &str) -> &mut Channel {
        let key = (from.to_string(), to.to_string());
        if !self.channels.contains_key(&key) {
            let link = self.network.link_between(from, to).clone();
            self.channels.insert(key.clone(), Channel::new(link));
        }
        self.channels.get_mut(&key).expect("just inserted")
    }

    /// Queue `bytes` from `from` to `to` at `now`; returns arrival time.
    pub fn send_bytes(&mut self, now: SimTime, from: &str, to: &str, bytes: u64) -> SimTime {
        self.channel(from, to).send(now, bytes)
    }

    /// Queue a compressed payload: `wire_bytes` drive link timing and
    /// goodput, `logical_bytes` (pre-encode size) feed the compression
    /// accounting. Returns arrival time.
    pub fn send_encoded_bytes(
        &mut self,
        now: SimTime,
        from: &str,
        to: &str,
        wire_bytes: u64,
        logical_bytes: u64,
    ) -> SimTime {
        self.channel(from, to).send_encoded(now, wire_bytes, logical_bytes)
    }

    // ---- lookups with panics-on-bug semantics --------------------------

    pub fn data(&self, id: DataServiceId) -> &DataService {
        self.data_services.get(&id).unwrap_or_else(|| panic!("no data service {id}"))
    }

    pub fn data_mut(&mut self, id: DataServiceId) -> &mut DataService {
        self.data_services.get_mut(&id).unwrap_or_else(|| panic!("no data service {id}"))
    }

    pub fn render(&self, id: RenderServiceId) -> &RenderService {
        self.render_services.get(&id).unwrap_or_else(|| panic!("no render service {id}"))
    }

    pub fn render_mut(&mut self, id: RenderServiceId) -> &mut RenderService {
        self.render_services.get_mut(&id).unwrap_or_else(|| panic!("no render service {id}"))
    }

    pub fn client(&self, id: ClientId) -> &ThinClient {
        self.thin_clients.get(&id).unwrap_or_else(|| panic!("no thin client {id}"))
    }

    pub fn client_mut(&mut self, id: ClientId) -> &mut ThinClient {
        self.thin_clients.get_mut(&id).unwrap_or_else(|| panic!("no thin client {id}"))
    }
}

/// Publish an update through a data service: commit to the master scene
/// and audit trail, then multicast to every live, interested subscriber
/// (delivery events apply the update to each replica at its arrival
/// time). Returns the assigned sequence number.
pub fn publish_update(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    origin: &str,
    update: SceneUpdate,
) -> Result<u64, UpdateError> {
    let seqs = publish_batch(sim, ds_id, vec![(origin.to_string(), update)])?;
    Ok(seqs[0])
}

/// Publish a batch of updates through a data service in one pass: every
/// update is committed and stamped in order, routed through the inverted
/// interest index (which folds the batch's structural edits in once, not
/// per subscriber), and delivered with segment-multicast fan-out — one
/// wire transmission per receiving segment per update, booked into
/// [`crate::data_service::FanoutTotals`]. Each matched subscriber gets
/// **one** delivery event carrying `Arc`-shared updates applied in seq
/// order, so a 10k-client session tick schedules 10k events, not
/// 10k × updates, and each replica's derived caches rebuild once per
/// batch. Per-subscriber FIFO is preserved against earlier publishes via
/// the delivery high-water mark.
///
/// On a commit failure the batch stops: the already-committed prefix is
/// still delivered (it is in the audit trail), the failed update and the
/// rest are dropped, and the error is returned.
pub fn publish_batch(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    updates: Vec<(String, SceneUpdate)>,
) -> Result<Vec<u64>, UpdateError> {
    let now = sim.now();
    let mut seqs = Vec::with_capacity(updates.len());
    let mut batch: Vec<std::sync::Arc<rave_scene::StampedUpdate>> =
        Vec::with_capacity(updates.len());
    let mut failure = None;
    {
        let ds = sim.world.data_mut(ds_id);
        for (origin, update) in updates {
            let stamped = ds.stamp(&origin, update);
            match ds.commit(now.as_secs(), &stamped) {
                Ok(()) => {
                    seqs.push(stamped.seq);
                    batch.push(std::sync::Arc::new(stamped));
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
    }
    for note in sim.world.data_mut(ds_id).take_checkpoint_notes() {
        sim.world.trace.record(now, TraceKind::Checkpoint, format!("{ds_id}: {note}"));
    }
    for stamped in &batch {
        sim.world.trace.record(
            now,
            TraceKind::UpdatePublished,
            format!("{ds_id} seq={} from {}", stamped.seq, stamped.origin),
        );
    }
    let ds_host = sim.world.data(ds_id).host.clone();
    // Delivery plan: per subscriber, the batch's matched updates (already
    // in seq order) and their latest FIFO-adjusted arrival.
    let mut per_sub: BTreeMap<
        RenderServiceId,
        (SimTime, Vec<std::sync::Arc<rave_scene::StampedUpdate>>),
    > = BTreeMap::new();
    for stamped in &batch {
        let targets = sim.world.data_mut(ds_id).route(stamped);
        if targets.is_empty() {
            continue;
        }
        let size = stamped.wire_size();
        // Multicast semantics: receivers grouped by host, each receiving
        // segment charged one transmission, every arrival an independent
        // transfer-time offset rather than a serialized channel send.
        let (arrivals, delivery) = {
            let world = &sim.world;
            let hosts: Vec<&str> =
                targets.iter().map(|rs| world.render(*rs).host.as_str()).collect();
            let delivery = rave_net::multicast_deliver(&world.network, &ds_host, &hosts, size);
            let arrivals: Vec<(RenderServiceId, SimTime)> =
                delivery.arrivals.iter().map(|&(i, at)| (targets[i], now + at)).collect();
            (arrivals, delivery)
        };
        sim.world.data_mut(ds_id).fanout.record(&delivery);
        for (rs_id, wire) in arrivals {
            // Deliveries to any one subscriber stay FIFO in publish order
            // (TCP semantics): never earlier than anything already queued.
            let hw = sim.world.delivery_high_water.entry((ds_id, rs_id)).or_insert(SimTime::ZERO);
            let arrival = wire.max(*hw);
            *hw = arrival;
            let entry = per_sub.entry(rs_id).or_insert_with(|| (SimTime::ZERO, Vec::new()));
            entry.0 = entry.0.max(arrival);
            entry.1.push(std::sync::Arc::clone(stamped));
        }
    }
    for (rs_id, (at, list)) in per_sub {
        sim.schedule_at(at, move |sim| {
            let now = sim.now();
            let trace_deliveries = sim.world.config.update_delivery_trace;
            for stamped in &list {
                let rs = sim.world.render_mut(rs_id);
                // A benign race: the replica may legitimately reject an
                // update to a node it never held (interest narrowed since
                // routing).
                let applied = stamped.update.apply(&mut rs.scene).is_ok();
                if trace_deliveries {
                    sim.world.trace.record(
                        now,
                        TraceKind::UpdateDelivered,
                        format!("seq={} -> {rs_id} applied={applied}", stamped.seq),
                    );
                }
            }
        });
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(seqs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{InterestSet, NodeKind};

    fn sim() -> RaveSim {
        Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 42))
    }

    #[test]
    fn testbed_spawns_and_registers() {
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "Skull");
        let rs = s.world.spawn_render_service("tower");
        assert_eq!(s.world.data(ds).name, "Skull");
        assert_eq!(s.world.render(rs).host, "tower");
        let aps = s.world.registry.scan_access_points("RAVE", TechnicalModel::RenderService);
        assert_eq!(aps.len(), 1);
    }

    #[test]
    fn active_client_not_in_registry() {
        let mut s = sim();
        s.world.spawn_active_client("desktop");
        let aps = s.world.registry.scan_access_points("RAVE", TechnicalModel::RenderService);
        assert!(aps.is_empty());
    }

    #[test]
    fn publish_propagates_to_live_replicas() {
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "sess");
        let rs = s.world.spawn_render_service("tower");
        s.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());

        let id = s.world.data_mut(ds).scene.allocate_id();
        publish_update(
            &mut s,
            ds,
            "user",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "obj".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        // Master updated immediately; replica only after delivery.
        assert!(s.world.data(ds).scene.contains(id));
        assert!(!s.world.render(rs).scene.contains(id));
        s.run();
        assert!(s.world.render(rs).scene.contains(id));
        assert_eq!(s.world.trace.count(TraceKind::UpdateDelivered), 1);
    }

    #[test]
    fn replica_delivery_takes_network_time() {
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "sess");
        let rs = s.world.spawn_render_service("tower");
        s.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        let id = s.world.data_mut(ds).scene.allocate_id();
        publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "n".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        s.run();
        assert!(s.now().as_secs() > 0.0, "delivery charged wire time");
        assert!(s.now().as_secs() < 0.1, "but only milliseconds on the LAN");
    }

    #[test]
    fn sequence_numbers_increase_across_publishes() {
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "sess");
        let id1 = s.world.data_mut(ds).scene.allocate_id();
        let s1 = publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::AddNode {
                id: id1,
                parent: rave_scene::NodeId(0),
                name: "a".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        let id2 = s.world.data_mut(ds).scene.allocate_id();
        let s2 = publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::AddNode {
                id: id2,
                parent: rave_scene::NodeId(0),
                name: "b".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        assert!(s2 > s1);
    }

    #[test]
    fn channels_memoized_per_pair() {
        let mut s = sim();
        let a1 = s.world.send_bytes(SimTime::ZERO, "laptop", "tower", 1_000_000);
        // Second send on the same pair queues behind the first.
        let a2 = s.world.send_bytes(SimTime::ZERO, "laptop", "tower", 1_000_000);
        assert!(a2 > a1);
    }

    #[test]
    fn small_updates_cannot_overtake_large_ones() {
        // A big AddNode followed by a tiny CameraMoved to the same node:
        // FIFO delivery means the replica always applies both, in order.
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "sess");
        let rs = s.world.spawn_render_service("tower");
        s.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        let big_mesh = rave_scene::MeshData {
            positions: vec![rave_math::Vec3::ZERO; 3],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; 100_000],
            texture_bytes: 0,
        };
        let id = s.world.data_mut(ds).scene.allocate_id();
        publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "cam".into(),
                kind: NodeKind::Camera(rave_scene::CameraParams::default()),
            },
        )
        .unwrap();
        // Stuff the pipe with a large geometry update, then a tiny one.
        let id2 = s.world.data_mut(ds).scene.allocate_id();
        publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::AddNode {
                id: id2,
                parent: rave_scene::NodeId(0),
                name: "big".into(),
                kind: NodeKind::Mesh(std::sync::Arc::new(big_mesh)),
            },
        )
        .unwrap();
        let cam = rave_scene::CameraParams {
            position: rave_math::Vec3::new(9.0, 9.0, 9.0),
            ..Default::default()
        };
        publish_update(&mut s, ds, "u", SceneUpdate::CameraMoved { id, camera: cam }).unwrap();
        s.run();
        // Every delivery applied (in order), none rejected.
        for e in s.world.trace.of_kind(TraceKind::UpdateDelivered) {
            assert!(e.detail.contains("applied=true"), "out-of-order delivery: {}", e.detail);
        }
        assert_eq!(
            s.world.render(rs).scene.node(id).unwrap().transform().translation,
            rave_math::Vec3::new(9.0, 9.0, 9.0)
        );
    }

    #[test]
    fn failed_update_does_not_sequence() {
        let mut s = sim();
        let ds = s.world.spawn_data_service("adrenochrome", "sess");
        let err = publish_update(
            &mut s,
            ds,
            "u",
            SceneUpdate::RemoveNode { id: rave_scene::NodeId(999) },
        );
        assert!(err.is_err());
        assert_eq!(s.world.data(ds).audit.len(), 0, "failed update not recorded");
    }
}
