//! Pluggable durable persistence for the data service.
//!
//! The paper's data service streams the session to disk "in the form of
//! an audit trail" (§3.1.1). [`crate::DataService`] can run without any
//! sink (pure in-memory, as the simulation-heavy tests do), with the
//! JSON-lines trail (`save_session`), or — through this module — with a
//! [`rave_store::Store`]: a crash-safe write-ahead log plus snapshot
//! checkpoints that a replacement service recovers from after a failure.

use rave_scene::{AuditEntry, SceneTree};
use rave_store::{CompactionReport, Recovery, Store, StoreConfig};
use std::io;
use std::path::Path;

/// A durable sink the data service appends every accepted update to.
///
/// Implementations must be cheap to call on the commit path; heavy work
/// (snapshot serialization, compaction) belongs in [`checkpoint`], which
/// the service invokes only when [`checkpoint_due`] says so.
///
/// [`checkpoint`]: Persistence::checkpoint
/// [`checkpoint_due`]: Persistence::checkpoint_due
pub trait Persistence: std::fmt::Debug + Send {
    /// Durably log one committed update.
    fn append(&mut self, entry: &AuditEntry) -> io::Result<()>;

    /// True when enough updates have accumulated that the owner should
    /// checkpoint at the next opportunity.
    fn checkpoint_due(&self) -> bool;

    /// Write a full-scene checkpoint covering everything appended so far.
    /// Returns a human-readable summary line for tracing.
    fn checkpoint(&mut self, tree: &SceneTree, at_secs: f64) -> io::Result<String>;

    /// Sequence number of the last durably persisted update.
    fn last_seq(&self) -> u64;

    /// Flush buffered appends to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// [`Persistence`] backed by a [`rave_store::Store`] directory.
#[derive(Debug)]
pub struct StorePersistence {
    store: Store,
}

impl StorePersistence {
    /// Open (or create) the store at `dir`, repairing any crash-torn WAL
    /// tail left by a previous process.
    pub fn open(dir: impl AsRef<Path>, cfg: StoreConfig) -> io::Result<Self> {
        Ok(Self { store: Store::open(dir.as_ref(), cfg)? })
    }

    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Rebuild session state from a store directory: latest snapshot plus
    /// the WAL tail past it.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovery> {
        rave_store::recover(dir.as_ref())
    }
}

impl Persistence for StorePersistence {
    fn append(&mut self, entry: &AuditEntry) -> io::Result<()> {
        self.store.append(entry)
    }

    fn checkpoint_due(&self) -> bool {
        self.store.checkpoint_due()
    }

    fn checkpoint(&mut self, tree: &SceneTree, at_secs: f64) -> io::Result<String> {
        let seq = self.store.last_seq();
        let CompactionReport { segments_deleted, snapshots_deleted, bytes_freed } =
            self.store.checkpoint(tree, at_secs)?;
        Ok(format!(
            "checkpoint at seq {seq}: {} segment(s) + {snapshots_deleted} snapshot(s) \
             compacted, {bytes_freed} bytes freed",
            segments_deleted.len(),
        ))
    }

    fn last_seq(&self) -> u64 {
        self.store.last_seq()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{NodeKind, SceneUpdate, StampedUpdate};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rave-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_persistence_appends_and_recovers() {
        let dir = tmp_dir("roundtrip");
        let mut tree = SceneTree::new();
        {
            let cfg = StoreConfig { checkpoint_every: 4, ..Default::default() };
            let mut p = StorePersistence::open(&dir, cfg).unwrap();
            for seq in 1..=9 {
                let id = tree.allocate_id();
                let update = SceneUpdate::AddNode {
                    id,
                    parent: tree.root(),
                    name: format!("n{seq}"),
                    kind: NodeKind::Group,
                };
                update.apply(&mut tree).unwrap();
                p.append(&AuditEntry {
                    at_secs: seq as f64,
                    stamped: StampedUpdate { seq, origin: "p".into(), update },
                })
                .unwrap();
                if p.checkpoint_due() {
                    let line = p.checkpoint(&tree, seq as f64).unwrap();
                    assert!(line.contains("checkpoint at seq"));
                }
            }
            p.sync().unwrap();
            assert_eq!(p.last_seq(), 9);
        }
        let rec = StorePersistence::recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 9);
        assert_eq!(rec.tree, tree);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
