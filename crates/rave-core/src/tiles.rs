//! Framebuffer (tile) distribution (§3.2.5) and the Fig 5 tearing
//! scenario.
//!
//! "To distribute the framebuffer, the render service divides its target
//! frame buffer into tiles. A single tile is rendered locally, whilst the
//! remaining tiles are rendered remotely... The assisting render service
//! renders to an off-screen buffer, which it then forwards directly to
//! the requesting render service."

use crate::capacity::CapacityReport;
use crate::config::CompressionMode;
use crate::ids::{ClientId, RenderServiceId};
use crate::sched::placement::rank_helpers;
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_compress::adaptive::EndpointSpeed;
use rave_math::Viewport;
use rave_render::composite::stitch_tiles;
use rave_render::{Framebuffer, OffscreenMode};
use rave_scene::CameraParams;
use rave_sim::SimTime;
use std::collections::BTreeSet;

/// A tile assignment: who renders which rectangle of the target image.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePlan {
    pub tiles: Vec<(Viewport, RenderServiceId)>,
}

impl TilePlan {
    pub fn helpers(&self) -> BTreeSet<RenderServiceId> {
        self.tiles.iter().skip(1).map(|(_, rs)| *rs).collect()
    }
}

/// Order helpers strongest-first, dropping those that can contribute
/// nothing: zero advertised headroom, or beyond what the viewport can
/// give a ≥1px strip (one column per participant is the floor). The
/// ranking itself is the scheduler's shared participant-selection
/// primitive; the owner always keeps a strip, so at most `width - 1`
/// helpers fit.
fn usable_helpers<'a>(
    viewport: &Viewport,
    helpers: &'a [CapacityReport],
) -> Vec<&'a CapacityReport> {
    rank_helpers(helpers, viewport.width.saturating_sub(1) as usize)
}

/// Split `viewport` into one tile per participant. The owner takes the
/// first tile; helpers are ordered most-capacity-first so the largest
/// remainder tiles go to the strongest assistants.
///
/// Degenerate inputs degrade to fewer (never zero-width) tiles: helpers
/// advertising zero capacity are dropped, and a viewport narrower than
/// the participant count keeps only the strongest helpers that can still
/// get a ≥1px strip.
pub fn plan_tiles(
    viewport: &Viewport,
    owner: RenderServiceId,
    helpers: &[CapacityReport],
) -> TilePlan {
    let ordered = usable_helpers(viewport, helpers);
    let n = ordered.len() as u32 + 1;
    // Vertical strips: exactly one tile per participant, covering every
    // pixel exactly once (Fig 5 shows precisely this side-by-side split).
    let cells = viewport.split_tiles(n, 1);
    let mut tiles = Vec::with_capacity(n as usize);
    for (i, cell) in cells.into_iter().enumerate() {
        let svc = if i == 0 { owner } else { ordered[i - 1].service };
        tiles.push((cell, svc));
    }
    TilePlan { tiles }
}

/// Per-service render throughput in
/// [`rave_render::raster::RasterStats::cost_units`] per second. This is
/// the §3.2.5 feedback loop closed: advertised capacity seeds the plan,
/// but the split converges on what each service *actually* delivers.
///
/// The EWMA itself was promoted into the scheduler as
/// [`crate::sched::ThroughputTracker`]; this alias keeps the tile
/// planner's historical name working.
pub type TileCostTracker = crate::sched::ThroughputTracker;

/// Like [`plan_tiles`], but strip widths follow *measured* throughput
/// from `tracker` where available: a helper that advertised a big GPU but
/// delivers tiles slowly shrinks, a quietly fast one grows. Services
/// never observed get the mean observed throughput (neutral weight);
/// with no observations at all this is exactly [`plan_tiles`].
pub fn plan_tiles_with_feedback(
    viewport: &Viewport,
    owner: RenderServiceId,
    helpers: &[CapacityReport],
    tracker: &TileCostTracker,
) -> TilePlan {
    let ordered = usable_helpers(viewport, helpers);
    if tracker.observed_services() == 0 || viewport.width == 0 {
        return plan_tiles(viewport, owner, helpers);
    }
    let participants: Vec<RenderServiceId> =
        std::iter::once(owner).chain(ordered.iter().map(|r| r.service)).collect();
    // Integer weights normalized to the fastest observed service; the
    // 1-unit floor keeps never-observed stragglers in the plan.
    let weights = tracker.split_weights(&participants);
    let cells = viewport.split_columns_weighted(&weights);
    TilePlan { tiles: cells.into_iter().zip(participants).collect() }
}

/// Measured cost of one tile in a distributed frame.
#[derive(Debug, Clone, Copy)]
pub struct TileCost {
    pub service: RenderServiceId,
    /// Work performed, in `RasterStats::cost_units` (measured from real
    /// rasterization when images are produced, else the machine-model
    /// proxy `pixels + 8·polygons`).
    pub cost_units: u64,
    /// Machine-model render seconds for the tile (excludes network).
    pub render_seconds: f64,
    /// False for stale tiles reused from a previous frame — they carry
    /// no fresh measurement.
    pub fresh: bool,
}

/// Result of one distributed tiled frame.
#[derive(Debug)]
pub struct TiledFrameResult {
    /// When every tile (fresh or stale) was in place.
    pub completed_at: SimTime,
    /// Arrival time per tile, parallel to the plan.
    pub tile_arrivals: Vec<SimTime>,
    /// The stitched image (only when the world renders images).
    pub image: Option<Framebuffer>,
    /// Whether any stale tile was used (tearing possible).
    pub used_stale_tile: bool,
    /// Per-tile measured cost, parallel to the plan — the feedback signal
    /// for [`TileCostTracker`].
    pub tile_costs: Vec<TileCost>,
}

/// Feed one frame's measured tile costs into `tracker` and trace the
/// updated picture. Stale tiles are skipped (nothing was rendered). The
/// same observations also land in the world's scheduler-level tracker,
/// where the `CostDrift` rebalance trigger reads them.
pub fn record_tile_costs(
    sim: &mut RaveSim,
    result: &TiledFrameResult,
    tracker: &mut TileCostTracker,
) {
    let mut detail = String::from("tile throughput:");
    let mut any = false;
    for tc in &result.tile_costs {
        if !tc.fresh {
            continue;
        }
        tracker.record(tc.service, tc.cost_units, tc.render_seconds);
        sim.world.sched.throughput.record(tc.service, tc.cost_units, tc.render_seconds);
        any = true;
        let rate = tracker.throughput(tc.service).unwrap_or(0.0);
        detail.push_str(&format!(" {}={rate:.0}u/s", tc.service));
    }
    if any {
        sim.world.trace.record(result.completed_at, TraceKind::TileCostFeedback, detail);
    }
}

/// Render one frame of `client`'s session on `owner` under `plan`,
/// "continuously stream... best effort" semantics:
///
/// - the owner renders its own tile on-screen;
/// - each helper renders its tile off-screen *with the camera it
///   currently knows* and ships it back;
/// - helpers in `stalled` do not respond this frame, so the owner reuses
///   their previous tile (stale camera ⇒ the Fig 5 tear). The paper
///   produced its figure "by artificially stalling the remote render
///   service" — `stalled` is that injection point.
///
/// Camera propagation: non-stalled helpers receive `camera` with the
/// request; stalled ones keep their session camera unchanged.
pub fn render_tiled_frame(
    sim: &mut RaveSim,
    owner: RenderServiceId,
    client: ClientId,
    plan: &TilePlan,
    camera: CameraParams,
    stalled: &BTreeSet<RenderServiceId>,
) -> TiledFrameResult {
    let t0 = sim.now();
    let produce_images = sim.world.config.produce_images;
    let owner_host = sim.world.render(owner).host.clone();
    let (full_viewport, _) = {
        let rs = sim.world.render_mut(owner);
        let session = rs.sessions.get_mut(&client).expect("owner session");
        session.camera = camera;
        (session.viewport, ())
    };

    let mut tile_arrivals = Vec::with_capacity(plan.tiles.len());
    let mut images: Vec<Option<Framebuffer>> = Vec::with_capacity(plan.tiles.len());
    let mut tile_costs = Vec::with_capacity(plan.tiles.len());
    let mut used_stale = false;

    for (i, (tile_vp, svc)) in plan.tiles.iter().enumerate() {
        let pixels = tile_vp.pixel_count() as u64;
        if *svc == owner {
            // Local tile, on-screen path.
            let polys = sim.world.render(owner).assigned_cost().polygons;
            let cost = sim.world.render(owner).machine.onscreen_cost(polys, pixels);
            let done = t0 + SimTime::from_secs(cost.total());
            tile_arrivals.push(done);
            let (img, units) = if produce_images {
                let (img, stats) = sim.world.render(owner).rasterize_tile_with_stats(
                    &camera,
                    &full_viewport,
                    tile_vp,
                );
                (Some(img), stats.raster.cost_units())
            } else {
                // Machine-model proxy when pixel work is skipped.
                (None, pixels + 8 * polys)
            };
            images.push(img);
            tile_costs.push(TileCost {
                service: owner,
                cost_units: units,
                render_seconds: cost.total(),
                fresh: true,
            });
            continue;
        }
        let helper_host = sim.world.render(*svc).host.clone();
        if stalled.contains(svc) {
            // No response this frame: stale tile rendered with the
            // helper's *old* camera arrives "immediately" (it was already
            // here from the previous frame).
            used_stale = true;
            let stale_camera =
                sim.world.render(*svc).sessions.get(&client).map(|s| s.camera).unwrap_or(camera);
            tile_arrivals.push(t0);
            images.push(produce_images.then(|| {
                sim.world.render(*svc).rasterize_tile(&stale_camera, &full_viewport, tile_vp)
            }));
            tile_costs.push(TileCost {
                service: *svc,
                cost_units: 0,
                render_seconds: 0.0,
                fresh: false,
            });
            continue;
        }
        // Fresh helper tile: request → off-screen render → tile transfer.
        {
            let rs = sim.world.render_mut(*svc);
            let entry =
                rs.sessions.entry(client).or_insert_with(|| crate::render_service::RenderSession {
                    client,
                    viewport: *tile_vp,
                    camera,
                    mode: OffscreenMode::Sequential,
                    frames_rendered: 0,
                    last_frame: None,
                });
            entry.camera = camera;
            entry.viewport = *tile_vp;
        }
        let req_arrives = sim.world.send_bytes(t0, &owner_host, &helper_host, 128);
        let polys = sim.world.render(*svc).assigned_cost().polygons;
        let cost =
            sim.world.render(*svc).machine.offscreen_cost(polys, pixels, OffscreenMode::Sequential);
        let rendered = req_arrives + SimTime::from_secs(cost.total());
        let (img, units) = if produce_images {
            let (img, stats) =
                sim.world.render(*svc).rasterize_tile_with_stats(&camera, &full_viewport, tile_vp);
            (Some(img), stats.raster.cost_units())
        } else {
            (None, pixels + 8 * polys)
        };
        // Tile return: raw 24 bpp, or the compressed stream when the
        // world has real pixels to encode. Always lossless — the tile is
        // stitched into a composite that must match a monolithic render.
        let arrival = match (&img, sim.world.config.frame_compression) {
            (Some(fb), CompressionMode::Adaptive) => {
                let out = crate::frame_stream::send_frame(
                    &mut sim.world,
                    rendered,
                    *svc,
                    client,
                    &helper_host,
                    &owner_host,
                    &fb.to_rgb_bytes(),
                    EndpointSpeed::workstation(),
                    EndpointSpeed::workstation(),
                    false,
                );
                // The owner decodes before it can stitch.
                out.arrival + SimTime::from_secs(out.decode_secs)
            }
            _ => sim.world.send_bytes(rendered, &helper_host, &owner_host, pixels * 3),
        };
        tile_arrivals.push(arrival);
        images.push(img);
        tile_costs.push(TileCost {
            service: *svc,
            cost_units: units,
            render_seconds: cost.total(),
            fresh: true,
        });
        let _ = i;
    }

    let completed_at = tile_arrivals.iter().copied().fold(t0, SimTime::max);
    let image = if produce_images {
        let mut target = Framebuffer::new(full_viewport.width, full_viewport.height);
        let refs: Vec<(Viewport, &Framebuffer)> = plan
            .tiles
            .iter()
            .zip(&images)
            .map(|((vp, _), img)| (*vp, img.as_ref().expect("image mode")))
            .collect();
        stitch_tiles(&mut target, &refs);
        Some(target)
    } else {
        None
    };
    sim.world.trace.record(
        completed_at,
        TraceKind::FrameDelivered,
        format!(
            "tiled frame for {client} on {owner}: {} tiles, stale={used_stale}",
            plan.tiles.len()
        ),
    );
    TiledFrameResult { completed_at, tile_arrivals, image, used_stale_tile: used_stale, tile_costs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeCost, NodeKind};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn report(id: RenderServiceId, headroom: u64) -> CapacityReport {
        CapacityReport {
            service: id,
            host: "x".into(),
            polys_per_sec: 1e7,
            poly_headroom: headroom,
            texture_headroom: u64::MAX,
            volume_hw: false,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        }
    }

    #[test]
    fn plan_covers_viewport_once() {
        let vp = Viewport::new(400, 400);
        let plan = plan_tiles(
            &vp,
            RenderServiceId(1),
            &[report(RenderServiceId(2), 100), report(RenderServiceId(3), 500)],
        );
        assert_eq!(plan.tiles.len(), 3);
        let total: usize = plan.tiles.iter().map(|(t, _)| t.pixel_count()).sum();
        assert_eq!(total, vp.pixel_count());
        // Owner gets the first tile.
        assert_eq!(plan.tiles[0].1, RenderServiceId(1));
        // Strongest helper ordered first.
        assert_eq!(plan.tiles[1].1, RenderServiceId(3));
    }

    #[test]
    fn plan_with_no_helpers_is_single_tile() {
        let vp = Viewport::new(100, 100);
        let plan = plan_tiles(&vp, RenderServiceId(1), &[]);
        assert_eq!(plan.tiles.len(), 1);
        assert_eq!(plan.tiles[0].0, vp);
    }

    fn assert_no_degenerate_tiles(vp: &Viewport, plan: &TilePlan) {
        let total: usize = plan.tiles.iter().map(|(t, _)| t.pixel_count()).sum();
        assert_eq!(total, vp.pixel_count(), "plan covers viewport");
        assert!(plan.tiles.iter().all(|(t, _)| t.width > 0), "no zero-width tiles");
    }

    #[test]
    fn zero_capacity_helpers_are_dropped() {
        let vp = Viewport::new(300, 200);
        let plan = plan_tiles(
            &vp,
            RenderServiceId(1),
            &[report(RenderServiceId(2), 0), report(RenderServiceId(3), 50)],
        );
        // The dead helper gets no tile; the live one still assists.
        assert_eq!(plan.tiles.len(), 2);
        assert_eq!(plan.tiles[1].1, RenderServiceId(3));
        assert_no_degenerate_tiles(&vp, &plan);

        let all_dead = plan_tiles(
            &vp,
            RenderServiceId(1),
            &[report(RenderServiceId(2), 0), report(RenderServiceId(3), 0)],
        );
        assert_eq!(all_dead.tiles.len(), 1, "owner renders alone");
        assert_no_degenerate_tiles(&vp, &all_dead);
    }

    #[test]
    fn narrow_viewport_keeps_strongest_helpers_only() {
        // 3 pixels wide, 5 participants: owner + 2 strongest helpers fit.
        let vp = Viewport::new(3, 64);
        let helpers: Vec<_> = (2..=5).map(|i| report(RenderServiceId(i), i as u64 * 10)).collect();
        let plan = plan_tiles(&vp, RenderServiceId(1), &helpers);
        assert_eq!(plan.tiles.len(), 3);
        assert_eq!(plan.tiles[0].1, RenderServiceId(1));
        assert_eq!(plan.tiles[1].1, RenderServiceId(5));
        assert_eq!(plan.tiles[2].1, RenderServiceId(4));
        assert_no_degenerate_tiles(&vp, &plan);
    }

    #[test]
    fn feedback_plan_reweights_toward_fast_services() {
        let vp = Viewport::new(400, 300);
        let owner = RenderServiceId(1);
        let helpers = [report(RenderServiceId(2), 100), report(RenderServiceId(3), 100)];

        let mut tracker = TileCostTracker::new();
        // No observations: identical to the capacity plan.
        let cold = plan_tiles_with_feedback(&vp, owner, &helpers, &tracker);
        assert_eq!(cold, plan_tiles(&vp, owner, &helpers));

        // Helper 3 demonstrably renders 4x faster than everyone else.
        tracker.record(owner, 10_000, 1.0);
        tracker.record(RenderServiceId(2), 10_000, 1.0);
        tracker.record(RenderServiceId(3), 40_000, 1.0);
        let warm = plan_tiles_with_feedback(&vp, owner, &helpers, &tracker);
        assert_no_degenerate_tiles(&vp, &warm);
        let width_of = |plan: &TilePlan, svc: RenderServiceId| {
            plan.tiles.iter().find(|(_, s)| *s == svc).map(|(t, _)| t.width).unwrap()
        };
        assert!(
            width_of(&warm, RenderServiceId(3)) > 2 * width_of(&warm, RenderServiceId(2)),
            "observed-fast helper gets a much wider strip: {warm:?}"
        );
    }

    #[test]
    fn tracker_ewma_converges_and_ignores_zero_durations() {
        let mut tracker = TileCostTracker::new();
        let svc = RenderServiceId(7);
        tracker.record(svc, 1000, 0.0); // stale tile: no measurement
        assert!(tracker.throughput(svc).is_none());
        tracker.record(svc, 1000, 1.0);
        assert_eq!(tracker.throughput(svc).unwrap(), 1000.0);
        for _ in 0..40 {
            tracker.record(svc, 4000, 1.0);
        }
        let rate = tracker.throughput(svc).unwrap();
        assert!((rate - 4000.0).abs() < 10.0, "EWMA converged: {rate}");
    }

    fn tiled_world() -> (RaveSim, RenderServiceId, RenderServiceId, ClientId) {
        let cfg = RaveConfig { produce_images: true, ..RaveConfig::default() };
        let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 5));
        let owner = sim.world.spawn_render_service("laptop");
        let helper = sim.world.spawn_render_service("tower");
        // Both replicas hold the same small scene (a triangle strip).
        let mesh = MeshData::new(
            vec![Vec3::new(-1.5, -1.0, 0.0), Vec3::new(1.5, -1.0, 0.0), Vec3::new(0.0, 1.5, 0.0)],
            vec![[0, 1, 2]],
        );
        for rs in [owner, helper] {
            let scene = &mut sim.world.render_mut(rs).scene;
            let root = scene.root();
            scene
                .insert_with_id(
                    rave_scene::NodeId(1),
                    root,
                    "tri",
                    NodeKind::Mesh(Arc::new(mesh.clone())),
                )
                .unwrap();
        }
        let client = sim.world.spawn_thin_client("zaurus");
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        sim.world.render_mut(owner).open_session(
            client,
            Viewport::new(64, 64),
            cam,
            OffscreenMode::Sequential,
        );
        (sim, owner, helper, client)
    }

    #[test]
    fn tiled_render_matches_monolithic_image() {
        let (mut sim, owner, helper, client) = tiled_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        let tiled = result.image.unwrap();
        // Monolithic reference.
        let mono = sim.world.render_mut(owner).rasterize(client).unwrap();
        assert_eq!(mono.diff_fraction(&tiled, 0.0), 0.0, "tiling is invisible");
        assert!(!result.used_stale_tile);
    }

    #[test]
    fn stalled_helper_with_moved_camera_tears() {
        let (mut sim, owner, helper, client) = tiled_world();
        let cam0 = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        // Frame 1: everyone in sync.
        render_tiled_frame(&mut sim, owner, client, &plan, cam0, &BTreeSet::new());
        // Frame 2: camera moved, helper stalled.
        let mut cam1 = cam0;
        cam1.orbit(Vec3::ZERO, 0.35, 0.0);
        let stalled: BTreeSet<_> = [helper].into_iter().collect();
        let torn =
            render_tiled_frame(&mut sim, owner, client, &plan, cam1, &stalled).image.unwrap();
        assert!(sim.world.trace.render().contains("stale=true"));
        // Reference run in a fresh world: helper not stalled.
        let (mut sim2, o2, h2, c2) = tiled_world();
        let plan2 = plan_tiles(&Viewport::new(64, 64), o2, &[report(h2, 100)]);
        render_tiled_frame(&mut sim2, o2, c2, &plan2, cam0, &BTreeSet::new());
        let clean =
            render_tiled_frame(&mut sim2, o2, c2, &plan2, cam1, &BTreeSet::new()).image.unwrap();
        assert!(
            torn.diff_fraction(&clean, 0.0) > 0.0,
            "stale tile produces a visibly different (torn) image"
        );
    }

    #[test]
    fn compressed_tile_return_stays_bit_exact_and_shrinks_static_frames() {
        let (mut sim, owner, helper, client) = tiled_world();
        sim.world.config.frame_compression = CompressionMode::Adaptive;
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let r1 = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        let tiled = r1.image.unwrap();
        let mono = sim.world.render_mut(owner).rasterize(client).unwrap();
        assert_eq!(mono.diff_fraction(&tiled, 0.0), 0.0, "compressed tiling is invisible");

        // Frame 2, camera unchanged: the helper tile is byte-identical, so
        // the dirty-strip container ships almost nothing.
        let before = sim.world.frame_cache.stats(helper, client).unwrap();
        let r2 = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        let after = sim.world.frame_cache.stats(helper, client).unwrap();
        assert_eq!(after.frames, before.frames + 1);
        let frame2_bytes = after.encoded_bytes - before.encoded_bytes;
        assert!(frame2_bytes < 64, "static tile resend cost {frame2_bytes} bytes");
        assert_eq!(r2.image.unwrap().diff_fraction(&mono, 0.0), 0.0);
    }

    #[test]
    fn helper_tiles_cost_network_time() {
        let (mut sim, owner, helper, client) = tiled_world();
        sim.world.config.produce_images = false;
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        assert!(result.image.is_none());
        // Helper tile arrives after the local one (network round trip).
        assert!(result.tile_arrivals[1] > result.tile_arrivals[0]);
        assert_eq!(result.completed_at, result.tile_arrivals[1]);
    }

    #[test]
    fn frame_costs_feed_tracker_and_trace() {
        let (mut sim, owner, helper, client) = tiled_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        assert_eq!(result.tile_costs.len(), 2);
        assert!(result.tile_costs.iter().all(|tc| tc.fresh && tc.render_seconds > 0.0));

        let mut tracker = TileCostTracker::new();
        record_tile_costs(&mut sim, &result, &mut tracker);
        assert!(tracker.throughput(owner).is_some());
        assert!(tracker.throughput(helper).is_some());
        assert_eq!(sim.world.trace.count(TraceKind::TileCostFeedback), 1);

        // A stalled helper's stale tile carries no fresh measurement.
        let stalled: BTreeSet<_> = [helper].into_iter().collect();
        let r2 = render_tiled_frame(&mut sim, owner, client, &plan, cam, &stalled);
        assert!(!r2.tile_costs[1].fresh);
        let before = tracker.throughput(helper).unwrap();
        record_tile_costs(&mut sim, &r2, &mut tracker);
        assert_eq!(tracker.throughput(helper).unwrap(), before);
    }
}
