//! Framebuffer (tile) distribution (§3.2.5) and the Fig 5 tearing
//! scenario.
//!
//! "To distribute the framebuffer, the render service divides its target
//! frame buffer into tiles. A single tile is rendered locally, whilst the
//! remaining tiles are rendered remotely... The assisting render service
//! renders to an off-screen buffer, which it then forwards directly to
//! the requesting render service."

use crate::capacity::CapacityReport;
use crate::ids::{ClientId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_math::Viewport;
use rave_render::composite::stitch_tiles;
use rave_render::{Framebuffer, OffscreenMode};
use rave_scene::CameraParams;
use rave_sim::SimTime;
use std::collections::BTreeSet;

/// A tile assignment: who renders which rectangle of the target image.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePlan {
    pub tiles: Vec<(Viewport, RenderServiceId)>,
}

impl TilePlan {
    pub fn helpers(&self) -> BTreeSet<RenderServiceId> {
        self.tiles.iter().skip(1).map(|(_, rs)| *rs).collect()
    }
}

/// Split `viewport` into one tile per participant. The owner takes the
/// first tile; helpers are ordered most-capacity-first so the largest
/// remainder tiles go to the strongest assistants.
pub fn plan_tiles(
    viewport: &Viewport,
    owner: RenderServiceId,
    helpers: &[CapacityReport],
) -> TilePlan {
    let n = helpers.len() as u32 + 1;
    // Vertical strips: exactly one tile per participant, covering every
    // pixel exactly once (Fig 5 shows precisely this side-by-side split).
    let cells = viewport.split_tiles(n, 1);
    let mut ordered: Vec<&CapacityReport> = helpers.iter().collect();
    ordered.sort_by_key(|r| std::cmp::Reverse(r.headroom_weight()));
    let mut tiles = Vec::with_capacity(n as usize);
    for (i, cell) in cells.into_iter().enumerate() {
        let svc = if i == 0 { owner } else { ordered[i - 1].service };
        tiles.push((cell, svc));
    }
    TilePlan { tiles }
}

/// Result of one distributed tiled frame.
#[derive(Debug)]
pub struct TiledFrameResult {
    /// When every tile (fresh or stale) was in place.
    pub completed_at: SimTime,
    /// Arrival time per tile, parallel to the plan.
    pub tile_arrivals: Vec<SimTime>,
    /// The stitched image (only when the world renders images).
    pub image: Option<Framebuffer>,
    /// Whether any stale tile was used (tearing possible).
    pub used_stale_tile: bool,
}

/// Render one frame of `client`'s session on `owner` under `plan`,
/// "continuously stream... best effort" semantics:
///
/// - the owner renders its own tile on-screen;
/// - each helper renders its tile off-screen *with the camera it
///   currently knows* and ships it back;
/// - helpers in `stalled` do not respond this frame, so the owner reuses
///   their previous tile (stale camera ⇒ the Fig 5 tear). The paper
///   produced its figure "by artificially stalling the remote render
///   service" — `stalled` is that injection point.
///
/// Camera propagation: non-stalled helpers receive `camera` with the
/// request; stalled ones keep their session camera unchanged.
pub fn render_tiled_frame(
    sim: &mut RaveSim,
    owner: RenderServiceId,
    client: ClientId,
    plan: &TilePlan,
    camera: CameraParams,
    stalled: &BTreeSet<RenderServiceId>,
) -> TiledFrameResult {
    let t0 = sim.now();
    let produce_images = sim.world.config.produce_images;
    let owner_host = sim.world.render(owner).host.clone();
    let (full_viewport, _) = {
        let rs = sim.world.render_mut(owner);
        let session = rs.sessions.get_mut(&client).expect("owner session");
        session.camera = camera;
        (session.viewport, ())
    };

    let mut tile_arrivals = Vec::with_capacity(plan.tiles.len());
    let mut images: Vec<Option<Framebuffer>> = Vec::with_capacity(plan.tiles.len());
    let mut used_stale = false;

    for (i, (tile_vp, svc)) in plan.tiles.iter().enumerate() {
        let pixels = tile_vp.pixel_count() as u64;
        if *svc == owner {
            // Local tile, on-screen path.
            let polys = sim.world.render(owner).assigned_cost().polygons;
            let cost = sim.world.render(owner).machine.onscreen_cost(polys, pixels);
            let done = t0 + SimTime::from_secs(cost.total());
            tile_arrivals.push(done);
            images.push(
                produce_images.then(|| {
                    sim.world.render(owner).rasterize_tile(&camera, &full_viewport, tile_vp)
                }),
            );
            continue;
        }
        let helper_host = sim.world.render(*svc).host.clone();
        if stalled.contains(svc) {
            // No response this frame: stale tile rendered with the
            // helper's *old* camera arrives "immediately" (it was already
            // here from the previous frame).
            used_stale = true;
            let stale_camera =
                sim.world.render(*svc).sessions.get(&client).map(|s| s.camera).unwrap_or(camera);
            tile_arrivals.push(t0);
            images.push(produce_images.then(|| {
                sim.world.render(*svc).rasterize_tile(&stale_camera, &full_viewport, tile_vp)
            }));
            continue;
        }
        // Fresh helper tile: request → off-screen render → tile transfer.
        {
            let rs = sim.world.render_mut(*svc);
            let entry =
                rs.sessions.entry(client).or_insert_with(|| crate::render_service::RenderSession {
                    client,
                    viewport: *tile_vp,
                    camera,
                    mode: OffscreenMode::Sequential,
                    frames_rendered: 0,
                    last_frame: None,
                });
            entry.camera = camera;
            entry.viewport = *tile_vp;
        }
        let req_arrives = sim.world.send_bytes(t0, &owner_host, &helper_host, 128);
        let polys = sim.world.render(*svc).assigned_cost().polygons;
        let cost =
            sim.world.render(*svc).machine.offscreen_cost(polys, pixels, OffscreenMode::Sequential);
        let rendered = req_arrives + SimTime::from_secs(cost.total());
        let arrival = sim.world.send_bytes(rendered, &helper_host, &owner_host, pixels * 3);
        tile_arrivals.push(arrival);
        images.push(
            produce_images
                .then(|| sim.world.render(*svc).rasterize_tile(&camera, &full_viewport, tile_vp)),
        );
        let _ = i;
    }

    let completed_at = tile_arrivals.iter().copied().fold(t0, SimTime::max);
    let image = if produce_images {
        let mut target = Framebuffer::new(full_viewport.width, full_viewport.height);
        let refs: Vec<(Viewport, &Framebuffer)> = plan
            .tiles
            .iter()
            .zip(&images)
            .map(|((vp, _), img)| (*vp, img.as_ref().expect("image mode")))
            .collect();
        stitch_tiles(&mut target, &refs);
        Some(target)
    } else {
        None
    };
    sim.world.trace.record(
        completed_at,
        TraceKind::FrameDelivered,
        format!(
            "tiled frame for {client} on {owner}: {} tiles, stale={used_stale}",
            plan.tiles.len()
        ),
    );
    TiledFrameResult { completed_at, tile_arrivals, image, used_stale_tile: used_stale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeCost, NodeKind};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn report(id: RenderServiceId, headroom: u64) -> CapacityReport {
        CapacityReport {
            service: id,
            host: "x".into(),
            polys_per_sec: 1e7,
            poly_headroom: headroom,
            texture_headroom: u64::MAX,
            volume_hw: false,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        }
    }

    #[test]
    fn plan_covers_viewport_once() {
        let vp = Viewport::new(400, 400);
        let plan = plan_tiles(
            &vp,
            RenderServiceId(1),
            &[report(RenderServiceId(2), 100), report(RenderServiceId(3), 500)],
        );
        assert_eq!(plan.tiles.len(), 3);
        let total: usize = plan.tiles.iter().map(|(t, _)| t.pixel_count()).sum();
        assert_eq!(total, vp.pixel_count());
        // Owner gets the first tile.
        assert_eq!(plan.tiles[0].1, RenderServiceId(1));
        // Strongest helper ordered first.
        assert_eq!(plan.tiles[1].1, RenderServiceId(3));
    }

    #[test]
    fn plan_with_no_helpers_is_single_tile() {
        let vp = Viewport::new(100, 100);
        let plan = plan_tiles(&vp, RenderServiceId(1), &[]);
        assert_eq!(plan.tiles.len(), 1);
        assert_eq!(plan.tiles[0].0, vp);
    }

    fn tiled_world() -> (RaveSim, RenderServiceId, RenderServiceId, ClientId) {
        let cfg = RaveConfig { produce_images: true, ..RaveConfig::default() };
        let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 5));
        let owner = sim.world.spawn_render_service("laptop");
        let helper = sim.world.spawn_render_service("tower");
        // Both replicas hold the same small scene (a triangle strip).
        let mesh = MeshData::new(
            vec![Vec3::new(-1.5, -1.0, 0.0), Vec3::new(1.5, -1.0, 0.0), Vec3::new(0.0, 1.5, 0.0)],
            vec![[0, 1, 2]],
        );
        for rs in [owner, helper] {
            let scene = &mut sim.world.render_mut(rs).scene;
            let root = scene.root();
            scene
                .insert_with_id(
                    rave_scene::NodeId(1),
                    root,
                    "tri",
                    NodeKind::Mesh(Arc::new(mesh.clone())),
                )
                .unwrap();
        }
        let client = sim.world.spawn_thin_client("zaurus");
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        sim.world.render_mut(owner).open_session(
            client,
            Viewport::new(64, 64),
            cam,
            OffscreenMode::Sequential,
        );
        (sim, owner, helper, client)
    }

    #[test]
    fn tiled_render_matches_monolithic_image() {
        let (mut sim, owner, helper, client) = tiled_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        let tiled = result.image.unwrap();
        // Monolithic reference.
        let mono = sim.world.render_mut(owner).rasterize(client).unwrap();
        assert_eq!(mono.diff_fraction(&tiled, 0.0), 0.0, "tiling is invisible");
        assert!(!result.used_stale_tile);
    }

    #[test]
    fn stalled_helper_with_moved_camera_tears() {
        let (mut sim, owner, helper, client) = tiled_world();
        let cam0 = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        // Frame 1: everyone in sync.
        render_tiled_frame(&mut sim, owner, client, &plan, cam0, &BTreeSet::new());
        // Frame 2: camera moved, helper stalled.
        let mut cam1 = cam0;
        cam1.orbit(Vec3::ZERO, 0.35, 0.0);
        let stalled: BTreeSet<_> = [helper].into_iter().collect();
        let torn =
            render_tiled_frame(&mut sim, owner, client, &plan, cam1, &stalled).image.unwrap();
        assert!(sim.world.trace.render().contains("stale=true"));
        // Reference run in a fresh world: helper not stalled.
        let (mut sim2, o2, h2, c2) = tiled_world();
        let plan2 = plan_tiles(&Viewport::new(64, 64), o2, &[report(h2, 100)]);
        render_tiled_frame(&mut sim2, o2, c2, &plan2, cam0, &BTreeSet::new());
        let clean =
            render_tiled_frame(&mut sim2, o2, c2, &plan2, cam1, &BTreeSet::new()).image.unwrap();
        assert!(
            torn.diff_fraction(&clean, 0.0) > 0.0,
            "stale tile produces a visibly different (torn) image"
        );
    }

    #[test]
    fn helper_tiles_cost_network_time() {
        let (mut sim, owner, helper, client) = tiled_world();
        sim.world.config.produce_images = false;
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let plan = plan_tiles(&Viewport::new(64, 64), owner, &[report(helper, 100)]);
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam, &BTreeSet::new());
        assert!(result.image.is_none());
        // Helper tile arrives after the local one (network round trip).
        assert!(result.tile_arrivals[1] > result.tile_arrivals[0]);
        assert_eq!(result.completed_at, result.tile_arrivals[1]);
    }
}
