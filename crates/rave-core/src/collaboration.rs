//! Collaboration (§3.2.4, §5.2).
//!
//! "Clients are represented in the dataset by an avatar — a simple
//! graphical object to indicate the position and view of the client.
//! Clients can manipulate items in the dataset, with scene updates being
//! sent to the central data service for reflection to other
//! clients/services." Fig 3 shows the host "Desktop" navigating as a cone
//! avatar in another user's view.

use crate::ids::DataServiceId;
use crate::trace::TraceKind;
use crate::world::{publish_batch, publish_update, RaveSim};
use rave_math::Vec3;
use rave_scene::node::Interaction;
use rave_scene::{
    AvatarInfo, CameraParams, NodeId, NodeKind, SceneTree, SceneUpdate, Transform, UpdateError,
};

/// A participant handle: the avatar node representing a user/host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participant {
    pub avatar: NodeId,
}

/// Join a session: publishes the avatar node; every replica will render
/// this user's presence.
pub fn join_session(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    label: &str,
    color: Vec3,
    camera: CameraParams,
) -> Result<Participant, UpdateError> {
    let (id, parent) = {
        let ds = sim.world.data_mut(ds_id);
        (ds.scene.allocate_id(), ds.scene.root())
    };
    publish_update(
        sim,
        ds_id,
        label,
        SceneUpdate::AddNode {
            id,
            parent,
            name: format!("avatar-{label}"),
            kind: NodeKind::Avatar(AvatarInfo { label: label.into(), color, camera }),
        },
    )?;
    // Pose the avatar at the camera immediately.
    publish_update(sim, ds_id, label, SceneUpdate::CameraMoved { id, camera })?;
    let now = sim.now();
    sim.world.trace.record(now, TraceKind::Collaboration, format!("{label} joined {ds_id}"));
    Ok(Participant { avatar: id })
}

/// Leave a session: removes the avatar everywhere.
pub fn leave_session(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    who: Participant,
    label: &str,
) -> Result<(), UpdateError> {
    publish_update(sim, ds_id, label, SceneUpdate::RemoveNode { id: who.avatar })?;
    let now = sim.now();
    sim.world.trace.record(now, TraceKind::Collaboration, format!("{label} left {ds_id}"));
    Ok(())
}

/// A camera drag: updates the avatar's mirrored camera and pose on every
/// replica.
pub fn move_camera(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    who: Participant,
    label: &str,
    camera: CameraParams,
) -> Result<(), UpdateError> {
    publish_update(sim, ds_id, label, SceneUpdate::CameraMoved { id: who.avatar, camera })
        .map(|_| ())
}

/// One interactive tick of a big session: every participant's camera
/// move published as a single batch. Routing still runs per update (the
/// interest index makes each one cheap), but delivery coalesces — one
/// scheduled apply event per subscriber for the whole tick instead of
/// one per (update, subscriber) pair, which is the difference between a
/// 10k-thin-client tick being simulable and the event queue drowning.
pub fn session_tick(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    moves: &[(Participant, &str, CameraParams)],
) -> Result<Vec<u64>, UpdateError> {
    let updates = moves
        .iter()
        .map(|&(who, label, camera)| {
            (label.to_string(), SceneUpdate::CameraMoved { id: who.avatar, camera })
        })
        .collect();
    publish_batch(sim, ds_id, updates)
}

/// Drag a scene object to a new transform (the click-select-drag
/// interaction).
pub fn drag_object(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    label: &str,
    node: NodeId,
    transform: Transform,
) -> Result<(), UpdateError> {
    publish_update(sim, ds_id, label, SceneUpdate::SetTransform { id: node, transform }).map(|_| ())
}

/// After a data-service failover, a client re-finds its avatar in the
/// recovered scene instead of re-joining (which would duplicate its
/// presence): the avatar node survived in the snapshot/WAL, only the
/// handle to it was lost with the crashed process.
pub fn reattach_participant(scene: &SceneTree, label: &str) -> Option<Participant> {
    scene.iter_nodes().find_map(|n| match n.kind() {
        NodeKind::Avatar(a) if a.label == label => Some(Participant { avatar: n.id() }),
        _ => None,
    })
}

/// The GUI's interaction interrogation (§5.2): "The GUI interrogates
/// objects for any supported interactions, and reflects this in the
/// drop-down menus." Returns the menu for a selected node. Static: the
/// menu rebuild runs per node per frame, so this allocates nothing and —
/// with the arena's kind tag — never touches the node payload.
pub fn interaction_menu(scene: &SceneTree, node: NodeId) -> &'static [Interaction] {
    scene.node(node).map(|n| n.supported_interactions()).unwrap_or(&[])
}

/// Rotate-around interaction: orbit `who`'s camera around the selected
/// object's world-space center ("rotate the camera around a selected
/// object").
pub fn orbit_selected(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    who: Participant,
    label: &str,
    selected: NodeId,
    d_yaw: f32,
    d_pitch: f32,
) -> Result<(), UpdateError> {
    let (mut camera, center) = {
        let ds = sim.world.data(ds_id);
        let camera = match ds.scene.node(who.avatar).map(|n| n.kind()) {
            Some(NodeKind::Avatar(a)) => a.camera,
            _ => CameraParams::default(),
        };
        let center = ds.scene.world_bounds(selected).center();
        (camera, center)
    };
    camera.orbit(center, d_yaw, d_pitch);
    move_camera(sim, ds_id, who, label, camera)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_scene::{InterestSet, MeshData};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn collaborative_world() -> (RaveSim, DataServiceId, crate::ids::RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 21));
        let ds = sim.world.spawn_data_service("adrenochrome", "hand-session");
        let rs = sim.world.spawn_render_service("desktop");
        // A shared model in the scene.
        {
            let scene = &mut sim.world.data_mut(ds).scene;
            let root = scene.root();
            scene
                .add_node(
                    root,
                    "hand",
                    NodeKind::Mesh(Arc::new(MeshData::new(
                        vec![Vec3::ZERO, Vec3::X, Vec3::Y],
                        vec![[0, 1, 2]],
                    ))),
                )
                .unwrap();
        }
        sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        // Seed the replica.
        let replica = sim.world.data(ds).scene.clone();
        sim.world.render_mut(rs).scene = replica;
        (sim, ds, rs)
    }

    #[test]
    fn two_users_see_each_other() {
        let (mut sim, ds, rs) = collaborative_world();
        let cam_a = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let cam_b = CameraParams::look_at(Vec3::new(5.0, 0.0, 0.0), Vec3::ZERO, Vec3::Y);
        let a = join_session(&mut sim, ds, "laptop", Vec3::X, cam_a).unwrap();
        let b = join_session(&mut sim, ds, "Desktop", Vec3::Y, cam_b).unwrap();
        sim.run();
        // Both avatars visible in the replica (what user A's render
        // service draws — Fig 3).
        let replica = &sim.world.render(rs).scene;
        assert!(replica.contains(a.avatar));
        assert!(replica.contains(b.avatar));
        match replica.node(b.avatar).unwrap().kind() {
            NodeKind::Avatar(info) => {
                assert_eq!(info.label, "Desktop");
                assert_eq!(info.camera.position, cam_b.position);
            }
            _ => panic!("not an avatar"),
        }
    }

    #[test]
    fn camera_moves_propagate_to_replicas() {
        let (mut sim, ds, rs) = collaborative_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let who = join_session(&mut sim, ds, "Desktop", Vec3::Y, cam).unwrap();
        sim.run();
        let mut cam2 = cam;
        cam2.orbit(Vec3::ZERO, 0.5, 0.0);
        move_camera(&mut sim, ds, who, "Desktop", cam2).unwrap();
        sim.run();
        let node = sim.world.render(rs).scene.node(who.avatar).unwrap();
        assert_eq!(node.transform().translation, cam2.position);
    }

    #[test]
    fn drag_object_moves_shared_model() {
        let (mut sim, ds, rs) = collaborative_world();
        let hand = sim.world.data(ds).scene.find_by_path("/hand").unwrap();
        drag_object(
            &mut sim,
            ds,
            "laptop",
            hand,
            Transform::from_translation(Vec3::new(2.0, 0.0, 0.0)),
        )
        .unwrap();
        sim.run();
        assert_eq!(
            sim.world.render(rs).scene.node(hand).unwrap().transform().translation,
            Vec3::new(2.0, 0.0, 0.0)
        );
    }

    #[test]
    fn interrogation_menus_differ_by_object() {
        let (sim, ds, _) = collaborative_world();
        let scene = &sim.world.data(ds).scene;
        let hand = scene.find_by_path("/hand").unwrap();
        let menu = interaction_menu(scene, hand);
        assert!(menu.contains(&Interaction::Drag));
        assert!(menu.contains(&Interaction::RotateAround));
        assert!(interaction_menu(scene, NodeId(999)).is_empty());
    }

    #[test]
    fn orbit_selected_keeps_distance_to_object() {
        let (mut sim, ds, _) = collaborative_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let who = join_session(&mut sim, ds, "u", Vec3::X, cam).unwrap();
        sim.run();
        let hand = sim.world.data(ds).scene.find_by_path("/hand").unwrap();
        let center = sim.world.data(ds).scene.world_bounds(hand).center();
        let before = cam.position.distance(center);
        orbit_selected(&mut sim, ds, who, "u", hand, 0.6, 0.1).unwrap();
        sim.run();
        let after_cam = match sim.world.data(ds).scene.node(who.avatar).unwrap().kind() {
            NodeKind::Avatar(a) => a.camera,
            _ => unreachable!(),
        };
        let after = after_cam.position.distance(center);
        assert!((before - after).abs() < 1e-3, "orbit preserves radius");
        assert!(after_cam.position.distance(cam.position) > 0.5, "camera actually moved");
    }

    #[test]
    fn leave_removes_avatar_everywhere() {
        let (mut sim, ds, rs) = collaborative_world();
        let who = join_session(&mut sim, ds, "u", Vec3::X, CameraParams::default()).unwrap();
        sim.run();
        leave_session(&mut sim, ds, who, "u").unwrap();
        sim.run();
        assert!(!sim.world.data(ds).scene.contains(who.avatar));
        assert!(!sim.world.render(rs).scene.contains(who.avatar));
    }

    #[test]
    fn session_tick_batches_camera_moves_into_one_delivery() {
        let (mut sim, ds, rs) = collaborative_world();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let a = join_session(&mut sim, ds, "laptop", Vec3::X, cam).unwrap();
        let b = join_session(&mut sim, ds, "Desktop", Vec3::Y, cam).unwrap();
        sim.run();
        let delivered_before = sim.world.trace.count(TraceKind::UpdateDelivered);
        let mut cam_a = cam;
        cam_a.orbit(Vec3::ZERO, 0.4, 0.0);
        let mut cam_b = cam;
        cam_b.orbit(Vec3::ZERO, -0.4, 0.1);
        let seqs =
            session_tick(&mut sim, ds, &[(a, "laptop", cam_a), (b, "Desktop", cam_b)]).unwrap();
        assert_eq!(seqs.len(), 2);
        sim.run();
        // Both moves landed on the replica...
        let scene = &sim.world.render(rs).scene;
        assert_eq!(scene.node(a.avatar).unwrap().transform().translation, cam_a.position);
        assert_eq!(scene.node(b.avatar).unwrap().transform().translation, cam_b.position);
        // ...traced per update but applied in one coalesced event: both
        // deliveries carry the identical batch timestamp.
        let ticks: Vec<_> =
            sim.world.trace.of_kind(TraceKind::UpdateDelivered).skip(delivered_before).collect();
        assert_eq!(ticks.len(), 2, "one trace per update for the one subscriber");
        assert_eq!(ticks[0].at, ticks[1].at, "batch applies at a single instant");
        assert!(ticks.iter().all(|e| e.detail.contains("applied=true")));
    }

    #[test]
    fn audit_trail_replays_collaboration() {
        // Asynchronous collaboration: a later user replays the session.
        let (mut sim, ds, _) = collaborative_world();
        let who = join_session(&mut sim, ds, "u", Vec3::X, CameraParams::default()).unwrap();
        sim.run();
        let replayed = sim.world.data(ds).audit.replay_all().unwrap();
        assert!(replayed.contains(who.avatar));
    }
}
