//! The workload abstraction: every distributable unit of rendering work —
//! a dataset shard, a framebuffer tile, a volume brick — reduced to one
//! cost vector the placement engine can bin-pack, rank and trace
//! uniformly.

use crate::ids::RenderServiceId;
use rave_math::Viewport;
use rave_scene::{NodeCost, NodeId};

/// The common cost vector placement decisions are made on. Dataset shards
/// fill it from [`NodeCost`]; tiles carry pixels; volume bricks carry
/// voxels. `polygons`/`texture_bytes` are the two capacity axes a
/// [`crate::capacity::CapacityReport`] advertises, so they are what the
/// ledger debits; the rest weigh ordering and throughput feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostVector {
    pub polygons: u64,
    pub points: u64,
    pub voxels: u64,
    pub texture_bytes: u64,
    /// Pixels of image work (tiles only; zero for scene content).
    pub pixels: u64,
}

impl CostVector {
    pub fn from_node_cost(c: &NodeCost) -> Self {
        Self {
            polygons: c.polygons,
            points: c.points,
            voxels: c.voxels,
            texture_bytes: c.texture_bytes,
            pixels: 0,
        }
    }

    /// The scalar weight FFD ordering uses — identical to
    /// [`NodeCost::render_weight`] for scene content, with pixels folded
    /// in for image work.
    pub fn render_weight(&self) -> u64 {
        self.polygons * 4 + self.points + self.voxels / 16 + self.pixels
    }

    /// Back to the capacity-axis view the ledger debits.
    pub fn as_node_cost(&self) -> NodeCost {
        NodeCost {
            polygons: self.polygons,
            points: self.points,
            voxels: self.voxels,
            texture_bytes: self.texture_bytes,
            data_bytes: 0,
        }
    }
}

/// One schedulable unit of rendering work.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// A subtree of scene content a render service must hold and render
    /// (dataset distribution, §3.2.5).
    DatasetShard { node: NodeId, cost: NodeCost },
    /// One rectangle of a session's target framebuffer (framebuffer
    /// distribution, §3.2.5).
    Tile { index: usize, bounds: Viewport },
    /// One brick of a volume, ray-cast by an assisting service and
    /// blended by the owner (§6, Visapult-style).
    VolumeBrick { node: NodeId, voxels: u64 },
}

impl Workload {
    pub fn cost(&self) -> CostVector {
        match self {
            Workload::DatasetShard { cost, .. } => CostVector::from_node_cost(cost),
            Workload::Tile { bounds, .. } => {
                CostVector { pixels: bounds.pixel_count() as u64, ..CostVector::default() }
            }
            Workload::VolumeBrick { voxels, .. } => {
                CostVector { voxels: *voxels, ..CostVector::default() }
            }
        }
    }

    /// Human-readable subject for [`super::placement::DecisionRecord`]s.
    pub fn label(&self) -> String {
        match self {
            Workload::DatasetShard { node, cost } => {
                format!("shard {node} ({} polys)", cost.polygons)
            }
            Workload::Tile { index, bounds } => {
                format!("tile #{index} ({}x{})", bounds.width, bounds.height)
            }
            Workload::VolumeBrick { node, voxels } => format!("brick {node} ({voxels} voxels)"),
        }
    }
}

/// A placement pairing: which service carries which workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub service: RenderServiceId,
    pub workload: Workload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_vector_round_trips_node_cost() {
        let c = NodeCost { polygons: 7, points: 3, voxels: 64, texture_bytes: 9, data_bytes: 11 };
        let v = CostVector::from_node_cost(&c);
        assert_eq!(v.render_weight(), c.render_weight());
        let back = v.as_node_cost();
        assert_eq!(back.polygons, 7);
        assert_eq!(back.texture_bytes, 9);
        assert_eq!(back.data_bytes, 0, "wire size is not a placement axis");
    }

    #[test]
    fn workload_kinds_cost_on_their_own_axis() {
        let shard = Workload::DatasetShard {
            node: NodeId(1),
            cost: NodeCost { polygons: 100, ..NodeCost::ZERO },
        };
        let tile = Workload::Tile { index: 0, bounds: Viewport::new(10, 10) };
        let brick = Workload::VolumeBrick { node: NodeId(2), voxels: 4096 };
        assert_eq!(shard.cost().polygons, 100);
        assert_eq!(tile.cost().pixels, 100);
        assert_eq!(brick.cost().voxels, 4096);
        assert!(shard.label().contains("shard"));
        assert!(tile.label().contains("10x10"));
        assert!(brick.label().contains("4096"));
    }
}
