//! Incremental replanning: dirty-set extraction and plan-diff
//! application over the first-fit-decreasing placement engine.
//!
//! The cold planner ([`crate::sched::placement::place_with_splitting`])
//! rebuilds the whole plan from scratch on every [`super::rebalance::SchedEvent`]:
//! walk the scene, sort 100k workloads, re-pack, re-materialize the
//! assignment — ~18 ms at 100k nodes, which full-rate event streams
//! (camera churn, EWMA cost drift) cannot sustain. [`PlanState`] makes
//! the plan *persistent* instead: the sorted workload queue, the chosen
//! service per queue position and periodic ledger checkpoints all
//! survive between events, so a replan only re-runs the engine from the
//! first queue position an edit could have affected and emits a
//! [`PlanDiff`] naming exactly the workloads whose placement changed.
//!
//! **Exactness.** The incremental replay is not an approximation: after
//! every replan the stored assignment is bit-identical to what a cold
//! `place_with_splitting` of the current queue against the current
//! capacity basis would produce (pinned by `tests/sched_parity.rs` and
//! `tests/proptest_sched.rs`). Three properties make that cheap:
//!
//! 1. *Prefix stability.* The queue is kept sorted by the engine's
//!    `(render weight desc, id asc)` key — a strict total order — so an
//!    edit at queue position `p` cannot change any decision before `p`:
//!    first-fit-decreasing consumes the queue in order and the ledger
//!    trajectory over `[0, p)` is untouched.
//! 2. *Content-determined ledger order.* The keep-sorted ledger's slot
//!    order is a pure function of slot contents (`(polygons desc,
//!    service asc)` over unique service ids), so the exact mid-plan
//!    ledger at any position can be reconstructed from a stored
//!    *contents* snapshot: restore the nearest checkpoint at or before
//!    `p`, re-apply the recorded debits of the positions between, sort
//!    once.
//! 3. *Recorded decisions are replay-free.* Positions before `p` carry
//!    their chosen service in the queue itself, so catch-up is a debit
//!    per item — no fitting, no searching, no allocation.
//!
//! **Bounded staleness.** Every edit accrues into a [`DirtySet`] with an
//! invalidated-render-weight total. [`PlanState::should_replan`]
//! compares that against the `sched_max_staleness` fraction of the total
//! planned weight, so sub-threshold event storms coalesce into one
//! deferred replay; [`PlanState::force_full_replay`] is the escape hatch
//! that re-derives every placement on the next replan regardless.

use crate::capacity::Headroom;
use crate::ids::RenderServiceId;
use crate::sched::placement::{Ledger, PlaceError};
use rave_scene::{NodeCost, NodeId};
use std::collections::BTreeSet;

/// Ledger checkpoint spacing, in queue positions. Catch-up replays at
/// most this many recorded debits before live fitting resumes; the
/// checkpoint store costs `slots × (len / CHECKPOINT_EVERY)` headrooms
/// (~100 KB at 100k nodes × 64 services).
const CHECKPOINT_EVERY: usize = 1024;

/// `replay_from` sentinel: nothing to replay.
const CLEAN: usize = usize::MAX;

/// One planned workload: a queue entry in `(render weight desc, id asc)`
/// order carrying its current placement. `svc` is `None` only for units
/// added since the last replay.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlanItem {
    id: NodeId,
    cost: NodeCost,
    svc: Option<RenderServiceId>,
}

/// The engine's queue ordering key — identical to the sort in
/// `place_with_splitting` (strict total order: ids are unique).
fn item_key(cost: &NodeCost, id: NodeId) -> (std::cmp::Reverse<u64>, NodeId) {
    (std::cmp::Reverse(cost.render_weight()), id)
}

/// Accumulated invalidation since the last replay: which services'
/// capacity basis changed, how many workload edits arrived, and the
/// total render weight they put in question (the staleness currency).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtySet {
    weight: u64,
    services: BTreeSet<RenderServiceId>,
    node_edits: usize,
    /// Workloads that left the plan while dirty (removed from the scene
    /// or no longer eligible), with the service that held them — emitted
    /// as `PlanDiff::dropped` on the next replan.
    drops: Vec<(NodeId, RenderServiceId)>,
}

impl DirtySet {
    /// Total render weight invalidated since the last replan. Service
    /// basis changes count their advertised polygon capacity (×4, the
    /// render-weight scale) — a deliberate over-estimate: capacity moves
    /// can displace anything up to that much work.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Services whose capacity basis changed since the last replan.
    pub fn services(&self) -> impl Iterator<Item = RenderServiceId> + '_ {
        self.services.iter().copied()
    }

    /// Workload-level edits (cost change, insert, remove) accumulated.
    pub fn node_edits(&self) -> usize {
        self.node_edits
    }

    pub fn is_empty(&self) -> bool {
        self.weight == 0 && self.drops.is_empty()
    }

    fn reset(&mut self) {
        self.weight = 0;
        self.services.clear();
        self.node_edits = 0;
        // `drops` is drained by the replan itself.
    }
}

/// What one replan changed — the minimal migration set. Workloads whose
/// recomputed placement equals their current one emit nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanDiff {
    /// `(workload, old service, new service)` — `old` is `None` for
    /// workloads placed for the first time.
    pub moved: Vec<(NodeId, Option<RenderServiceId>, RenderServiceId)>,
    /// Workloads that left the plan, with the service that held them.
    pub dropped: Vec<(NodeId, RenderServiceId)>,
    /// Spatial splits performed to make things fit.
    pub splits: u32,
    /// Queue positions the engine actually re-fit (the "affected slice"
    /// — observability for the incremental-vs-full story).
    pub replayed: usize,
    /// True when the replay covered the whole queue (capacity basis
    /// change or forced full replay).
    pub full_replay: bool,
}

impl PlanDiff {
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty() && self.dropped.is_empty()
    }
}

/// The persistent placement: capacity basis, sorted workload queue with
/// per-position placements, periodic ledger checkpoints, and the
/// accumulated [`DirtySet`]. Owned per data service by the world's
/// scheduler state ([`crate::world::SchedState`]).
#[derive(Debug, Clone, Default)]
pub struct PlanState {
    /// Capacity basis of the current plan, sorted by service id.
    caps: Vec<(RenderServiceId, Headroom)>,
    /// The planned workloads in engine order, each carrying its chosen
    /// service.
    queue: Vec<PlanItem>,
    /// id → queued cost mirror of `queue`. Edits and dirt-drain lookups
    /// resolve here in O(1) instead of scanning the queue — at 100k
    /// workloads those scans, one per dirtied node per event, would
    /// dominate the whole replay.
    index: std::collections::HashMap<NodeId, NodeCost>,
    /// `checkpoints[k]` is the exact ledger state before queue position
    /// `k * CHECKPOINT_EVERY` was fit. `checkpoints[0]` is the pristine
    /// basis ledger.
    checkpoints: Vec<Ledger>,
    /// First queue position whose placement is in question ([`CLEAN`]
    /// when the stored plan is exact).
    replay_from: usize,
    dirty: DirtySet,
    /// Total render weight of the queue (staleness denominator).
    total_weight: u64,
    /// Total polygon demand of the queue — the feasibility pre-check's
    /// numerator, maintained here so the incremental path never has to
    /// re-walk the scene for a total.
    total_polygons: u64,
    /// Total texture demand of the queue: when every service's basis
    /// texture room covers it, the texture axis can never bind and the
    /// replay uses the O(1) first-slot fit.
    total_texture: u64,
    planned: bool,
    /// Escape hatch armed: the next [`PlanState::should_replan`] answers
    /// yes regardless of the staleness threshold.
    forced: bool,
}

impl PlanState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Has a full plan ever been built? Until then every query is empty
    /// and [`PlanState::should_replan`] always answers yes.
    pub fn is_planned(&self) -> bool {
        self.planned
    }

    /// The accumulated invalidation since the last replan.
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Number of planned workloads.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total planned render weight.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Total polygon demand of the planned queue.
    pub fn total_polygons(&self) -> u64 {
        self.total_polygons
    }

    /// Total texture demand of the planned queue.
    pub fn total_texture(&self) -> u64 {
        self.total_texture
    }

    /// The service currently holding `id`, if planned.
    pub fn assignment(&self, id: NodeId) -> Option<RenderServiceId> {
        let cost = self.cost_in_queue(id)?;
        let pos = self.position_of(&cost, id)?;
        self.queue[pos].svc
    }

    /// The full assignment in [`crate::sched::placement::PlacementOutcome`]
    /// shape: per-service `(workloads, total cost)`, ordered by service
    /// id. O(n log n) — materialization for adapters and tests, not the
    /// replay path.
    pub fn assignments(&self) -> Vec<(RenderServiceId, Vec<NodeId>, NodeCost)> {
        let mut by_svc: std::collections::BTreeMap<RenderServiceId, (Vec<NodeId>, NodeCost)> =
            std::collections::BTreeMap::new();
        for item in &self.queue {
            if let Some(svc) = item.svc {
                let entry = by_svc.entry(svc).or_default();
                entry.0.push(item.id);
                entry.1 += item.cost;
            }
        }
        by_svc.into_iter().map(|(svc, (nodes, cost))| (svc, nodes, cost)).collect()
    }

    /// Install a new capacity basis. Unchanged bases are detected by
    /// comparison and accrue nothing, so drivers can re-interrogate and
    /// call this every tick. Any change invalidates the whole trajectory
    /// (slot order is global): the next replan replays from position 0 —
    /// still skipping the scene walk, the sort and the assignment
    /// rebuild that dominate a cold plan.
    pub fn note_caps(&mut self, caps: &[(RenderServiceId, Headroom)]) {
        let mut sorted = caps.to_vec();
        sorted.sort_by_key(|c| c.0);
        if sorted == self.caps {
            return;
        }
        // Dirty weight: the advertised polygon capacity (render-weight
        // scaled) of every service whose basis changed — services only
        // in one of the two bases count whole.
        let mut changed = 0u64;
        let mut old = self.caps.iter().peekable();
        let mut new = sorted.iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (None, None) => break,
                (Some(&&(svc, h)), None) => {
                    changed = changed.saturating_add(h.polygons.saturating_mul(4));
                    self.dirty.services.insert(svc);
                    old.next();
                }
                (None, Some(&&(svc, h))) => {
                    changed = changed.saturating_add(h.polygons.saturating_mul(4));
                    self.dirty.services.insert(svc);
                    new.next();
                }
                (Some(&&(osvc, oh)), Some(&&(nsvc, nh))) => {
                    if osvc < nsvc {
                        changed = changed.saturating_add(oh.polygons.saturating_mul(4));
                        self.dirty.services.insert(osvc);
                        old.next();
                    } else if nsvc < osvc {
                        changed = changed.saturating_add(nh.polygons.saturating_mul(4));
                        self.dirty.services.insert(nsvc);
                        new.next();
                    } else {
                        if oh != nh {
                            changed = changed
                                .saturating_add(oh.polygons.max(nh.polygons).saturating_mul(4));
                            self.dirty.services.insert(osvc);
                        }
                        old.next();
                        new.next();
                    }
                }
            }
        }
        self.caps = sorted;
        self.dirty.weight = self.dirty.weight.saturating_add(changed);
        self.checkpoints.clear();
        self.checkpoints.push(Ledger::from_caps(&self.caps, true));
        self.replay_from = 0;
    }

    /// Record one workload edit: `cost` is the unit's current eligible
    /// cost, `None` if it left the scene (or is no longer eligible).
    /// Touches that change nothing are free. The queue is edited eagerly
    /// (binary search + memmove); the *placements* stay stale until the
    /// next [`PlanState::replan`].
    pub fn note_unit(&mut self, id: NodeId, cost: Option<NodeCost>) {
        let old = self.cost_in_queue(id);
        match (old, cost) {
            (None, None) => {}
            (Some(o), Some(n)) if o == n => {}
            (Some(o), Some(n)) => {
                let old_pos = self.position_of(&o, id).expect("queued unit has a position");
                let item = self.queue.remove(old_pos);
                let new_pos = self.lower_bound(item_key(&n, id));
                self.queue.insert(new_pos, PlanItem { id, cost: n, svc: item.svc });
                self.index.insert(id, n);
                self.total_weight = self.total_weight - o.render_weight() + n.render_weight();
                self.total_polygons = self.total_polygons - o.polygons + n.polygons;
                self.total_texture = self.total_texture - o.texture_bytes + n.texture_bytes;
                self.accrue_node_dirt(o.render_weight().max(n.render_weight()));
                self.mark_replay(old_pos.min(new_pos));
            }
            (None, Some(n)) => {
                let pos = self.lower_bound(item_key(&n, id));
                self.queue.insert(pos, PlanItem { id, cost: n, svc: None });
                self.index.insert(id, n);
                self.total_weight += n.render_weight();
                self.total_polygons += n.polygons;
                self.total_texture += n.texture_bytes;
                self.accrue_node_dirt(n.render_weight());
                self.mark_replay(pos);
            }
            (Some(o), None) => {
                let pos = self.position_of(&o, id).expect("queued unit has a position");
                let item = self.queue.remove(pos);
                self.index.remove(&id);
                if let Some(svc) = item.svc {
                    self.dirty.drops.push((id, svc));
                }
                self.total_weight -= o.render_weight();
                self.total_polygons -= o.polygons;
                self.total_texture -= o.texture_bytes;
                self.accrue_node_dirt(o.render_weight());
                self.mark_replay(pos);
            }
        }
    }

    /// The escape hatch: distrust every stored placement. The next
    /// replan re-fits the whole queue from the basis ledger (equivalent
    /// to a cold pack of the current queue) and
    /// [`PlanState::should_replan`] answers yes regardless of staleness.
    pub fn force_full_replay(&mut self) {
        if self.planned {
            self.replay_from = 0;
            self.forced = true;
            self.dirty.weight = self.dirty.weight.max(self.total_weight).max(1);
        }
    }

    /// Is there anything to replan?
    pub fn is_dirty(&self) -> bool {
        self.replay_from != CLEAN || !self.dirty.drops.is_empty()
    }

    /// The bounded-staleness policy: replan when no plan exists yet, or
    /// when the accumulated dirty weight exceeds `max_staleness` of the
    /// planned total. `max_staleness <= 0` replans on any dirt.
    pub fn should_replan(&self, max_staleness: f64) -> bool {
        if !self.planned || self.forced {
            return true;
        }
        if !self.is_dirty() {
            return false;
        }
        if max_staleness <= 0.0 {
            return true;
        }
        (self.dirty.weight as f64) > max_staleness * (self.total_weight.max(1) as f64)
    }

    /// Replace the plan wholesale: fresh workload set, fresh capacity
    /// basis, full pack — the cold path, used for the first plan and
    /// after a dirt-log overflow. Still diffs against the previous
    /// assignment so callers migrate only what actually changed.
    pub fn full_rebuild(
        &mut self,
        units: Vec<(NodeId, NodeCost)>,
        caps: &[(RenderServiceId, Headroom)],
        splitter: impl FnMut(NodeId) -> Option<[(NodeId, NodeCost); 2]>,
    ) -> Result<PlanDiff, PlaceError> {
        // Carry the old placements over by id so the replay's diff is
        // exact; whatever is left afterwards was dropped.
        let old_queue = std::mem::take(&mut self.queue);
        let mut old: std::collections::BTreeMap<NodeId, RenderServiceId> =
            old_queue.into_iter().filter_map(|it| Some((it.id, it.svc?))).collect();

        let mut queue: Vec<PlanItem> =
            units.into_iter().map(|(id, cost)| PlanItem { id, cost, svc: None }).collect();
        queue.sort_unstable_by_key(|it| item_key(&it.cost, it.id));
        for item in &mut queue {
            item.svc = old.remove(&item.id);
        }
        for (id, svc) in old {
            self.dirty.drops.push((id, svc));
        }
        self.queue = queue;
        self.index = self.queue.iter().map(|it| (it.id, it.cost)).collect();
        self.total_weight = self.queue.iter().map(|it| it.cost.render_weight()).sum();
        self.total_polygons = self.queue.iter().map(|it| it.cost.polygons).sum();
        self.total_texture = self.queue.iter().map(|it| it.cost.texture_bytes).sum();
        let mut caps = caps.to_vec();
        caps.sort_by_key(|c| c.0);
        self.caps = caps;
        self.checkpoints.clear();
        self.checkpoints.push(Ledger::from_caps(&self.caps, true));
        self.replay_from = 0;
        self.planned = true;
        self.replan(splitter)
    }

    /// Re-establish an exact plan by replaying the engine from the first
    /// affected queue position, returning the minimal diff. A clean
    /// state returns an empty diff without touching the ledger. On
    /// [`PlaceError`] the state stays dirty (with the consistent prefix
    /// retained) so a later replan — after recruiting capacity — can
    /// resume.
    pub fn replan(
        &mut self,
        mut splitter: impl FnMut(NodeId) -> Option<[(NodeId, NodeCost); 2]>,
    ) -> Result<PlanDiff, PlaceError> {
        assert!(self.planned, "replan() before any full_rebuild()");
        // Unit-removal drops are drained up front; split-parent drops
        // accrue into `diff.dropped` during the replay. The two stay
        // separate until the epilogue: a drained id that re-entered the
        // queue reconciles into a *move* from its pre-drop holder, which
        // the split compaction must not mistake for a phantom.
        let mut drained = std::mem::take(&mut self.dirty.drops);
        let mut diff = PlanDiff { full_replay: self.replay_from == 0, ..PlanDiff::default() };
        if self.replay_from == CLEAN {
            diff.dropped = drained;
            self.dirty.reset();
            return Ok(diff);
        }
        // Clamp into checkpoint coverage: replaying *earlier* than
        // strictly necessary is always sound (recomputed choices match
        // the stored ones and emit no diff), and keeps the checkpoint
        // store dense.
        let mut p =
            self.replay_from.min(self.queue.len()).min(self.checkpoints.len() * CHECKPOINT_EVERY);
        // Every placement this call writes sits at a queue position >= the
        // entry point (splits only ever restart at or after the split
        // position), so an error can roll the whole call back by
        // re-marking replay from here.
        let entry_p = p;
        'pass: loop {
            // Restore the exact mid-plan ledger at position p: nearest
            // checkpoint at or before p, plus the recorded debits of the
            // positions between, then one sort (order is a pure function
            // of contents).
            let ck = (p / CHECKPOINT_EVERY).min(self.checkpoints.len() - 1);
            self.checkpoints.truncate(ck + 1);
            let mut ledger = self.checkpoints[ck].clone();
            for i in ck * CHECKPOINT_EVERY..p {
                let item = &self.queue[i];
                ledger.replay_debit(item.svc.expect("prefix is placed"), &item.cost);
            }
            ledger.restore_order();
            // When every service's basis texture room covers the whole
            // queue demand, the texture axis can never bind and first-fit
            // degenerates to "does the most spacious slot fit" — O(1).
            let texture_unbound =
                self.caps.iter().all(|&(_, h)| h.texture_bytes >= self.total_texture);
            let mut i = p;
            while i < self.queue.len() {
                if i.is_multiple_of(CHECKPOINT_EVERY)
                    && i / CHECKPOINT_EVERY == self.checkpoints.len()
                {
                    self.checkpoints.push(ledger.clone());
                }
                let cost = self.queue[i].cost;
                let chosen =
                    if texture_unbound { ledger.fit_poly_fast(&cost) } else { ledger.fit(&cost) };
                match chosen {
                    Some(svc) => {
                        let item = &mut self.queue[i];
                        if item.svc != Some(svc) {
                            diff.moved.push((item.id, item.svc, svc));
                        }
                        item.svc = Some(svc);
                        i += 1;
                    }
                    None => {
                        let id = self.queue[i].id;
                        match splitter(id) {
                            Some(children) => {
                                diff.splits += 1;
                                let parent = self.queue.remove(i);
                                self.index.remove(&parent.id);
                                if let Some(svc) = parent.svc {
                                    diff.dropped.push((parent.id, svc));
                                }
                                self.total_weight -= parent.cost.render_weight();
                                self.total_polygons -= parent.cost.polygons;
                                self.total_texture -= parent.cost.texture_bytes;
                                // Insert the halves at their *sorted*
                                // positions (not the cold engine's
                                // front-of-queue requeue): the stored
                                // plan must equal a cold pack of the
                                // final post-split queue, and children
                                // weigh no more than their parent, so
                                // they land at or after position i.
                                let mut restart = i;
                                for (cid, ccost) in children {
                                    if ccost.is_zero() {
                                        // Matches the eligibility filter:
                                        // a cold plan of the final scene
                                        // would not queue a zero-cost
                                        // node.
                                        continue;
                                    }
                                    let pos = self.lower_bound(item_key(&ccost, cid));
                                    self.queue
                                        .insert(pos, PlanItem { id: cid, cost: ccost, svc: None });
                                    self.index.insert(cid, ccost);
                                    self.total_weight += ccost.render_weight();
                                    self.total_polygons += ccost.polygons;
                                    self.total_texture += ccost.texture_bytes;
                                    restart = restart.min(pos);
                                }
                                diff.replayed += i.saturating_sub(p);
                                p = restart;
                                continue 'pass;
                            }
                            None => {
                                // The caller applies nothing on error, so
                                // the stored plan must keep describing the
                                // world: un-apply every placement this
                                // call wrote (first-seen old value wins —
                                // split restarts can touch an item twice)
                                // and leave the whole call dirty.
                                let mut committed: std::collections::HashMap<
                                    NodeId,
                                    Option<RenderServiceId>,
                                > = std::collections::HashMap::new();
                                for &(mid, old, _) in &diff.moved {
                                    committed.entry(mid).or_insert(old);
                                }
                                if !committed.is_empty() {
                                    for item in &mut self.queue {
                                        if let Some(&old) = committed.get(&item.id) {
                                            item.svc = old;
                                        }
                                    }
                                }
                                self.replay_from = entry_p;
                                drained.append(&mut diff.dropped);
                                self.dirty.drops = drained;
                                return Err(PlaceError::Indivisible {
                                    item: id,
                                    polygons: cost.polygons,
                                    largest_headroom: ledger.largest_poly_headroom(),
                                });
                            }
                        }
                    }
                }
            }
            diff.replayed += i.saturating_sub(p);
            break;
        }
        if diff.splits > 0 {
            // A split restart re-replays positions it already placed this
            // call, so the raw diff can name a workload twice (or name a
            // child that was placed and then itself re-split — a
            // placement the caller never saw). Compact to one entry per
            // workload: first-seen old, last-seen new, no-ops and
            // never-committed phantoms dropped.
            let mut compact: std::collections::BTreeMap<
                NodeId,
                (Option<RenderServiceId>, RenderServiceId),
            > = std::collections::BTreeMap::new();
            for &(id, old, new) in &diff.moved {
                compact.entry(id).and_modify(|e| e.1 = new).or_insert((old, new));
            }
            // A workload dropped by a split only concerns the caller at
            // its *committed* placement: cancel drops of children that
            // never committed, and address the rest at their committed
            // home.
            let mut retained = Vec::with_capacity(diff.dropped.len());
            for (id, svc) in diff.dropped.drain(..) {
                match compact.remove(&id) {
                    Some((None, _)) => {}
                    Some((Some(home), _)) => retained.push((id, home)),
                    None => retained.push((id, svc)),
                }
            }
            diff.dropped = retained;
            diff.moved = compact
                .into_iter()
                .filter(|&(_, (old, new))| old != Some(new))
                .map(|(id, (old, new))| (id, old, new))
                .collect();
        }
        if !drained.is_empty() {
            // A workload removed and re-added between replans (same id)
            // is a move from its pre-drop holder, not a drop plus a
            // fresh placement: fold the drained drop into the move's
            // `old` side so the diff applies order-independently, and a
            // same-home round trip vanishes as a no-op.
            let mut prior: std::collections::BTreeMap<NodeId, RenderServiceId> =
                drained.into_iter().collect();
            diff.moved.retain_mut(|m| {
                if m.1.is_none() {
                    m.1 = prior.remove(&m.0);
                }
                m.1 != Some(m.2)
            });
            diff.dropped.extend(prior);
        }
        self.replay_from = CLEAN;
        self.forced = false;
        self.dirty.reset();
        Ok(diff)
    }

    /// The cost `id` is queued under, if any.
    fn cost_in_queue(&self, id: NodeId) -> Option<NodeCost> {
        self.index.get(&id).copied()
    }

    /// Exact position of a queued `(cost, id)` via binary search.
    fn position_of(&self, cost: &NodeCost, id: NodeId) -> Option<usize> {
        let pos = self.lower_bound(item_key(cost, id));
        (pos < self.queue.len() && self.queue[pos].id == id).then_some(pos)
    }

    fn lower_bound(&self, key: (std::cmp::Reverse<u64>, NodeId)) -> usize {
        self.queue.partition_point(|it| item_key(&it.cost, it.id) < key)
    }

    fn accrue_node_dirt(&mut self, weight: u64) {
        self.dirty.weight = self.dirty.weight.saturating_add(weight.max(1));
        self.dirty.node_edits += 1;
    }

    fn mark_replay(&mut self, pos: usize) {
        self.replay_from = self.replay_from.min(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::placement::place_with_splitting;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn caps(spec: &[(u64, u64)]) -> Vec<(RenderServiceId, Headroom)> {
        spec.iter()
            .map(|&(id, polys)| {
                (RenderServiceId(id), Headroom { polygons: polys, texture_bytes: 1 << 40 })
            })
            .collect()
    }

    fn units(n: usize, seed: u64) -> Vec<(NodeId, NodeCost)> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                (
                    NodeId(i as u64 + 1),
                    NodeCost {
                        polygons: 1 + lcg(&mut s) % 500,
                        points: lcg(&mut s) % 100,
                        texture_bytes: lcg(&mut s) % 1000,
                        ..NodeCost::ZERO
                    },
                )
            })
            .collect()
    }

    fn cold(
        units: &[(NodeId, NodeCost)],
        basis: &[(RenderServiceId, Headroom)],
    ) -> Vec<(RenderServiceId, Vec<NodeId>, NodeCost)> {
        let mut ledger = Ledger::from_caps(basis, true);
        place_with_splitting(&mut ledger, units.to_vec(), |_| None, false).unwrap().assignments
    }

    fn assignment_map(
        assignments: &[(RenderServiceId, Vec<NodeId>, NodeCost)],
    ) -> std::collections::BTreeMap<NodeId, RenderServiceId> {
        assignments.iter().flat_map(|(svc, nodes, _)| nodes.iter().map(|&n| (n, *svc))).collect()
    }

    #[test]
    fn full_rebuild_matches_the_cold_engine() {
        let basis = caps(&[(1, 40_000), (2, 30_000), (3, 25_000), (4, 20_000)]);
        let us = units(400, 7);
        let mut state = PlanState::new();
        let diff = state.full_rebuild(us.clone(), &basis, |_| None).unwrap();
        assert_eq!(state.assignments(), cold(&us, &basis));
        assert_eq!(diff.moved.len(), us.len(), "every unit placed for the first time");
        assert!(diff.moved.iter().all(|&(_, old, _)| old.is_none()));
        assert!(diff.dropped.is_empty());
        assert!(diff.full_replay);
        assert!(!state.is_dirty());
    }

    #[test]
    fn localized_edit_replays_a_suffix_and_stays_exact() {
        let basis = caps(&[(1, 500_000), (2, 400_000), (3, 300_000)]);
        let mut us = units(3000, 11);
        let mut state = PlanState::new();
        state.full_rebuild(us.clone(), &basis, |_| None).unwrap();
        let before = assignment_map(&state.assignments());

        // Shrink a light tail workload: everything before its queue
        // position is provably unaffected.
        let victim = us.iter().min_by_key(|(id, c)| (c.render_weight(), *id)).unwrap().0;
        let new_cost = NodeCost { polygons: 1, ..NodeCost::ZERO };
        us.iter_mut().find(|(id, _)| *id == victim).unwrap().1 = new_cost;
        state.note_unit(victim, Some(new_cost));
        assert!(state.should_replan(0.0));
        let diff = state.replan(|_| None).unwrap();

        assert!(!diff.full_replay);
        assert!(
            diff.replayed < us.len() / 2,
            "tail edit replayed {} of {} positions",
            diff.replayed,
            us.len()
        );
        assert_eq!(state.assignments(), cold(&us, &basis));
        // The diff is exactly the delta between the two assignment maps.
        let mut patched = before.clone();
        for &(id, old, new) in &diff.moved {
            assert_eq!(patched.insert(id, new), old, "diff old-value mismatch for {id:?}");
        }
        for (id, _) in &diff.dropped {
            patched.remove(id);
        }
        assert_eq!(patched, assignment_map(&state.assignments()));
    }

    #[test]
    fn capacity_change_is_a_full_replay_but_exact() {
        let basis = caps(&[(1, 200_000), (2, 200_000)]);
        let us = units(300, 3);
        let mut state = PlanState::new();
        state.full_rebuild(us.clone(), &basis, |_| None).unwrap();
        let before = assignment_map(&state.assignments());

        let shrunk = caps(&[(1, 50_000), (2, 200_000)]);
        state.note_caps(&shrunk);
        assert!(state.dirty().services().any(|s| s == RenderServiceId(1)));
        let diff = state.replan(|_| None).unwrap();
        assert!(diff.full_replay);
        assert_eq!(state.assignments(), cold(&us, &shrunk));
        let mut patched = before;
        for &(id, _, new) in &diff.moved {
            patched.insert(id, new);
        }
        assert_eq!(patched, assignment_map(&state.assignments()));
        // Re-noting identical caps accrues nothing.
        state.note_caps(&shrunk);
        assert!(!state.is_dirty());
    }

    #[test]
    fn removals_drop_and_inserts_place() {
        let basis = caps(&[(1, 50_000), (2, 50_000)]);
        let mut us = units(200, 5);
        let mut state = PlanState::new();
        state.full_rebuild(us.clone(), &basis, |_| None).unwrap();

        let gone = us[17].0;
        let held = state.assignment(gone).unwrap();
        us.retain(|(id, _)| *id != gone);
        state.note_unit(gone, None);
        let newcomer = (NodeId(9_999), NodeCost::polygons(777));
        us.push(newcomer);
        state.note_unit(newcomer.0, Some(newcomer.1));

        let diff = state.replan(|_| None).unwrap();
        assert!(diff.dropped.contains(&(gone, held)));
        assert!(diff.moved.iter().any(|&(id, old, _)| id == newcomer.0 && old.is_none()));
        assert_eq!(state.assignments(), cold(&us, &basis));
        assert_eq!(state.assignment(gone), None);
    }

    #[test]
    fn staleness_threshold_coalesces_until_forced() {
        let basis = caps(&[(1, 1_000_000)]);
        let us = units(100, 9);
        let mut state = PlanState::new();
        state.full_rebuild(us.clone(), &basis, |_| None).unwrap();

        // One small edit stays under a 50% staleness budget...
        state.note_unit(us[0].0, Some(NodeCost::polygons(us[0].1.polygons + 1)));
        assert!(state.should_replan(0.0), "zero staleness replans on any dirt");
        assert!(!state.should_replan(0.5));
        // ...but enough accumulated dirt crosses it.
        for (id, c) in us.iter().take(80) {
            state.note_unit(*id, Some(NodeCost::polygons(c.polygons + 2)));
        }
        assert!(state.should_replan(0.5));
        state.replan(|_| None).unwrap();
        assert!(!state.is_dirty());

        // The escape hatch replans everything regardless of threshold.
        state.force_full_replay();
        assert!(state.should_replan(f64::MAX));
        let diff = state.replan(|_| None).unwrap();
        assert!(diff.full_replay);
        assert!(diff.is_empty(), "nothing changed, so the full replay moves nothing");
    }

    #[test]
    fn split_during_replay_matches_cold_plan_of_the_final_state() {
        let basis = caps(&[(1, 60), (2, 60)]);
        let big = (NodeId(10), NodeCost::polygons(100));
        let small = (NodeId(20), NodeCost::polygons(10));
        let splitter = |id: NodeId| {
            (id == NodeId(10)).then(|| {
                [(NodeId(11), NodeCost::polygons(50)), (NodeId(12), NodeCost::polygons(50))]
            })
        };
        let mut state = PlanState::new();
        let diff = state.full_rebuild(vec![big, small], &basis, splitter).unwrap();
        assert_eq!(diff.splits, 1);
        // The parent never committed anywhere, so its drop is cancelled.
        assert!(diff.dropped.is_empty());
        let final_units =
            vec![(NodeId(11), NodeCost::polygons(50)), (NodeId(12), NodeCost::polygons(50)), small];
        assert_eq!(state.assignments(), cold(&final_units, &basis));
        assert_eq!(state.assignment(NodeId(10)), None);
    }

    #[test]
    fn place_error_rolls_the_call_back_and_resumes_later() {
        let basis = caps(&[(1, 1_000)]);
        let us = vec![(NodeId(1), NodeCost::polygons(900)), (NodeId(2), NodeCost::polygons(400))];
        let mut state = PlanState::new();
        let err = state.full_rebuild(us, &basis, |_| None).unwrap_err();
        assert!(matches!(err, PlaceError::Indivisible { item: NodeId(2), .. }));
        // Nothing committed: the stored plan still describes a world with
        // no placements at all.
        assert_eq!(state.assignment(NodeId(1)), None);
        assert!(state.is_dirty());

        // Capacity arrives; the resumed replan places everything.
        state.note_caps(&caps(&[(1, 1_000), (2, 500)]));
        let diff = state.replan(|_| None).unwrap();
        assert_eq!(diff.moved.len(), 2);
        assert_eq!(
            state.assignments(),
            cold(
                &[(NodeId(1), NodeCost::polygons(900)), (NodeId(2), NodeCost::polygons(400))],
                &caps(&[(1, 1_000), (2, 500)])
            )
        );
    }

    #[test]
    fn checkpointed_replay_crosses_checkpoint_boundaries_exactly() {
        // Enough units to span several checkpoints; edit near the tail so
        // the replay must restore from a late checkpoint.
        let basis = caps(&[(1, u64::MAX / 8), (2, u64::MAX / 8), (3, u64::MAX / 8)]);
        let mut us = units(CHECKPOINT_EVERY * 3 + 100, 21);
        let mut state = PlanState::new();
        state.full_rebuild(us.clone(), &basis, |_| None).unwrap();

        let victim = us.iter().min_by_key(|(id, c)| (c.render_weight(), *id)).unwrap().0;
        let new_cost = NodeCost { polygons: 2, ..NodeCost::ZERO };
        us.iter_mut().find(|(id, _)| *id == victim).unwrap().1 = new_cost;
        state.note_unit(victim, Some(new_cost));
        let diff = state.replan(|_| None).unwrap();
        assert!(diff.replayed <= CHECKPOINT_EVERY + 100 + 1, "replayed {}", diff.replayed);
        assert_eq!(state.assignments(), cold(&us, &basis));
    }
}
