//! Measured-throughput feedback: the §3.2.5 loop closed. Advertised
//! capacity seeds every plan, but the scheduler converges on what each
//! service *actually* delivers — the LBNL WAN-visualization lesson of
//! making placement decisions from continuously measured throughput
//! rather than static capacity claims.
//!
//! [`ThroughputTracker`] is the EWMA promoted out of `tiles.rs` (where it
//! was `TileCostTracker`), generalized so dataset and volume placement
//! learn from the same measurements as tile splitting. The unit is
//! whatever cost measure the workload reports per second —
//! `RasterStats::cost_units` for tiles, polygons for dataset shards,
//! voxels for bricks; one tracker per unit domain.

use crate::ids::RenderServiceId;
use std::collections::BTreeMap;

/// Exponentially-weighted per-service throughput (work units per second).
#[derive(Debug, Clone)]
pub struct ThroughputTracker {
    observed: BTreeMap<RenderServiceId, f64>,
    alpha: f64,
}

impl Default for ThroughputTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputTracker {
    /// Default EWMA smoothing factor: new observations get this share.
    pub const ALPHA: f64 = 0.3;

    pub fn new() -> Self {
        Self::with_alpha(Self::ALPHA)
    }

    /// A tracker with a configured smoothing factor (the
    /// `sched_ewma_alpha` knob); values outside (0, 1] fall back to
    /// [`Self::ALPHA`].
    pub fn with_alpha(alpha: f64) -> Self {
        let alpha = if alpha > 0.0 && alpha <= 1.0 { alpha } else { Self::ALPHA };
        Self { observed: BTreeMap::new(), alpha }
    }

    /// Record one completed work item: `units` of work finished in
    /// `seconds`. Non-positive durations are ignored (stale results cost
    /// nothing and measure nothing).
    pub fn record(&mut self, service: RenderServiceId, units: u64, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let rate = units as f64 / seconds;
        match self.observed.entry(service) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(rate);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let v = e.get_mut();
                *v = (1.0 - self.alpha) * *v + self.alpha * rate;
            }
        }
    }

    /// Forget a service (it left or failed).
    pub fn forget(&mut self, service: RenderServiceId) {
        self.observed.remove(&service);
    }

    /// Smoothed throughput for a service, if it has ever been observed.
    pub fn throughput(&self, service: RenderServiceId) -> Option<f64> {
        self.observed.get(&service).copied()
    }

    pub fn observed_services(&self) -> usize {
        self.observed.len()
    }

    /// Integer split weights for `participants`, normalized to the
    /// fastest observed participant (scale 1000). Never-observed services
    /// get the mean observed rate (neutral weight) and the 1-unit floor
    /// keeps stragglers in the plan. This is the exact weighting
    /// `plan_tiles_with_feedback` has always used, shared here so any
    /// workload split can reuse it.
    pub fn split_weights(&self, participants: &[RenderServiceId]) -> Vec<u64> {
        let known: Vec<f64> = participants.iter().filter_map(|&svc| self.throughput(svc)).collect();
        let mean = known.iter().sum::<f64>() / known.len().max(1) as f64;
        let max = known.iter().cloned().fold(mean, f64::max).max(1e-12);
        participants
            .iter()
            .map(|&svc| {
                let rate = self.throughput(svc).unwrap_or(mean);
                ((rate / max * 1000.0).round() as u64).max(1)
            })
            .collect()
    }

    /// Has the measured rate for `service` drifted below
    /// `drift_ratio × expected`? The `CostDrift` rebalance trigger: a
    /// service that advertised a big GPU but delivers slowly should be
    /// re-planned before it ever trips the overload fps threshold.
    pub fn drifted_below(&self, service: RenderServiceId, expected: f64, drift_ratio: f64) -> bool {
        match self.throughput(service) {
            Some(measured) if expected > 0.0 => measured < expected * drift_ratio,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_and_ignores_zero_durations() {
        let mut t = ThroughputTracker::new();
        let svc = RenderServiceId(7);
        t.record(svc, 1000, 0.0);
        assert!(t.throughput(svc).is_none());
        t.record(svc, 1000, 1.0);
        assert_eq!(t.throughput(svc).unwrap(), 1000.0);
        for _ in 0..40 {
            t.record(svc, 4000, 1.0);
        }
        assert!((t.throughput(svc).unwrap() - 4000.0).abs() < 10.0);
    }

    #[test]
    fn configured_alpha_changes_convergence_speed() {
        let mut fast = ThroughputTracker::with_alpha(0.9);
        let mut slow = ThroughputTracker::with_alpha(0.1);
        let svc = RenderServiceId(1);
        for t in [&mut fast, &mut slow] {
            t.record(svc, 1000, 1.0);
            t.record(svc, 5000, 1.0);
        }
        assert!(fast.throughput(svc).unwrap() > slow.throughput(svc).unwrap());
        // Degenerate alphas fall back to the default.
        let t = ThroughputTracker::with_alpha(7.0);
        assert_eq!(t.alpha, ThroughputTracker::ALPHA);
    }

    #[test]
    fn split_weights_normalize_to_fastest() {
        let mut t = ThroughputTracker::new();
        let (a, b, c) = (RenderServiceId(1), RenderServiceId(2), RenderServiceId(3));
        t.record(a, 1000, 1.0);
        t.record(b, 4000, 1.0);
        let w = t.split_weights(&[a, b, c]);
        assert_eq!(w[1], 1000, "fastest participant anchors the scale");
        assert_eq!(w[0], 250);
        // Never-observed c gets the mean (2500/4000).
        assert_eq!(w[2], 625);
    }

    #[test]
    fn drift_detection_needs_observation() {
        let mut t = ThroughputTracker::new();
        let svc = RenderServiceId(9);
        assert!(!t.drifted_below(svc, 1e6, 0.5), "no observation, no drift");
        t.record(svc, 100_000, 1.0);
        assert!(t.drifted_below(svc, 1e6, 0.5));
        assert!(!t.drifted_below(svc, 150_000.0, 0.5));
    }

    #[test]
    fn forget_removes_observation() {
        let mut t = ThroughputTracker::new();
        let svc = RenderServiceId(3);
        t.record(svc, 10, 1.0);
        assert_eq!(t.observed_services(), 1);
        t.forget(svc);
        assert!(t.throughput(svc).is_none());
    }
}
