//! Event-driven rebalancing: every trigger that can change a placement —
//! overload (§3.2.7), sustained under-load, service failure (§6), and
//! measured-throughput drift — is one [`SchedEvent`], and every event in
//! a batch is handled through the same headroom ledger and movement
//! machinery. `migration.rs` is a thin adapter that detects conditions
//! and feeds the stream; the decisions themselves — considered
//! candidates, scores, chosen placement — are recorded as
//! [`crate::trace::TraceKind::SchedDecision`] events.

use crate::bootstrap::connect_render_service;
use crate::ids::{DataServiceId, RenderServiceId};
use crate::sched::placement::Ledger;
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_grid::TechnicalModel;
use rave_scene::{InterestSet, NodeCost, NodeId};
use std::collections::BTreeSet;

/// A rebalance trigger. Initial plans, migrations and failover re-plans
/// all arrive at the scheduler as a stream of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedEvent {
    /// A service's rolling frame rate dropped below the overload
    /// threshold: shed work until it is back inside its budget.
    Overload { service: RenderServiceId },
    /// A service has sustained spare capacity past the debounce window:
    /// pull work onto it from the most loaded donor.
    Underload { service: RenderServiceId },
    /// A service died (crash, or a local user logged on): re-home its
    /// share onto the survivors.
    Failure { service: RenderServiceId },
    /// Measured throughput fell well below what the service advertised:
    /// re-plan before the overload fps threshold ever trips.
    CostDrift { service: RenderServiceId, measured: f64, expected: f64 },
    /// The data service itself died — the last single point of failure.
    /// Promote its warm standby if a replication link exists; otherwise
    /// fall back to cold recovery from its durable store.
    DataFailure { service: DataServiceId },
}

/// What a rebalance pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationOutcome {
    /// `(node, from, to)` moves performed.
    pub moved: Vec<(NodeId, RenderServiceId, RenderServiceId)>,
    /// Render services recruited via UDDI this pass.
    pub recruited: Vec<RenderServiceId>,
    /// Data-service failovers performed this pass (warm promotion or
    /// cold recovery).
    pub promotions: Vec<crate::replica::PromotionReport>,
    /// True when work remained unplaceable ("the request is refused").
    pub refused: bool,
}

impl MigrationOutcome {
    pub fn acted(&self) -> bool {
        !self.moved.is_empty() || !self.recruited.is_empty() || !self.promotions.is_empty()
    }
}

/// The node set to shed from an overloaded service: smallest nodes first,
/// until `excess` polygons are covered. Fine-grain selection is the whole
/// point — "If an underloaded service has capacity for another 5k
/// polygons/sec ... we do not want to add 100k polygons by mistake."
pub fn select_nodes_to_shed(
    scene: &rave_scene::SceneTree,
    roots: &[NodeId],
    excess_polygons: u64,
) -> Vec<(NodeId, NodeCost)> {
    let mut candidates: Vec<(NodeId, NodeCost)> = roots
        .iter()
        .filter_map(|&id| scene.node(id).map(|_| (id, scene.subtree_cost(id))))
        .filter(|(_, c)| !c.is_zero())
        .collect();
    candidates.sort_by_key(|(id, c)| (c.render_weight(), *id));
    let mut shed = Vec::new();
    let mut covered = 0u64;
    for (id, cost) in candidates {
        if covered >= excess_polygons {
            break;
        }
        covered += cost.polygons;
        shed.push((id, cost));
    }
    shed
}

/// Detect overloaded subscribers (rolling fps below the threshold),
/// recording the §3.2.7 "informs the data server" trace for each.
pub fn detect_overload(sim: &mut RaveSim, ds_id: DataServiceId) -> Vec<SchedEvent> {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    let mut events = Vec::new();
    for rs in sim.world.data(ds_id).subscriber_ids() {
        let fps = sim.world.render(rs).rolling_fps();
        if fps.is_some_and(|f| f < cfg.overload_fps) {
            events.push(SchedEvent::Overload { service: rs });
        }
    }
    for ev in &events {
        if let SchedEvent::Overload { service } = ev {
            sim.world.trace.record(
                now,
                TraceKind::Overload,
                format!(
                    "{service} at {:.1} fps (threshold {})",
                    sim.world.render(*service).rolling_fps().unwrap_or(0.0),
                    cfg.overload_fps
                ),
            );
        }
    }
    events
}

/// Track under-load and surface services idle past the debounce window:
/// "When a render service is significantly underloaded (for a given
/// amount of time, to smooth out spikes of usage), the data service again
/// redistributes data." Mutates the debounce ledger in
/// `world.sched.underload_since`.
pub fn detect_underload(sim: &mut RaveSim, ds_id: DataServiceId) -> Vec<SchedEvent> {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    let mut events = Vec::new();
    for rs in sim.world.data(ds_id).subscriber_ids() {
        let fps = sim.world.render(rs).rolling_fps();
        // No fps data counts as under-loaded only for an *empty* service
        // (a fresh recruit); a loaded service that simply has not rendered
        // lately is not a migration target.
        let under = match fps {
            Some(f) => f > cfg.underload_fps,
            None => sim.world.render(rs).assigned_cost().is_zero(),
        };
        if under {
            let since = *sim.world.sched.underload_since.entry(rs).or_insert(now);
            if now - since >= cfg.underload_debounce {
                events.push(SchedEvent::Underload { service: rs });
            }
        } else {
            sim.world.sched.underload_since.remove(&rs);
        }
    }
    events
}

/// Detect services whose measured throughput (from the world's
/// scheduler-level [`super::ThroughputTracker`]) has drifted below
/// `sched_drift_ratio × advertised`. The tracker's unit domain is
/// whatever the caller feeds it — comparisons only make sense against an
/// `expected` in the same units, so the advertised `polys_per_sec` is
/// used as the reference scale.
/// Hysteresis: the EWMA jitters around `sched_drift_ratio × advertised`,
/// and a trigger-happy detector would storm the scheduler with
/// `CostDrift` events (defeating the incremental replanner's coalescing).
/// A drift observation therefore only *arms* the service on its first
/// detect pass (`world.sched.drift_pending`); the event fires when the
/// drift persists into a second consecutive pass, and any recovered pass
/// disarms it.
pub fn detect_cost_drift(sim: &mut RaveSim, ds_id: DataServiceId) -> Vec<SchedEvent> {
    let cfg = sim.world.config.clone();
    let mut events = Vec::new();
    for rs in sim.world.data(ds_id).subscriber_ids() {
        let expected = sim.world.render(rs).capacity_report(&cfg).polys_per_sec;
        if sim.world.sched.throughput.drifted_below(rs, expected, cfg.sched_drift_ratio) {
            if !sim.world.sched.drift_pending.insert(rs) {
                let measured = sim.world.sched.throughput.throughput(rs).unwrap_or(0.0);
                events.push(SchedEvent::CostDrift { service: rs, measured, expected });
            }
        } else {
            sim.world.sched.drift_pending.remove(&rs);
        }
    }
    events
}

/// Per-batch processing state: one ledger and one moved-set shared by
/// every event, so two events in the same batch can neither overfill a
/// receiver nor move the same node twice.
struct Batch {
    /// Services overloaded (or drifting) in this batch — excluded from
    /// the shared receiving ledger.
    overloaded: Vec<RenderServiceId>,
    /// Services underloaded in this batch — excluded from donor choice.
    underloaded: Vec<RenderServiceId>,
    /// Receiving ledger for overload-type events, built lazily from one
    /// interrogation pass (original order kept across debits).
    ledger: Option<Ledger>,
    /// Donor for underload events, computed once per batch.
    donor: Option<Option<RenderServiceId>>,
    /// Nodes already moved by an earlier event in this batch.
    moved_nodes: BTreeSet<NodeId>,
}

/// Process a batch of [`SchedEvent`]s against one data service. Every
/// decision goes through the shared ledger and emits a `SchedDecision`
/// trace record with the considered candidates and chosen placement.
pub fn process_events(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    events: &[SchedEvent],
) -> MigrationOutcome {
    // Coalesce per service before handling: `Overload` and `CostDrift`
    // both shed through `handle_overload`, so a batch carrying both for
    // the same service would shed twice. The first event of each
    // (service, action) pair wins; later duplicates are dropped.
    let mut seen_shed = BTreeSet::new();
    let mut seen_pull = BTreeSet::new();
    let mut seen_dead = BTreeSet::new();
    let mut seen_ds_dead = BTreeSet::new();
    let events: Vec<SchedEvent> = events
        .iter()
        .copied()
        .filter(|ev| match ev {
            SchedEvent::Overload { service } | SchedEvent::CostDrift { service, .. } => {
                seen_shed.insert(*service)
            }
            SchedEvent::Underload { service } => seen_pull.insert(*service),
            SchedEvent::Failure { service } => seen_dead.insert(*service),
            SchedEvent::DataFailure { service } => seen_ds_dead.insert(*service),
        })
        .collect();
    let events = events.as_slice();
    let mut outcome = MigrationOutcome::default();
    let mut batch = Batch {
        overloaded: events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Overload { service } | SchedEvent::CostDrift { service, .. } => {
                    Some(*service)
                }
                _ => None,
            })
            .collect(),
        underloaded: events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Underload { service } => Some(*service),
                _ => None,
            })
            .collect(),
        ledger: None,
        donor: None,
        moved_nodes: BTreeSet::new(),
    };
    for ev in events {
        match *ev {
            SchedEvent::Overload { service } => {
                handle_overload(sim, ds_id, service, &mut batch, &mut outcome, "Overload");
            }
            SchedEvent::CostDrift { service, measured, expected } => {
                let now = sim.now();
                sim.world.trace.record(
                    now,
                    TraceKind::Overload,
                    format!(
                        "{service} drifting: measured {measured:.0} vs advertised {expected:.0}"
                    ),
                );
                handle_overload(sim, ds_id, service, &mut batch, &mut outcome, "CostDrift");
            }
            SchedEvent::Underload { service } => {
                handle_underload(sim, ds_id, service, &mut batch, &mut outcome);
            }
            SchedEvent::Failure { service } => {
                handle_failure(sim, ds_id, service, &mut batch, &mut outcome);
            }
            SchedEvent::DataFailure { service } => {
                handle_data_failure(sim, service, &mut outcome);
            }
        }
    }
    outcome
}

/// Handle the death of a data service. Preference order: promote the
/// warm standby (log-shipped, nothing to marshal), else rebuild from the
/// durable store via [`crate::bootstrap::recover_data_service`] (cold:
/// every subscriber re-bootstraps), else refuse — the session state is
/// gone with the host.
fn handle_data_failure(sim: &mut RaveSim, dead: DataServiceId, outcome: &mut MigrationOutcome) {
    if !sim.world.data_services.contains_key(&dead) {
        return;
    }
    if sim.world.replicas.contains_key(&dead) {
        let report = crate::replica::promote_standby(sim, dead)
            .expect("warm promotion replays a verified log")
            .expect("link checked above");
        outcome.promotions.push(report);
        return;
    }
    let (host, store_dir, n_subs) = {
        let ds = sim.world.data(dead);
        (ds.host.clone(), ds.store_dir.clone(), ds.subscribers.len())
    };
    if let Some(dir) = store_dir {
        let now = sim.now();
        let new_id = crate::bootstrap::recover_data_service(sim, dead, &host, &dir)
            .expect("cold recovery from an intact store");
        outcome.promotions.push(crate::replica::PromotionReport {
            failed: dead,
            promoted: new_id,
            warm: false,
            subscribers_moved: n_subs,
            residual_entries: 0,
            replayed_bytes: 0,
            // The store is lossless up to its last durable append;
            // anything past it died with the host and is unknowable here.
            lost_updates: 0,
            completed_at: now,
        });
        return;
    }
    let now = sim.now();
    sim.world.trace.record(
        now,
        TraceKind::Refusal,
        format!("{dead} failed with no standby and no durable store — session lost"),
    );
    outcome.refused = true;
}

fn trace_decision(
    sim: &mut RaveSim,
    record: &crate::sched::placement::DecisionRecord,
    event: &str,
) {
    if !sim.world.config.sched_decision_trace {
        return;
    }
    let now = sim.now();
    sim.world.trace.record(now, TraceKind::SchedDecision, record.detail(event));
}

/// Shed work from an overloaded (or drifting) service onto connected
/// services with headroom, recruiting via UDDI when that is not enough.
fn handle_overload(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    over_rs: RenderServiceId,
    batch: &mut Batch,
    outcome: &mut MigrationOutcome,
    event: &str,
) {
    let cfg = sim.world.config.clone();
    if !sim.world.render_services.contains_key(&over_rs) {
        return;
    }
    // How much must go: bring the service back inside its interactive
    // polygon budget.
    let (assigned, budget, roots) = {
        let rs = sim.world.render(over_rs);
        let pixels =
            rs.sessions.values().map(|s| s.viewport.pixel_count() as u64).max().unwrap_or(160_000);
        let budget = rs.machine.poly_budget_at_fps(cfg.target_fps, pixels);
        let roots: Vec<NodeId> = if rs.interest.is_everything() {
            rs.scene.node(rs.scene.root()).map(|root| root.children().collect()).unwrap_or_default()
        } else {
            rs.interest.roots().collect()
        };
        (rs.assigned_cost(), budget, roots)
    };
    let excess = assigned.polygons.saturating_sub(budget);
    if excess == 0 {
        return;
    }
    let shed: Vec<(NodeId, NodeCost)> =
        select_nodes_to_shed(&sim.world.render(over_rs).scene, &roots, excess)
            .into_iter()
            .filter(|(node, _)| !batch.moved_nodes.contains(node))
            .collect();

    // Receiving ledger: one interrogation pass per batch over connected
    // services that are not themselves overloaded, ordered most-spacious
    // first and debited (without re-sorting) as the batch places work.
    if batch.ledger.is_none() {
        let overloaded = batch.overloaded.clone();
        let reports: Vec<_> = sim
            .world
            .data(ds_id)
            .subscriber_ids()
            .into_iter()
            .filter(|rs| !overloaded.contains(rs))
            .map(|rs| sim.world.render(rs).capacity_report(&cfg))
            .collect();
        batch.ledger = Some(Ledger::from_reports(&reports, false));
    }
    let ledger = batch.ledger.as_mut().expect("just built");

    let mut unplaced: Vec<(NodeId, NodeCost)> = Vec::new();
    let mut placed: Vec<(NodeId, RenderServiceId, NodeCost)> = Vec::new();
    for (node, cost) in shed {
        // Only pay for the candidate snapshot and subject string when the
        // decision trace is actually on.
        let chosen = if cfg.sched_decision_trace {
            let (chosen, record) =
                ledger.fit_recorded(&cost, format!("shard {node} ({} polys)", cost.polygons));
            trace_decision(sim, &record, event);
            chosen
        } else {
            ledger.fit(&cost)
        };
        match chosen {
            Some(to) => placed.push((node, to, cost)),
            None => unplaced.push((node, cost)),
        }
    }
    for (node, to, cost) in placed {
        move_node(sim, ds_id, node, over_rs, to, &cost);
        batch.moved_nodes.insert(node);
        outcome.moved.push((node, over_rs, to));
    }

    if !unplaced.is_empty() {
        // Recruit via UDDI: registered render services not yet connected
        // to this data service.
        match recruit_unconnected(sim, ds_id) {
            Some(new_rs) => {
                outcome.recruited.push(new_rs);
                let report = sim.world.render(new_rs).capacity_report(&cfg);
                let mut room = report.headroom();
                let mut still_unplaced = Vec::new();
                for (node, cost) in unplaced {
                    if cfg.sched_decision_trace {
                        let record = crate::sched::placement::DecisionRecord {
                            subject: format!("shard {node} ({} polys)", cost.polygons),
                            chosen: room.fits(&cost).then_some(new_rs),
                            candidates: vec![(new_rs, room.polygons)],
                        };
                        trace_decision(sim, &record, event);
                    }
                    if room.fits(&cost) {
                        room.debit(&cost);
                        move_node(sim, ds_id, node, over_rs, new_rs, &cost);
                        batch.moved_nodes.insert(node);
                        outcome.moved.push((node, over_rs, new_rs));
                    } else {
                        still_unplaced.push((node, cost));
                    }
                }
                let ledger = batch.ledger.as_mut().expect("built above");
                ledger.push(new_rs, room);
                if !still_unplaced.is_empty() {
                    refuse(sim, ds_id, &still_unplaced);
                    outcome.refused = true;
                }
            }
            None => {
                refuse(sim, ds_id, &unplaced);
                outcome.refused = true;
            }
        }
    }
}

/// Pull work from the most loaded donor onto a debounced under-loaded
/// service, never overshooting its headroom (the §3.2.7 "5k vs 100k"
/// rule).
fn handle_underload(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    under_rs: RenderServiceId,
    batch: &mut Batch,
    outcome: &mut MigrationOutcome,
) {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    if !sim.world.render_services.contains_key(&under_rs) {
        return;
    }
    // Donor: the most loaded subscriber outside the batch's under-loaded
    // set, chosen once per batch.
    if batch.donor.is_none() {
        let underloaded = batch.underloaded.clone();
        let donor = sim
            .world
            .data(ds_id)
            .subscriber_ids()
            .into_iter()
            .filter(|rs| !underloaded.contains(rs) && sim.world.render_services.contains_key(rs))
            .max_by_key(|&rs| sim.world.render(rs).assigned_cost().polygons);
        batch.donor = Some(donor);
    }
    let Some(donor) = batch.donor.expect("just set") else { return };

    sim.world.trace.record(now, TraceKind::Underload, format!("{under_rs} has headroom"));
    let mut room = sim.world.render(under_rs).capacity_report(&cfg).headroom();
    if room.polygons == 0 {
        return;
    }
    let roots: Vec<NodeId> = {
        let rs = sim.world.render(donor);
        if rs.interest.is_everything() {
            rs.scene.node(rs.scene.root()).map(|r| r.children().collect()).unwrap_or_default()
        } else {
            rs.interest.roots().collect()
        }
    };
    // Fine-grain: move the largest node set that FITS the headroom.
    let mut candidates: Vec<(NodeId, NodeCost)> = roots
        .iter()
        .filter_map(|&id| {
            let scene = &sim.world.render(donor).scene;
            scene.node(id).map(|_| (id, scene.subtree_cost(id)))
        })
        .filter(|(node, c)| !c.is_zero() && !batch.moved_nodes.contains(node))
        .collect();
    candidates.sort_by_key(|(id, c)| (std::cmp::Reverse(c.render_weight()), *id));
    for (node, cost) in candidates {
        if cost.polygons <= room.polygons && donor != under_rs {
            if cfg.sched_decision_trace {
                let record = crate::sched::placement::DecisionRecord {
                    subject: format!("shard {node} ({} polys)", cost.polygons),
                    chosen: Some(under_rs),
                    candidates: vec![(under_rs, room.polygons)],
                };
                trace_decision(sim, &record, "Underload");
            }
            room.polygons -= cost.polygons;
            move_node(sim, ds_id, node, donor, under_rs, &cost);
            batch.moved_nodes.insert(node);
            outcome.moved.push((node, donor, under_rs));
        }
    }
    sim.world.sched.underload_since.remove(&under_rs);
}

/// Handle the death of a render service (§6): unsubscribe it and
/// redistribute its scene share onto the remaining services, recruiting
/// via UDDI if necessary.
fn handle_failure(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    dead: RenderServiceId,
    batch: &mut Batch,
    outcome: &mut MigrationOutcome,
) {
    let now = sim.now();
    let cfg = sim.world.config.clone();
    if !sim.world.render_services.contains_key(&dead) {
        return;
    }

    // Take the dead service's interest roots off the subscription.
    let orphaned: Vec<NodeId> = {
        let ds = sim.world.data_mut(ds_id);
        let roots = ds
            .subscribers
            .get(&dead)
            .map(|sub| {
                if sub.interest.is_everything() {
                    // A full replica holds everything; its loss orphans
                    // nothing that others don't already have.
                    Vec::new()
                } else {
                    sub.interest.roots().collect()
                }
            })
            .unwrap_or_default();
        ds.unsubscribe(dead);
        roots
    };
    // Remove the dead service from the world, the registry, and the
    // scheduler's throughput memory: its replica, advertisement and
    // measurements are gone.
    let dead_host = sim.world.render(dead).host.clone();
    sim.world.render_services.remove(&dead);
    sim.world.registry.unpublish("RAVE", &dead_host, &format!("render-{dead}"));
    sim.world.sched.throughput.forget(dead);
    sim.world.trace.record(
        now,
        TraceKind::Overload,
        format!("{dead} failed; {} orphaned subtree(s)", orphaned.len()),
    );
    if orphaned.is_empty() {
        return;
    }

    // Redistribute orphaned nodes onto surviving subscribers by headroom
    // (the failure re-plan uses its own interrogation pass: survivor
    // capacity just changed by the death itself).
    let reports: Vec<_> = sim
        .world
        .data(ds_id)
        .subscriber_ids()
        .into_iter()
        .map(|rs| sim.world.render(rs).capacity_report(&cfg))
        .collect();
    let mut ledger = Ledger::from_reports(&reports, false);

    let mut unplaced = Vec::new();
    let mut placed: Vec<(NodeId, RenderServiceId, NodeCost)> = Vec::new();
    for node in orphaned {
        if batch.moved_nodes.contains(&node) {
            continue;
        }
        let cost = sim.world.data(ds_id).scene.subtree_cost(node);
        let chosen = if cfg.sched_decision_trace {
            let (chosen, record) =
                ledger.fit_recorded(&cost, format!("shard {node} ({} polys)", cost.polygons));
            trace_decision(sim, &record, "Failure");
            chosen
        } else {
            ledger.fit(&cost)
        };
        match chosen {
            Some(to) => placed.push((node, to, cost)),
            None => unplaced.push((node, cost)),
        }
    }
    for (node, to, cost) in placed {
        move_node(sim, ds_id, node, dead, to, &cost);
        batch.moved_nodes.insert(node);
        outcome.moved.push((node, dead, to));
    }
    if !unplaced.is_empty() {
        match recruit_unconnected(sim, ds_id) {
            Some(new_rs) => {
                outcome.recruited.push(new_rs);
                for (node, cost) in unplaced {
                    if cfg.sched_decision_trace {
                        let record = crate::sched::placement::DecisionRecord {
                            subject: format!("shard {node} ({} polys)", cost.polygons),
                            chosen: Some(new_rs),
                            candidates: vec![(new_rs, cost.polygons)],
                        };
                        trace_decision(sim, &record, "Failure");
                    }
                    move_node(sim, ds_id, node, dead, new_rs, &cost);
                    batch.moved_nodes.insert(node);
                    outcome.moved.push((node, dead, new_rs));
                }
            }
            None => {
                refuse(sim, ds_id, &unplaced);
                outcome.refused = true;
            }
        }
    }
}

/// Execute one node move: update interest sets at the data service,
/// charge the data transfer to the receiving service, and install/remove
/// the subtree on the replicas.
fn move_node(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    node: NodeId,
    from: RenderServiceId,
    to: RenderServiceId,
    cost: &NodeCost,
) {
    let now = sim.now();
    let ds_host = sim.world.data(ds_id).host.clone();
    let to_host = sim.world.render(to).host.clone();

    // Update interest sets (data-service side routing).
    {
        let ds = sim.world.data_mut(ds_id);
        if let Some(sub) = ds.subscribers.get_mut(&from) {
            sub.interest.remove_root(node);
        }
        if let Some(sub) = ds.subscribers.get_mut(&to) {
            sub.interest.add_root(node);
        }
        ds.refresh_interests();
    }

    // Replica surgery now; the transfer cost lands on the receiving side
    // as an arrival event (the node is "in flight" until then, but the
    // old holder keeps rendering it until the handoff — best effort).
    let subtree = {
        let ds = sim.world.data(ds_id);
        ds.scene.extract_subset(&[node])
    };
    let bytes = cost.data_bytes.max(256);
    let arrival = sim.world.send_bytes(now, &ds_host, &to_host, bytes);
    sim.schedule_at(arrival, move |sim| {
        let at = sim.now();
        // The donor may already be gone (failure-triggered moves).
        if let Some(rs) = sim.world.render_services.get_mut(&from) {
            let _ = rs.scene.remove(node);
            rs.interest.remove_root(node);
        }
        {
            let rs = sim.world.render_mut(to);
            rs.interest.add_root(node);
            rs.scene.merge_subset(&subtree);
        }
        sim.world.trace.record(
            at,
            TraceKind::Migration,
            format!("node {node} moved {from} -> {to}"),
        );
    });
}

/// Recruit one registered-but-unconnected render service via UDDI,
/// charging the warm-scan cost and the bootstrap. Returns its id.
fn recruit_unconnected(sim: &mut RaveSim, ds_id: DataServiceId) -> Option<RenderServiceId> {
    let now = sim.now();
    // Which render services exist but are not subscribed?
    let connected = sim.world.data(ds_id).subscriber_ids();
    let candidate = sim
        .world
        .render_services
        .iter()
        .filter(|(id, rs)| !connected.contains(id) && rs.offscreen_capable)
        .map(|(id, _)| *id)
        .next()?;

    // Charge the UDDI inquiry (warm scan on the kept-alive proxy).
    let results =
        sim.world.registry.scan_access_points("RAVE", TechnicalModel::RenderService).len();
    let scan = sim.world.uddi_cost.scan_cost(results);
    sim.world.trace.record(
        now,
        TraceKind::Recruitment,
        format!("{candidate} discovered via UDDI ({results} services scanned, {scan})"),
    );
    // The bootstrap starts after the scan completes; we approximate by
    // offsetting the connect with a scheduled wrapper.
    let start = now + scan;
    sim.schedule_at(start, move |sim| {
        connect_render_service(sim, candidate, ds_id, InterestSet::subtrees([]));
    });
    Some(candidate)
}

fn refuse(sim: &mut RaveSim, ds_id: DataServiceId, unplaced: &[(NodeId, NodeCost)]) {
    let now = sim.now();
    let polys: u64 = unplaced.iter().map(|(_, c)| c.polygons).sum();
    sim.world.trace.record(
        now,
        TraceKind::Refusal,
        format!(
            "{ds_id}: insufficient resources for {} nodes ({polys} polygons) — request refused",
            unplaced.len()
        ),
    );
}

/// What one incremental replan pass did.
#[derive(Debug, Clone, Default)]
pub struct IncrementalOutcome {
    /// Movement bookkeeping in the same shape every other rebalance path
    /// reports (moves, recruits, refusals).
    pub migration: MigrationOutcome,
    /// The applied plan diff — `None` when the pass was deferred or
    /// refused.
    pub diff: Option<crate::sched::incremental::PlanDiff>,
    /// True when the staleness policy coalesced this pass's dirt instead
    /// of replanning.
    pub deferred: bool,
}

/// The incremental counterpart of [`process_events`]: instead of
/// shedding through per-event heuristics, fold the batch into the data
/// service's persistent [`crate::sched::incremental::PlanState`], replay
/// the placement engine from the first affected queue position, and
/// apply the resulting minimal [`crate::sched::incremental::PlanDiff`]
/// as migrations.
///
/// Events carry *when*, the world carries *what*: failure events tear
/// their service down here (which changes the capacity basis), while
/// overload/drift conditions are read back from the throughput tracker
/// when the gross basis is computed — so a deferred pass loses nothing.
pub fn incremental_replan(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    events: &[SchedEvent],
) -> IncrementalOutcome {
    let cfg = sim.world.config.clone();
    let mut out = IncrementalOutcome::default();

    // Teardown-type events first: they change the basis the replay packs
    // against.
    for ev in events {
        match *ev {
            SchedEvent::Failure { service } => teardown_render_service(sim, ds_id, service),
            SchedEvent::DataFailure { service } => {
                sim.world.sched.plans.remove(&service);
                handle_data_failure(sim, service, &mut out.migration);
            }
            _ => {}
        }
    }
    if !sim.world.data_services.contains_key(&ds_id) {
        return out;
    }

    let basis = gross_basis(sim, ds_id, &cfg);
    let mut state = sim.world.sched.plans.remove(&ds_id).unwrap_or_default();
    let result = {
        let ds = sim.world.data_services.get_mut(&ds_id).expect("checked above");
        crate::distribution::plan_incremental(
            &mut ds.scene,
            &basis,
            &mut state,
            cfg.sched_max_staleness,
        )
    };
    sim.world.sched.plans.insert(ds_id, state);
    match result {
        Ok(None) => out.deferred = true,
        Ok(Some(diff)) => {
            apply_plan_diff(sim, ds_id, &diff, &mut out.migration);
            out.diff = Some(diff);
        }
        Err(err) => {
            let now = sim.now();
            sim.world.trace.record(
                now,
                TraceKind::Refusal,
                format!("{ds_id}: incremental replan: {err}"),
            );
            out.migration.refused = true;
        }
    }
    out
}

/// The incremental planner's capacity basis: *gross* per-service budgets
/// (`poly_budget_at_fps × fill_factor`, total texture memory) rather
/// than the interrogation report's remaining headroom — the replay
/// decides the whole assignment itself, so already-assigned work must
/// not be double-counted against capacity. Services whose measured
/// throughput has drifted below the drift ratio are derated by the
/// measured fraction, which is what makes a `CostDrift` event move work
/// off them.
fn gross_basis(
    sim: &RaveSim,
    ds_id: DataServiceId,
    cfg: &crate::RaveConfig,
) -> Vec<(RenderServiceId, crate::capacity::Headroom)> {
    sim.world
        .data(ds_id)
        .subscriber_ids()
        .into_iter()
        .map(|rs_id| {
            let rs = sim.world.render(rs_id);
            let pixels = rs
                .sessions
                .values()
                .map(|s| s.viewport.pixel_count() as u64)
                .max()
                .unwrap_or(160_000);
            let budget = rs.machine.poly_budget_at_fps(cfg.target_fps, pixels);
            let mut fillable = (budget as f64 * cfg.fill_factor) as u64;
            let expected = rs.machine.poly_rate;
            if sim.world.sched.throughput.drifted_below(rs_id, expected, cfg.sched_drift_ratio) {
                let measured = sim.world.sched.throughput.throughput(rs_id).unwrap_or(0.0);
                let scale = (measured / expected).clamp(0.0, 1.0);
                fillable = (fillable as f64 * scale) as u64;
            }
            (
                rs_id,
                crate::capacity::Headroom {
                    polygons: fillable,
                    texture_bytes: rs.machine.texture_memory,
                },
            )
        })
        .collect()
}

/// The teardown half of [`handle_failure`] — unsubscribe, deregister,
/// forget measurements. Re-homing the dead service's share is not done
/// here: dropping it from the capacity basis makes the plan replay
/// reassign every workload it held.
fn teardown_render_service(sim: &mut RaveSim, ds_id: DataServiceId, dead: RenderServiceId) {
    if !sim.world.render_services.contains_key(&dead) {
        return;
    }
    let now = sim.now();
    sim.world.data_mut(ds_id).unsubscribe(dead);
    let dead_host = sim.world.render(dead).host.clone();
    sim.world.render_services.remove(&dead);
    sim.world.registry.unpublish("RAVE", &dead_host, &format!("render-{dead}"));
    sim.world.sched.throughput.forget(dead);
    sim.world.sched.drift_pending.remove(&dead);
    sim.world.trace.record(
        now,
        TraceKind::Overload,
        format!("{dead} failed; plan replay will re-home its share"),
    );
}

/// Apply a plan diff to the world: placement changes become migrations,
/// first placements install the subtree on their service, and dropped
/// workloads are cleaned off the holder they left.
fn apply_plan_diff(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    diff: &crate::sched::incremental::PlanDiff,
    outcome: &mut MigrationOutcome,
) {
    for &(node, old, new) in &diff.moved {
        let cost =
            sim.world.data(ds_id).scene.node(node).map(|n| n.own_cost()).unwrap_or(NodeCost::ZERO);
        match old {
            Some(from) => {
                move_node(sim, ds_id, node, from, new, &cost);
                outcome.moved.push((node, from, new));
            }
            None => install_node(sim, ds_id, node, new, &cost),
        }
    }
    for &(node, from) in &diff.dropped {
        uninstall_node(sim, ds_id, node, from);
    }
}

/// First placement of a workload: interest surgery on the receiving side
/// only, with the subtree transfer charged like a migration's.
fn install_node(
    sim: &mut RaveSim,
    ds_id: DataServiceId,
    node: NodeId,
    to: RenderServiceId,
    cost: &NodeCost,
) {
    let now = sim.now();
    let ds_host = sim.world.data(ds_id).host.clone();
    let Some(to_host) = sim.world.render_services.get(&to).map(|rs| rs.host.clone()) else {
        return;
    };
    {
        let ds = sim.world.data_mut(ds_id);
        if let Some(sub) = ds.subscribers.get_mut(&to) {
            sub.interest.add_root(node);
        }
        ds.refresh_interests();
    }
    let subtree = sim.world.data(ds_id).scene.extract_subset(&[node]);
    let bytes = cost.data_bytes.max(256);
    let arrival = sim.world.send_bytes(now, &ds_host, &to_host, bytes);
    sim.schedule_at(arrival, move |sim| {
        let at = sim.now();
        if let Some(rs) = sim.world.render_services.get_mut(&to) {
            rs.interest.add_root(node);
            rs.scene.merge_subset(&subtree);
        }
        sim.world.trace.record(at, TraceKind::Migration, format!("node {node} installed on {to}"));
    });
}

/// A workload left the plan (removed from the scene or split away):
/// clean it off the service that held it.
fn uninstall_node(sim: &mut RaveSim, ds_id: DataServiceId, node: NodeId, from: RenderServiceId) {
    {
        let ds = sim.world.data_mut(ds_id);
        if let Some(sub) = ds.subscribers.get_mut(&from) {
            sub.interest.remove_root(node);
        }
        ds.refresh_interests();
    }
    if let Some(rs) = sim.world.render_services.get_mut(&from) {
        let _ = rs.scene.remove(node);
        rs.interest.remove_root(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::{Vec3, Viewport};
    use rave_render::OffscreenMode;
    use rave_scene::{CameraParams, MeshData, NodeKind};
    use rave_sim::{SimTime, Simulation};
    use std::sync::Arc;

    fn mesh(tris: usize) -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; tris],
            texture_bytes: 0,
        }))
    }

    fn overload_world() -> (RaveSim, DataServiceId, RenderServiceId, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 11));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let slow = sim.world.spawn_render_service("laptop");
        let fast = sim.world.spawn_render_service("onyx");
        let (big, small) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            let root = scene.root();
            let big = scene.add_node(root, "big", mesh(600_000)).unwrap();
            let small = scene.add_node(root, "small", mesh(40_000)).unwrap();
            (big, small)
        };
        {
            let replica = sim.world.data(ds).scene.clone();
            let rs = sim.world.render_mut(slow);
            rs.scene = replica;
            rs.interest = InterestSet::subtrees([big, small]);
            rs.open_session(
                crate::ids::ClientId(1),
                Viewport::new(200, 200),
                CameraParams::default(),
                OffscreenMode::Sequential,
            );
        }
        sim.world.data_mut(ds).subscribe_live(slow, InterestSet::subtrees([big, small]));
        sim.world.data_mut(ds).subscribe_live(fast, InterestSet::subtrees([]));
        (sim, ds, slow, fast)
    }

    fn make_overloaded(sim: &mut RaveSim, rs: RenderServiceId) {
        for i in 0..6 {
            let t = SimTime::from_secs(i as f64 * 0.5);
            sim.world.render_mut(rs).record_frame(t, 10);
        }
    }

    #[test]
    fn overload_events_flow_through_the_engine_with_decisions() {
        let (mut sim, ds, slow, fast) = overload_world();
        make_overloaded(&mut sim, slow);
        let events = detect_overload(&mut sim, ds);
        assert_eq!(events, vec![SchedEvent::Overload { service: slow }]);
        let outcome = process_events(&mut sim, ds, &events);
        assert!(outcome.acted());
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        // Every placement decision is on the SchedDecision stream.
        assert_eq!(
            sim.world.trace.count(TraceKind::SchedDecision),
            outcome.moved.len(),
            "{}",
            sim.world.trace.render()
        );
        let detail = &sim.world.trace.first_of(TraceKind::SchedDecision).unwrap().detail;
        assert!(detail.starts_with("Overload:"), "{detail}");
        assert!(detail.contains("candidates:"), "{detail}");
    }

    #[test]
    fn decision_trace_can_be_silenced() {
        let (mut sim, ds, slow, _) = overload_world();
        sim.world.config.sched_decision_trace = false;
        make_overloaded(&mut sim, slow);
        let events = detect_overload(&mut sim, ds);
        let outcome = process_events(&mut sim, ds, &events);
        assert!(outcome.acted());
        assert_eq!(sim.world.trace.count(TraceKind::SchedDecision), 0);
    }

    #[test]
    fn one_batch_never_moves_a_node_twice() {
        let (mut sim, ds, slow, fast) = overload_world();
        make_overloaded(&mut sim, slow);
        // A synthetic pathological batch: the same overload event twice.
        let events =
            [SchedEvent::Overload { service: slow }, SchedEvent::Overload { service: slow }];
        let outcome = process_events(&mut sim, ds, &events);
        let mut seen = BTreeSet::new();
        for (node, _, _) in &outcome.moved {
            assert!(seen.insert(*node), "node {node} moved twice in one batch");
        }
        let _ = fast;
    }

    #[test]
    fn failure_event_rehomes_and_forgets_throughput() {
        let (mut sim, ds, slow, fast) = overload_world();
        sim.world.sched.throughput.record(slow, 1000, 1.0);
        let outcome = process_events(&mut sim, ds, &[SchedEvent::Failure { service: slow }]);
        sim.run();
        assert!(!outcome.refused);
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
        assert!(sim.world.sched.throughput.throughput(slow).is_none());
        assert!(sim.world.trace.count(TraceKind::SchedDecision) >= 1);
    }

    #[test]
    fn events_on_dead_services_are_ignored() {
        let (mut sim, ds, slow, _) = overload_world();
        sim.world.data_mut(ds).unsubscribe(slow);
        sim.world.render_services.remove(&slow);
        let outcome = process_events(
            &mut sim,
            ds,
            &[
                SchedEvent::Overload { service: slow },
                SchedEvent::Underload { service: slow },
                SchedEvent::Failure { service: slow },
            ],
        );
        assert!(!outcome.acted());
        assert!(!outcome.refused);
    }

    #[test]
    fn cost_drift_sheds_like_overload() {
        let (mut sim, ds, slow, fast) = overload_world();
        // The laptop advertises ~1e7 polys/s but measures far below the
        // drift ratio: the scheduler re-plans without waiting for the fps
        // threshold to trip.
        let expected = {
            let cfg = sim.world.config.clone();
            sim.world.render(slow).capacity_report(&cfg).polys_per_sec
        };
        sim.world.sched.throughput.record(slow, (expected * 0.01) as u64, 1.0);
        // First pass arms the hysteresis; the event fires when the drift
        // persists into the second consecutive pass.
        assert!(detect_cost_drift(&mut sim, ds).is_empty(), "first observation only arms");
        let events = detect_cost_drift(&mut sim, ds);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], SchedEvent::CostDrift { service, .. } if service == slow));
        let outcome = process_events(&mut sim, ds, &events);
        assert!(outcome.acted(), "drifting service sheds work");
        assert!(outcome.moved.iter().all(|(_, from, to)| *from == slow && *to == fast));
    }

    #[test]
    fn cost_drift_hysteresis_filters_oscillation() {
        let (mut sim, ds, slow, _) = overload_world();
        let expected = {
            let cfg = sim.world.config.clone();
            sim.world.render(slow).capacity_report(&cfg).polys_per_sec
        };
        // Drift observed once: armed, no event.
        sim.world.sched.throughput.record(slow, (expected * 0.01) as u64, 1.0);
        assert!(detect_cost_drift(&mut sim, ds).is_empty());
        // The EWMA jitters back above the ratio: disarmed, no event.
        sim.world.sched.throughput.forget(slow);
        sim.world.sched.throughput.record(slow, expected as u64, 1.0);
        assert!(detect_cost_drift(&mut sim, ds).is_empty());
        // Drifts again: only arms again — the oscillation never fired.
        sim.world.sched.throughput.forget(slow);
        sim.world.sched.throughput.record(slow, (expected * 0.01) as u64, 1.0);
        assert!(detect_cost_drift(&mut sim, ds).is_empty(), "re-arm after recovery");
        // Persisting for a second consecutive pass finally fires.
        assert_eq!(detect_cost_drift(&mut sim, ds).len(), 1);
    }

    #[test]
    fn incremental_replan_builds_applies_and_defers() {
        let (mut sim, ds, _slow, _fast) = overload_world();
        // First pass: no plan exists, so the whole scene is packed.
        let out = incremental_replan(&mut sim, ds, &[]);
        assert!(!out.deferred);
        assert!(!out.migration.refused);
        let diff = out.diff.expect("first pass builds the plan");
        assert!(diff.full_replay);
        assert!(!diff.moved.is_empty());
        assert!(diff.moved.iter().all(|&(_, old, _)| old.is_none()), "first placements install");
        sim.run();
        // Every planned workload landed as an interest root on its service.
        for &(node, _, to) in &diff.moved {
            assert!(
                sim.world.render(to).interest.roots().any(|r| r == node),
                "node {node} missing from {to} interest"
            );
        }
        // A clean second pass defers: nothing is dirty.
        let out = incremental_replan(&mut sim, ds, &[]);
        assert!(out.deferred);
        assert!(out.diff.is_none());
        // Removing a planned node drops it from the plan and its holder.
        let &(gone, _, holder) = diff.moved.last().unwrap();
        let _ = sim.world.data_mut(ds).scene.remove(gone);
        let out = incremental_replan(&mut sim, ds, &[]);
        let diff = out.diff.expect("removal replans");
        assert!(
            diff.dropped.iter().any(|&(n, from)| n == gone && from == holder),
            "removed node must be dropped from its holder: {diff:?}"
        );
        assert!(!sim.world.render(holder).interest.roots().any(|r| r == gone));
    }

    #[test]
    fn overload_and_drift_for_one_service_shed_once() {
        // A batch carrying both `Overload` and `CostDrift` for the same
        // service must shed exactly what `Overload` alone sheds — not
        // twice through `handle_overload`.
        let moved_with = |extra_drift: bool| {
            let (mut sim, ds, slow, _) = overload_world();
            make_overloaded(&mut sim, slow);
            let mut events = vec![SchedEvent::Overload { service: slow }];
            if extra_drift {
                events.push(SchedEvent::CostDrift {
                    service: slow,
                    measured: 1.0,
                    expected: 100.0,
                });
            }
            let mut moved = process_events(&mut sim, ds, &events).moved;
            moved.sort();
            moved
        };
        let baseline = moved_with(false);
        assert!(!baseline.is_empty());
        assert_eq!(moved_with(true), baseline, "duplicate shed events must coalesce");
    }
}
