//! The unified workload scheduler (§3.2.5, §3.2.7).
//!
//! The paper's headline contribution is *automatic* distribution of
//! rendering workloads, and the repro had grown three parallel placement
//! paths — dataset bin-packing in [`crate::distribution`], tile splitting
//! with EWMA cost feedback in [`crate::tiles`], volume bricking in
//! [`crate::volume_dist`] — plus a fourth consumer
//! ([`crate::migration`]) that re-derived overload/underload/failure
//! decisions from raw [`crate::capacity::CapacityReport`]s. This module
//! is the one placement engine all of them now flow through:
//!
//! * [`workload`] — the common workload abstraction: a dataset shard, a
//!   framebuffer tile or a volume brick, each reduced to one
//!   [`workload::CostVector`].
//! * [`placement`] — capacity-aware first-fit-decreasing bin-packing with
//!   spatial splitting (subsuming `plan_distribution` + `split_node`),
//!   plus the candidate-ranking primitive the tile planner shares, and a
//!   [`placement::DecisionRecord`] per choice for the
//!   [`crate::trace::TraceKind::SchedDecision`] audit stream.
//! * [`feedback`] — the generalized EWMA [`feedback::ThroughputTracker`]
//!   (promoted out of `tiles.rs`) so dataset and volume placement can
//!   learn from *measured* render throughput, not just advertised
//!   polygons/sec.
//! * [`rebalance`] — every rebalance trigger (overload, underload,
//!   failure, cost drift) as one [`rebalance::SchedEvent`] stream with a
//!   single handler, so initial plans, migrations and failover re-plans
//!   all make their choices through the same ledger.
//! * [`incremental`] — the persistent [`incremental::PlanState`]: dirty-set
//!   extraction, checkpointed plan replay and minimal
//!   [`incremental::PlanDiff`] migration sets, so steady-state event
//!   streams replan only the affected slice instead of rebuilding the
//!   whole assignment.
//!
//! **Parity guarantee**: this is a behaviour-preserving refactor at the
//! seam. For the seeded paper-testbed scenarios the adapters in
//! `distribution.rs`, `tiles.rs`, `volume_dist.rs` and `migration.rs`
//! produce plans identical to the pre-refactor implementations (pinned by
//! `tests/sched_parity.rs` and the existing unit/property suites).

pub mod feedback;
pub mod incremental;
pub mod placement;
pub mod rebalance;
pub mod workload;

pub use feedback::ThroughputTracker;
pub use incremental::{DirtySet, PlanDiff, PlanState};
pub use placement::{DecisionRecord, Ledger, PlaceError, PlacementOutcome};
pub use rebalance::{MigrationOutcome, SchedEvent};
pub use workload::{CostVector, Workload};
