//! The placement engine: capacity-aware first-fit-decreasing bin-packing
//! with spatial splitting, over a headroom ledger built from interrogated
//! [`CapacityReport`]s. Dataset distribution, migration shedding,
//! failover re-planning and tile/volume participant ranking all make
//! their choices here, and every choice can be captured as a
//! [`DecisionRecord`] for the `SchedDecision` trace stream.

use crate::capacity::{CapacityReport, Headroom};
use crate::ids::RenderServiceId;
use rave_scene::{NodeCost, NodeId};
use std::collections::VecDeque;

/// One candidate service's remaining room in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    pub service: RenderServiceId,
    pub room: Headroom,
}

/// The considered candidates, their scores (polygon headroom at decision
/// time) and the chosen placement for one workload — the audit record the
/// unified `TraceKind::SchedDecision` events carry.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// What was being placed, e.g. `"shard 5 (1200 polys)"`.
    pub subject: String,
    pub chosen: Option<RenderServiceId>,
    /// `(service, poly headroom)` in the order they were considered.
    pub candidates: Vec<(RenderServiceId, u64)>,
}

impl DecisionRecord {
    /// Compact one-line rendering for the trace.
    pub fn detail(&self, event: &str) -> String {
        let cands: Vec<String> = self.candidates.iter().map(|(s, h)| format!("{s}@{h}")).collect();
        match self.chosen {
            Some(svc) => {
                format!("{event}: {} -> {svc} [candidates: {}]", self.subject, cands.join(" "))
            }
            None => {
                format!("{event}: {} -> unplaced [candidates: {}]", self.subject, cands.join(" "))
            }
        }
    }
}

/// Remaining headroom per candidate service. Ordered most-spacious first
/// (polygon headroom descending, service id ascending as the tiebreak);
/// `keep_sorted` re-establishes that order after every debit — the
/// distribution planner's policy — while migration-style ledgers keep
/// their initial order.
#[derive(Debug, Clone)]
pub struct Ledger {
    slots: Vec<Slot>,
    keep_sorted: bool,
    /// A recruit was `push`ed since the last full sort, so the tail is
    /// out of order and the next successful fit must re-sort everything
    /// (exactly what the historical full re-sort after every debit did).
    /// While false, a debit only moves the one slot whose key shrank.
    stale_tail: bool,
}

impl Ledger {
    pub fn from_reports(reports: &[CapacityReport], keep_sorted: bool) -> Self {
        let slots =
            reports.iter().map(|r| Slot { service: r.service, room: r.headroom() }).collect();
        let mut ledger = Self { slots, keep_sorted, stale_tail: false };
        ledger.sort();
        ledger
    }

    /// Build from an explicit per-service headroom basis — the
    /// incremental planner's capacity snapshot, which carries no host
    /// strings or fps telemetry. Produces exactly the ledger
    /// [`Ledger::from_reports`] would for reports with these headrooms.
    pub fn from_caps(caps: &[(RenderServiceId, Headroom)], keep_sorted: bool) -> Self {
        let slots = caps.iter().map(|&(service, room)| Slot { service, room }).collect();
        let mut ledger = Self { slots, keep_sorted, stale_tail: false };
        ledger.sort();
        ledger
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn sort(&mut self) {
        self.slots
            .sort_by(|a, b| b.room.polygons.cmp(&a.room.polygons).then(a.service.cmp(&b.service)));
    }

    /// Re-establish ledger order after debiting `slots[idx]`. Only that
    /// slot's key shrank, so it can only move towards the tail: binary
    /// search its new position among the (still sorted) slots after it
    /// and rotate it into place — O(log s) + the move distance, instead
    /// of the O(s log s) full re-sort. Ties resolve exactly as the
    /// stable full sort did: equal keys keep the debited slot first.
    fn resift(&mut self, idx: usize) {
        let key = |s: &Slot| (std::cmp::Reverse(s.room.polygons), s.service);
        let k = key(&self.slots[idx]);
        let shift = self.slots[idx + 1..].partition_point(|s| key(s) < k);
        self.slots[idx..=idx + shift].rotate_left(1);
    }

    /// Append a late-arriving candidate (a recruit) without disturbing
    /// the existing order.
    pub fn push(&mut self, service: RenderServiceId, room: Headroom) {
        self.slots.push(Slot { service, room });
        self.stale_tail = true;
    }

    /// The biggest single-service polygon headroom (the `IndivisibleNode`
    /// refusal's explanatory number).
    pub fn largest_poly_headroom(&self) -> u64 {
        self.slots.iter().map(|s| s.room.polygons).max().unwrap_or(0)
    }

    /// First-fit: the first slot (in ledger order) whose remaining room
    /// covers `cost` on both capacity axes takes it and is debited.
    pub fn fit(&mut self, cost: &NodeCost) -> Option<RenderServiceId> {
        let idx = self.slots.iter().position(|s| s.room.fits(cost))?;
        self.slots[idx].room.debit(cost);
        let svc = self.slots[idx].service;
        if self.keep_sorted {
            if self.stale_tail {
                self.sort();
                self.stale_tail = false;
            } else {
                self.resift(idx);
            }
        }
        Some(svc)
    }

    /// Replay a recorded debit against slot *contents* without touching
    /// the order — checkpoint catch-up in the incremental planner, which
    /// restores order once with [`Ledger::restore_order`] after the whole
    /// prefix is re-applied. Sound because the keep-sorted order is a
    /// pure function of slot contents: the `(polygons desc, service asc)`
    /// key is a strict total order (service ids are unique), so sorting
    /// the caught-up contents reproduces exactly the order the original
    /// fit-by-fit resifts maintained.
    pub(crate) fn replay_debit(&mut self, service: RenderServiceId, cost: &NodeCost) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.service == service)
            .expect("recorded placement names a live slot");
        slot.room.debit(cost);
    }

    /// Re-establish the canonical keep-sorted order after a run of
    /// [`Ledger::replay_debit`]s.
    pub(crate) fn restore_order(&mut self) {
        self.sort();
        self.stale_tail = false;
    }

    /// First-fit when the texture axis provably cannot bind (every
    /// slot's remaining texture room covers the whole remaining demand):
    /// the slots are sorted by polygon room descending, so the *first*
    /// slot either fits or nothing does — no scan. Callers must only use
    /// this under that precondition and with `keep_sorted`; the decision
    /// and resulting state are then identical to [`Ledger::fit`].
    pub(crate) fn fit_poly_fast(&mut self, cost: &NodeCost) -> Option<RenderServiceId> {
        debug_assert!(self.keep_sorted && !self.stale_tail);
        let first = self.slots.first_mut()?;
        if first.room.polygons < cost.polygons {
            return None;
        }
        first.room.debit(cost);
        let svc = first.service;
        self.resift(0);
        Some(svc)
    }

    /// Slot order snapshot `(service, polygon room)` — for property
    /// tests pinning the incremental resift against a naive re-sort.
    #[doc(hidden)]
    pub fn slot_states(&self) -> Vec<(RenderServiceId, u64)> {
        self.slots.iter().map(|s| (s.service, s.room.polygons)).collect()
    }

    /// Like [`Ledger::fit`], also capturing the considered candidates and
    /// the choice as a [`DecisionRecord`]. The candidate snapshot and the
    /// subject string both allocate, so latency-sensitive callers that do
    /// not trace decisions (the bulk dataset planner, rebalance with
    /// `sched_decision_trace` off) must call [`Ledger::fit`] instead.
    pub fn fit_recorded(
        &mut self,
        cost: &NodeCost,
        subject: impl Into<String>,
    ) -> (Option<RenderServiceId>, DecisionRecord) {
        let candidates: Vec<(RenderServiceId, u64)> =
            self.slots.iter().map(|s| (s.service, s.room.polygons)).collect();
        let chosen = self.fit(cost);
        (chosen, DecisionRecord { subject: subject.into(), chosen, candidates })
    }
}

/// Why the engine could not place everything.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// A single unsplittable item exceeds every candidate's room.
    Indivisible { item: NodeId, polygons: u64, largest_headroom: u64 },
}

/// What a full placement pass produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOutcome {
    /// Per-service `(nodes, total cost)`, ordered by service id.
    pub assignments: Vec<(RenderServiceId, Vec<NodeId>, NodeCost)>,
    /// Spatial splits performed to make things fit.
    pub splits: u32,
    /// One record per placement choice, in decision order.
    pub decisions: Vec<DecisionRecord>,
}

/// First-fit-decreasing with spatial splitting: items are ordered largest
/// render weight first (id ascending as tiebreak), each goes to the first
/// ledger slot that fits, and an item nothing can hold is split via
/// `splitter` — larger half requeued first — or the pass fails with
/// [`PlaceError::Indivisible`].
///
/// This is exactly the pre-refactor `plan_distribution` packing loop,
/// extracted so migration and failover re-plans flow through the same
/// code — with the queue held in a `VecDeque` so the front pop and the
/// front re-queue of split halves are O(1) instead of shifting the whole
/// remaining queue (the pre-refactor `Vec::remove(0)`/`insert(0)` made
/// large plans quadratic). The pop order is bit-identical: a `VecDeque`
/// preserves FIFO order exactly, including split halves jumping the
/// queue ahead of possibly-heavier items behind them — which is why this
/// is not a weight-keyed heap. `record_decisions` controls whether
/// per-item [`DecisionRecord`]s are captured: callers that discard them
/// (the bulk dataset planner on its latency-sensitive path) skip the
/// per-item bookkeeping entirely.
pub fn place_with_splitting(
    ledger: &mut Ledger,
    queue: Vec<(NodeId, NodeCost)>,
    splitter: impl FnMut(NodeId) -> Option<[(NodeId, NodeCost); 2]>,
    record_decisions: bool,
) -> Result<PlacementOutcome, PlaceError> {
    let mut sorted = queue;
    let mut splitter = splitter;
    // Unstable sort is safe: the (weight desc, id asc) key is a strict
    // total order — ids are unique — so no equal elements exist for
    // instability to reorder.
    sorted
        .sort_unstable_by(|a, b| b.1.render_weight().cmp(&a.1.render_weight()).then(a.0.cmp(&b.0)));
    let mut queue: VecDeque<(NodeId, NodeCost)> = sorted.into();
    let mut assignments: std::collections::BTreeMap<RenderServiceId, (Vec<NodeId>, NodeCost)> =
        std::collections::BTreeMap::new();
    let mut splits = 0u32;
    let mut decisions = Vec::new();

    while let Some((id, cost)) = queue.pop_front() {
        let chosen = if record_decisions {
            let (chosen, record) =
                ledger.fit_recorded(&cost, format!("shard {id} ({} polys)", cost.polygons));
            decisions.push(record);
            chosen
        } else {
            ledger.fit(&cost)
        };
        match chosen {
            Some(svc) => {
                let entry = assignments.entry(svc).or_default();
                entry.0.push(id);
                entry.1 += cost;
            }
            None => match splitter(id) {
                Some([(a, ca), (b, cb)]) => {
                    splits += 1;
                    // Push the larger half first (still decreasing-ish).
                    if ca.render_weight() >= cb.render_weight() {
                        queue.push_front((b, cb));
                        queue.push_front((a, ca));
                    } else {
                        queue.push_front((a, ca));
                        queue.push_front((b, cb));
                    }
                }
                None => {
                    return Err(PlaceError::Indivisible {
                        item: id,
                        polygons: cost.polygons,
                        largest_headroom: ledger.largest_poly_headroom(),
                    });
                }
            },
        }
    }

    Ok(PlacementOutcome {
        assignments: assignments
            .into_iter()
            .map(|(service, (nodes, cost))| (service, nodes, cost))
            .collect(),
        splits,
        decisions,
    })
}

/// Rank assisting services strongest-first by advertised headroom,
/// dropping those that can contribute nothing (zero headroom) and
/// truncating to `cap` participants. This is the tile planner's
/// participant-selection primitive, shared with volume placement.
///
/// When far more helpers report in than `cap` admits, selecting the
/// top-`cap` with `select_nth_unstable_by_key` and sorting only that
/// slice is O(n + cap log cap) instead of sorting the whole roster.
/// Ties are resolved exactly as the historical stable sort did: the key
/// includes each helper's filtered input index, which is the total order
/// a stable sort on `Reverse(weight)` alone induces.
pub fn rank_helpers(helpers: &[CapacityReport], cap: usize) -> Vec<&CapacityReport> {
    let mut ordered: Vec<(usize, &CapacityReport)> =
        helpers.iter().filter(|r| r.headroom_weight() > 0).enumerate().collect();
    let key = |&(idx, r): &(usize, &CapacityReport)| (std::cmp::Reverse(r.headroom_weight()), idx);
    if cap == 0 {
        return Vec::new();
    }
    if ordered.len() > cap {
        ordered.select_nth_unstable_by_key(cap - 1, key);
        ordered.truncate(cap);
    }
    ordered.sort_unstable_by_key(key);
    ordered.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u64, polys: u64) -> CapacityReport {
        CapacityReport {
            service: RenderServiceId(id),
            host: format!("h{id}"),
            polys_per_sec: 1e7,
            poly_headroom: polys,
            texture_headroom: u64::MAX,
            volume_hw: false,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        }
    }

    fn polys(n: u64) -> NodeCost {
        NodeCost { polygons: n, ..NodeCost::ZERO }
    }

    #[test]
    fn ledger_orders_most_spacious_first() {
        let mut ledger =
            Ledger::from_reports(&[report(1, 100), report(2, 500), report(3, 500)], true);
        // Ties break by id ascending; biggest headroom wins.
        assert_eq!(ledger.fit(&polys(10)), Some(RenderServiceId(2)));
        assert_eq!(ledger.largest_poly_headroom(), 500);
    }

    #[test]
    fn keep_sorted_reorders_after_debit() {
        let mut sorted = Ledger::from_reports(&[report(1, 500), report(2, 400)], true);
        assert_eq!(sorted.fit(&polys(300)), Some(RenderServiceId(1)));
        // 1 now holds 200 < 400: service 2 takes the next item.
        assert_eq!(sorted.fit(&polys(300)), Some(RenderServiceId(2)));

        let mut fixed = Ledger::from_reports(&[report(1, 500), report(2, 400)], false);
        assert_eq!(fixed.fit(&polys(300)), Some(RenderServiceId(1)));
        // Without resorting, 1 (200 left) is still first but cannot fit.
        assert_eq!(fixed.fit(&polys(300)), Some(RenderServiceId(2)));
        assert_eq!(fixed.fit(&polys(150)), Some(RenderServiceId(1)));
    }

    #[test]
    fn fit_recorded_captures_candidates_and_choice() {
        let mut ledger = Ledger::from_reports(&[report(1, 100), report(2, 50)], true);
        let (chosen, rec) = ledger.fit_recorded(&polys(80), "shard 9 (80 polys)");
        assert_eq!(chosen, Some(RenderServiceId(1)));
        assert_eq!(rec.candidates, vec![(RenderServiceId(1), 100), (RenderServiceId(2), 50)]);
        let line = rec.detail("Overload");
        assert!(line.contains("shard 9"));
        assert!(line.contains("-> rs1"));
        let (none, rec) = ledger.fit_recorded(&polys(500), "shard 10 (500 polys)");
        assert_eq!(none, None);
        assert!(rec.detail("Failure").contains("unplaced"));
    }

    #[test]
    fn place_with_splitting_splits_until_it_fits() {
        let mut ledger = Ledger::from_reports(&[report(1, 60), report(2, 60)], true);
        // One 100-poly item, splittable in halves down to single polys.
        let out = place_with_splitting(
            &mut ledger,
            vec![(NodeId(10), polys(100))],
            |id| {
                let half = NodeId(id.0 * 2);
                let other = NodeId(id.0 * 2 + 1);
                Some([(half, polys(50)), (other, polys(50))])
            },
            true,
        )
        .unwrap();
        assert_eq!(out.splits, 1);
        let placed: u64 = out.assignments.iter().map(|(_, _, c)| c.polygons).sum();
        assert_eq!(placed, 100);
        assert_eq!(out.decisions.len(), 3, "one unplaced probe + two placements");
    }

    #[test]
    fn place_with_splitting_reports_indivisible() {
        let mut ledger = Ledger::from_reports(&[report(1, 60)], true);
        let err = place_with_splitting(&mut ledger, vec![(NodeId(1), polys(100))], |_| None, false)
            .unwrap_err();
        assert_eq!(
            err,
            PlaceError::Indivisible { item: NodeId(1), polygons: 100, largest_headroom: 60 }
        );
    }

    #[test]
    fn rank_helpers_drops_dead_and_truncates() {
        let helpers = [report(1, 0), report(2, 10), report(3, 500), report(4, 50)];
        let ranked = rank_helpers(&helpers, 2);
        let ids: Vec<u64> = ranked.iter().map(|r| r.service.0).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn rank_helpers_preserves_input_order_for_ties() {
        // Equal-weight helpers must rank in input order (the historical
        // stable sort's behavior), including across the truncation cut.
        let helpers = [
            report(9, 50),
            report(3, 50),
            report(7, 100),
            report(5, 50),
            report(1, 50),
            report(8, 100),
        ];
        // Reference: stable sort + truncate.
        let reference = |cap: usize| {
            let mut ordered: Vec<&CapacityReport> =
                helpers.iter().filter(|r| r.headroom_weight() > 0).collect();
            ordered.sort_by_key(|r| std::cmp::Reverse(r.headroom_weight()));
            ordered.truncate(cap);
            ordered.iter().map(|r| r.service.0).collect::<Vec<u64>>()
        };
        for cap in 0..=helpers.len() + 1 {
            let ids: Vec<u64> = rank_helpers(&helpers, cap).iter().map(|r| r.service.0).collect();
            assert_eq!(ids, reference(cap), "cap {cap}");
        }
        // The tie-break is input position, not service id: 9 before 3.
        let full: Vec<u64> = rank_helpers(&helpers, 6).iter().map(|r| r.service.0).collect();
        assert_eq!(full, vec![7, 8, 9, 3, 5, 1]);
    }

    #[test]
    fn ledger_incremental_resift_matches_full_resort() {
        // Drive two ledgers through the same debit sequence: one via the
        // production `fit` (incremental resift), one re-sorted from
        // scratch after every debit. Slot order must stay identical,
        // including ties (equal keys keep the debited slot first, exactly
        // as a stable full sort does).
        let reports: Vec<CapacityReport> = [(1u64, 100u64), (2, 100), (3, 80), (4, 100), (5, 60)]
            .iter()
            .map(|&(id, p)| report(id, p))
            .collect();
        let mut fast = Ledger::from_reports(&reports, true);
        let mut slow: Vec<(u64, u64)> =
            reports.iter().map(|r| (r.service.0, r.poly_headroom)).collect();
        slow.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let costs = [40u64, 40, 5, 100, 20, 30, 1, 1, 60];
        for &c in &costs {
            let cost = polys(c);
            let picked = fast.fit(&cost).map(|s| s.0);
            let idx = slow.iter().position(|&(_, p)| c <= p);
            let expect = idx.map(|i| {
                slow[i].1 -= c;
                let svc = slow[i].0;
                slow.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                svc
            });
            assert_eq!(picked, expect, "cost {c}");
            let fast_order: Vec<(u64, u64)> =
                fast.slots.iter().map(|s| (s.service.0, s.room.polygons)).collect();
            assert_eq!(fast_order, slow, "slot order diverged after cost {c}");
        }
    }

    #[test]
    fn ledger_push_resorts_on_next_fit() {
        // A recruit appended via `push` lands at the tail; the next
        // successful fit must scan in that order (sorted prefix, then the
        // tail) and then restore full sorted order — the historical
        // behavior of re-sorting after every debit.
        let mut ledger = Ledger::from_reports(&[report(1, 50), report(2, 40)], true);
        ledger.push(RenderServiceId(3), Headroom { polygons: 100, texture_bytes: 1 << 40 });
        // 60 only fits the recruit even though it sits after smaller slots.
        assert_eq!(ledger.fit(&polys(60)), Some(RenderServiceId(3)));
        // The post-fit sort put the recruit's remaining 40 among the rest:
        // order is (1,50), (2,40), (3,40) — service id breaks the tie.
        let order: Vec<(u64, u64)> =
            ledger.slots.iter().map(|s| (s.service.0, s.room.polygons)).collect();
        assert_eq!(order, vec![(1, 50), (2, 40), (3, 40)]);
        // Subsequent fits use the incremental path again.
        assert_eq!(ledger.fit(&polys(45)), Some(RenderServiceId(1)));
        let order: Vec<(u64, u64)> =
            ledger.slots.iter().map(|s| (s.service.0, s.room.polygons)).collect();
        assert_eq!(order, vec![(2, 40), (3, 40), (1, 5)]);
    }
}
