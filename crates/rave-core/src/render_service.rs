//! The render service (§3.1.2).
//!
//! Holds a local scene replica, renders on- or off-screen for any number
//! of sessions, advertises its capacity, and tracks its own load. "If
//! multiple users view the same session, then a single copy of the data
//! are stored in the render service to save resources" — sessions share
//! `scene`.

use crate::capacity::CapacityReport;
use crate::config::RaveConfig;
use crate::ids::{ClientId, RenderServiceId};
use rave_math::Viewport;
use rave_render::{Framebuffer, MachineProfile, OffscreenMode, RenderCost, Renderer};
use rave_scene::{CameraParams, InterestSet, NodeCost, SceneTree};
use rave_sim::{Occupancy, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// One client's rendering session on a render service.
#[derive(Debug, Clone)]
pub struct RenderSession {
    pub client: ClientId,
    pub viewport: Viewport,
    pub camera: CameraParams,
    pub mode: OffscreenMode,
    pub frames_rendered: u64,
    /// Last rendered image, kept for delta compression and stale-tile
    /// reuse.
    pub last_frame: Option<Framebuffer>,
}

/// A render service instance.
#[derive(Debug, Clone)]
pub struct RenderService {
    pub id: RenderServiceId,
    pub host: String,
    pub machine: MachineProfile,
    /// Local replica of (the subscribed subset of) the session scene.
    pub scene: SceneTree,
    pub interest: InterestSet,
    pub sessions: BTreeMap<ClientId, RenderSession>,
    pub renderer: Renderer,
    /// Frame completion times for the rolling fps window.
    frame_times: VecDeque<SimTime>,
    /// Set when the replica is still bootstrapping (scene not yet live).
    pub bootstrapping: bool,
    /// Whether this instance can render off-screen. An *active render
    /// client* (§3.1.2) "can only render to the screen and does not
    /// support off-screen rendering" because it has no service container.
    pub offscreen_capable: bool,
    /// The render hardware's occupancy timeline: one off-screen frame at
    /// a time, queued back-to-back. Pipelined streams queue the render of
    /// frame N+1 behind frame N here while N's encode/transmit proceeds
    /// on other resources.
    pub gpu: Occupancy,
    /// The frame-encoder CPU's occupancy timeline (distinct from the
    /// GPU, so encoding frame N never blocks rendering N+1).
    pub encoder: Occupancy,
}

impl RenderService {
    pub fn new(id: RenderServiceId, host: &str, machine: MachineProfile) -> Self {
        Self {
            id,
            host: host.into(),
            machine,
            scene: SceneTree::new(),
            interest: InterestSet::everything(),
            sessions: BTreeMap::new(),
            renderer: Renderer::default(),
            frame_times: VecDeque::new(),
            bootstrapping: false,
            offscreen_capable: true,
            gpu: Occupancy::new(),
            encoder: Occupancy::new(),
        }
    }

    /// An active render client: same engine, no off-screen service.
    pub fn active_client(id: RenderServiceId, host: &str, machine: MachineProfile) -> Self {
        Self { offscreen_capable: false, ..Self::new(id, host, machine) }
    }

    pub fn open_session(
        &mut self,
        client: ClientId,
        viewport: Viewport,
        camera: CameraParams,
        mode: OffscreenMode,
    ) {
        self.sessions.insert(
            client,
            RenderSession { client, viewport, camera, mode, frames_rendered: 0, last_frame: None },
        );
    }

    pub fn close_session(&mut self, client: ClientId) -> bool {
        self.sessions.remove(&client).is_some()
    }

    /// Cost of the content this service currently holds.
    pub fn assigned_cost(&self) -> NodeCost {
        self.scene.total_cost()
    }

    /// The cost model's render time for one off-screen frame of the
    /// current scene at `client`'s session settings. The polygon count
    /// charged is the *replica's* content (what the service must process);
    /// frustum culling savings are deliberately not credited, matching the
    /// paper's worst-case framing ("views were arranged to have the
    /// maximum possible number of visible polygons").
    pub fn offscreen_render_cost(&self, client: ClientId) -> Option<RenderCost> {
        if !self.offscreen_capable {
            return None;
        }
        let session = self.sessions.get(&client)?;
        let cost = self.assigned_cost();
        Some(self.machine.offscreen_cost(
            cost.polygons,
            session.viewport.pixel_count() as u64,
            session.mode,
        ))
    }

    /// On-screen render time for a local console session.
    pub fn onscreen_render_cost(&self, client: ClientId) -> Option<RenderCost> {
        let session = self.sessions.get(&client)?;
        let cost = self.assigned_cost();
        Some(self.machine.onscreen_cost(cost.polygons, session.viewport.pixel_count() as u64))
    }

    /// Actually rasterize a session's frame (figure generation). Separate
    /// from the cost model so timing experiments can skip pixel work.
    pub fn rasterize(&mut self, client: ClientId) -> Option<Framebuffer> {
        let session = self.sessions.get(&client)?;
        let mut fb = Framebuffer::new(session.viewport.width, session.viewport.height);
        self.renderer.render(&self.scene, &session.camera, &mut fb);
        let result = fb.clone();
        self.sessions.get_mut(&client).expect("session exists").last_frame = Some(fb);
        Some(result)
    }

    /// Rasterize one tile of a session's image (framebuffer
    /// distribution).
    pub fn rasterize_tile(
        &self,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
    ) -> Framebuffer {
        self.rasterize_tile_with_stats(camera, full_viewport, tile).0
    }

    /// Like [`RenderService::rasterize_tile`] but also returns the render
    /// statistics, whose [`rave_render::raster::RasterStats::cost_units`] is the
    /// measured-cost signal for feedback tile planning.
    pub fn rasterize_tile_with_stats(
        &self,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
    ) -> (Framebuffer, rave_render::RenderStats) {
        let mut fb = Framebuffer::new(tile.width, tile.height);
        let stats = self.renderer.render_tile(&self.scene, camera, full_viewport, tile, &mut fb);
        (fb, stats)
    }

    /// Queue one off-screen render on the GPU timeline: it starts no
    /// earlier than `ready` (the frame's request arrival) and no earlier
    /// than the previous queued render's completion. Returns the render's
    /// `(start, done)` window.
    pub fn queue_render(&mut self, ready: SimTime, render_secs: f64) -> (SimTime, SimTime) {
        self.gpu.acquire(ready, render_secs)
    }

    /// Record a frame completion for load tracking.
    pub fn record_frame(&mut self, at: SimTime, window: usize) {
        if let Some(session) = self.sessions.values_mut().next() {
            session.frames_rendered += 1;
        }
        self.frame_times.push_back(at);
        while self.frame_times.len() > window {
            self.frame_times.pop_front();
        }
    }

    /// Rolling fps over the recorded window.
    pub fn rolling_fps(&self) -> Option<f64> {
        if self.frame_times.len() < 2 {
            return None;
        }
        let span =
            (*self.frame_times.back().unwrap() - *self.frame_times.front().unwrap()).as_secs();
        if span <= 0.0 {
            return None;
        }
        Some((self.frame_times.len() - 1) as f64 / span)
    }

    /// Answer a capacity interrogation (§3.2.5).
    pub fn capacity_report(&self, config: &RaveConfig) -> CapacityReport {
        let assigned = self.assigned_cost();
        // Pixel budget assumes the largest open session (or a default
        // 400x400 when idle).
        let pixels = self
            .sessions
            .values()
            .map(|s| s.viewport.pixel_count() as u64)
            .max()
            .unwrap_or(160_000);
        let per_frame_budget = self.machine.poly_budget_at_fps(config.target_fps, pixels);
        let fillable = (per_frame_budget as f64 * config.fill_factor) as u64;
        CapacityReport {
            service: self.id,
            host: self.host.clone(),
            polys_per_sec: self.machine.poly_rate,
            poly_headroom: fillable.saturating_sub(assigned.polygons),
            texture_headroom: self.machine.texture_memory.saturating_sub(assigned.texture_bytes),
            volume_hw: self.machine.volume_hw,
            assigned,
            rolling_fps: self.rolling_fps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeKind};
    use std::sync::Arc;

    fn service_with_polys(n: u64) -> RenderService {
        let mut rs =
            RenderService::new(RenderServiceId(1), "laptop", MachineProfile::centrino_laptop());
        let mesh = MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; n as usize],
            texture_bytes: 0,
        };
        rs.scene.add_node(rs.scene.root(), "content", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        rs
    }

    #[test]
    fn sessions_share_one_scene_copy() {
        let mut rs = service_with_polys(100);
        rs.open_session(
            ClientId(1),
            Viewport::new(200, 200),
            CameraParams::default(),
            OffscreenMode::Sequential,
        );
        rs.open_session(
            ClientId(2),
            Viewport::new(100, 100),
            CameraParams::default(),
            OffscreenMode::Sequential,
        );
        assert_eq!(rs.sessions.len(), 2);
        // One scene; cost counted once.
        assert_eq!(rs.assigned_cost().polygons, 100);
    }

    #[test]
    fn active_client_refuses_offscreen() {
        let mut rs = RenderService::active_client(
            RenderServiceId(2),
            "desktop",
            MachineProfile::athlon_desktop(),
        );
        rs.open_session(
            ClientId(1),
            Viewport::new(200, 200),
            CameraParams::default(),
            OffscreenMode::Sequential,
        );
        assert!(rs.offscreen_render_cost(ClientId(1)).is_none());
        assert!(rs.onscreen_render_cost(ClientId(1)).is_some());
    }

    #[test]
    fn render_cost_scales_with_scene() {
        let mut small = service_with_polys(1_000);
        let mut big = service_with_polys(1_000_000);
        for rs in [&mut small, &mut big] {
            rs.open_session(
                ClientId(1),
                Viewport::new(200, 200),
                CameraParams::default(),
                OffscreenMode::Sequential,
            );
        }
        let ts = small.offscreen_render_cost(ClientId(1)).unwrap().total();
        let tb = big.offscreen_render_cost(ClientId(1)).unwrap().total();
        assert!(tb > ts * 5.0);
    }

    #[test]
    fn rolling_fps_reflects_frame_times() {
        let mut rs = service_with_polys(10);
        rs.open_session(
            ClientId(1),
            Viewport::new(64, 64),
            CameraParams::default(),
            OffscreenMode::Sequential,
        );
        for i in 0..10 {
            rs.record_frame(SimTime::from_secs(i as f64 * 0.1), 10);
        }
        let fps = rs.rolling_fps().unwrap();
        assert!((fps - 10.0).abs() < 0.5, "fps {fps}");
    }

    #[test]
    fn fps_window_slides() {
        let mut rs = service_with_polys(10);
        // Slow frames then fast frames: window forgets the slow past.
        for i in 0..5 {
            rs.record_frame(SimTime::from_secs(i as f64), 5);
        }
        for i in 0..5 {
            rs.record_frame(SimTime::from_secs(5.0 + i as f64 * 0.01), 5);
        }
        assert!(rs.rolling_fps().unwrap() > 50.0);
    }

    #[test]
    fn capacity_shrinks_with_assignment() {
        let empty = service_with_polys(0);
        let loaded = service_with_polys(300_000);
        let cfg = RaveConfig::default();
        let h0 = empty.capacity_report(&cfg).poly_headroom;
        let h1 = loaded.capacity_report(&cfg).poly_headroom;
        assert!(h0 > h1);
        assert_eq!(h0 - h1, 300_000);
    }

    #[test]
    fn rasterize_produces_image_and_caches_last_frame() {
        let mut rs = service_with_polys(1);
        rs.open_session(
            ClientId(1),
            Viewport::new(32, 32),
            CameraParams::look_at(Vec3::new(0.3, 0.3, 3.0), Vec3::new(0.3, 0.3, 0.0), Vec3::Y),
            OffscreenMode::Sequential,
        );
        let fb = rs.rasterize(ClientId(1)).unwrap();
        assert!(fb.coverage(rs.renderer.background) > 0);
        assert!(rs.sessions[&ClientId(1)].last_frame.is_some());
    }

    #[test]
    fn queue_render_runs_back_to_back() {
        let mut rs = service_with_polys(10);
        let (s1, d1) = rs.queue_render(SimTime::from_secs(1.0), 0.5);
        assert_eq!(s1, SimTime::from_secs(1.0));
        assert_eq!(d1, SimTime::from_secs(1.5));
        // Second frame ready while the first still renders: queues.
        let (s2, d2) = rs.queue_render(SimTime::from_secs(1.2), 0.5);
        assert_eq!(s2, d1);
        assert_eq!(d2, SimTime::from_secs(2.0));
        assert_eq!(rs.gpu.jobs(), 2);
        assert!((rs.gpu.busy_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn close_session() {
        let mut rs = service_with_polys(1);
        rs.open_session(
            ClientId(1),
            Viewport::new(8, 8),
            CameraParams::default(),
            OffscreenMode::Sequential,
        );
        assert!(rs.close_session(ClientId(1)));
        assert!(!rs.close_session(ClientId(1)));
    }
}
