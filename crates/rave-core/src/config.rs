//! Tunable system parameters.

use rave_sim::SimTime;

/// How render services ship frames to thin clients and tile owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionMode {
    /// Uncompressed 24 bpp — the paper's measured baseline (Table 2).
    #[default]
    Raw,
    /// Adaptive codec selection + dirty-strip reuse through
    /// `rave_compress::stream` (the §6 future-work item, built out).
    Adaptive,
}

/// Global RAVE configuration: the thresholds and knobs §3.2.7 describes
/// qualitatively, made explicit.
#[derive(Debug, Clone)]
pub struct RaveConfig {
    /// A render service whose rolling frame rate drops below this reports
    /// itself overloaded to the data service.
    pub overload_fps: f64,
    /// A render service sustaining more than this is a migration target
    /// (has spare capacity).
    pub underload_fps: f64,
    /// How long under-load must persist before the data service reacts —
    /// "for a given amount of time, to smooth out spikes of usage".
    pub underload_debounce: SimTime,
    /// Frames in the rolling fps window.
    pub fps_window: usize,
    /// Target interactive rate used when interrogating capacity
    /// ("available polygons per second ... and still maintain its current
    /// interactive frame rate").
    pub target_fps: f64,
    /// Headroom factor the planner leaves on each service (1.0 = fill to
    /// capacity; 0.8 = leave 20%).
    pub fill_factor: f64,
    /// Whether render services actually rasterize pixels (figure
    /// generation) or only charge the cost model (timing runs with
    /// multi-million-polygon scenes).
    pub produce_images: bool,
    /// Introspection marshalling rates for scene bootstrap (§5.5): the
    /// Java-reflection path, seconds per field visit and per byte.
    pub introspect_per_field: f64,
    pub introspect_per_byte: f64,
    /// Direct marshalling per byte (the ablation comparator).
    pub direct_per_byte: f64,
    /// Updates between durable snapshot checkpoints when a session store
    /// is attached (§3.1.1's "intermittently streamed to disk" cadence).
    pub checkpoint_every: u64,
    /// Frame transport for thin-client streams and helper tile returns.
    pub frame_compression: CompressionMode,
    /// Re-probe (trial-encode all codecs) every N frames in adaptive
    /// mode; between probes the selector estimates from EWMA ratios.
    pub codec_reprobe_every: u64,
    /// EWMA weight of the newest measured compression ratio, in (0, 1].
    pub codec_ewma_alpha: f64,
    /// Permit lossy (RGB565) codecs on thin-client frame streams. Tile
    /// returns are always lossless regardless (they are stitched into a
    /// composite that must match the monolithic render).
    pub allow_lossy_frames: bool,
    /// Target bytes per strip in the dirty-strip frame container.
    pub frame_strip_bytes: usize,
    /// Maximum frames in flight (requested but not yet displayed) on a
    /// thin-client stream. Depth 1 is the paper's strictly serial cycle
    /// (request → render → transfer → display, one at a time) and
    /// reproduces the Table-2 timings bit-identically; depth ≥ 2 overlaps
    /// the render of frame N+1 with the encode/transmit of frame N and
    /// the decode/import of frame N−1, hiding every latency except the
    /// bottleneck stage's.
    pub pipeline_depth: usize,
    /// EWMA weight of the newest measured throughput observation in the
    /// scheduler's [`crate::sched::ThroughputTracker`], in (0, 1].
    pub sched_ewma_alpha: f64,
    /// `CostDrift` trigger: a service whose measured throughput falls
    /// below this fraction of its advertised rate gets re-planned before
    /// the overload fps threshold ever trips.
    pub sched_drift_ratio: f64,
    /// Emit a `TraceKind::SchedDecision` record (candidates, scores,
    /// choice) for every migration/failure placement decision.
    pub sched_decision_trace: bool,
    /// Bounded staleness for the incremental replanner: defer a replan
    /// while the accumulated dirty render weight stays at or below this
    /// fraction of the total planned weight (0.0 = replan on any dirt).
    /// Deferred dirt coalesces; a forced full replay is the escape hatch.
    pub sched_max_staleness: f64,
    /// Cadence of the log-shipping replication driver: how often the
    /// primary plans and sends WAL frames to its warm standby.
    pub ship_interval: SimTime,
    /// Maximum unacknowledged frames in flight per replica link; a tick
    /// plans at most `ack_window − in_flight` new frames.
    pub ship_ack_window: usize,
    /// Replication lag bound, in committed updates: the newest entries of
    /// the primary's *unsealed* segment may stay unshipped up to this
    /// count (0 = ship every entry immediately). Sealed segments always
    /// ship whole.
    pub ship_max_lag: u64,
    /// Record a `TraceKind::UpdateDelivered` event per applied update per
    /// replica. On by default (tests and experiment logs read them);
    /// scale runs with 10k subscribers turn it off — one presence update
    /// would otherwise allocate 10k trace strings.
    pub update_delivery_trace: bool,
    /// Maximum live `(render service, client)` frame-stream channels held
    /// in the world's `FrameCache`; past it the least-recently-used
    /// stream is evicted (it restarts from a keyframe on its next frame)
    /// and a `TraceKind::FrameCacheEvict` event is recorded. 0 =
    /// unbounded, the pre-10k-session behaviour.
    pub frame_cache_budget: usize,
}

impl Default for RaveConfig {
    fn default() -> Self {
        Self {
            overload_fps: 10.0,
            underload_fps: 40.0,
            underload_debounce: SimTime::from_secs(5.0),
            fps_window: 10,
            target_fps: 15.0,
            fill_factor: 0.85,
            produce_images: false,
            // Calibrated against Table 5: a 20 MB model bootstraps in
            // ≈68 s, of which ≈58 s is marshalling (the rest is instance
            // creation + wire time) ⇒ ≈2.3 µs/byte through the
            // introspective path.
            introspect_per_field: 4.0e-6,
            introspect_per_byte: 2.3e-6,
            // Direct serialization: bulk memcpy-ish, ~50 ns/byte.
            direct_per_byte: 50.0e-9,
            checkpoint_every: 256,
            frame_compression: CompressionMode::Raw,
            codec_reprobe_every: 30,
            codec_ewma_alpha: 0.3,
            allow_lossy_frames: true,
            frame_strip_bytes: 16 * 1024,
            pipeline_depth: 1,
            sched_ewma_alpha: 0.3,
            sched_drift_ratio: 0.5,
            sched_decision_trace: true,
            sched_max_staleness: 0.0,
            ship_interval: SimTime::from_millis(250.0),
            ship_ack_window: 4,
            ship_max_lag: 64,
            update_delivery_trace: true,
            frame_cache_budget: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_ordered() {
        let c = RaveConfig::default();
        assert!(c.overload_fps < c.underload_fps);
        assert!(c.fill_factor > 0.0 && c.fill_factor <= 1.0);
        assert!(c.introspect_per_byte > c.direct_per_byte * 10.0);
    }

    #[test]
    fn default_frame_transport_is_the_paper_baseline() {
        let c = RaveConfig::default();
        assert_eq!(c.frame_compression, CompressionMode::Raw);
        assert!(c.codec_ewma_alpha > 0.0 && c.codec_ewma_alpha <= 1.0);
        assert!(c.frame_strip_bytes > 0);
        assert_eq!(c.pipeline_depth, 1, "serial frame cycle keeps Table-2 calibration");
    }

    #[test]
    fn default_sched_knobs_sane() {
        let c = RaveConfig::default();
        assert!(c.sched_ewma_alpha > 0.0 && c.sched_ewma_alpha <= 1.0);
        assert!(c.sched_drift_ratio > 0.0 && c.sched_drift_ratio < 1.0);
        assert!(c.sched_decision_trace, "decision audit on by default");
        assert!(
            c.sched_max_staleness == 0.0,
            "incremental replans are immediate unless opted into staleness"
        );
    }

    #[test]
    fn default_collab_knobs_sane() {
        let c = RaveConfig::default();
        assert!(c.update_delivery_trace, "delivery audit on by default");
        assert_eq!(c.frame_cache_budget, 0, "frame cache unbounded unless opted in");
    }

    #[test]
    fn default_ship_knobs_sane() {
        let c = RaveConfig::default();
        assert!(c.ship_interval > SimTime::ZERO);
        assert!(c.ship_ack_window >= 1, "at least one frame in flight");
        assert!(c.ship_max_lag < c.checkpoint_every, "lag bound inside a checkpoint window");
    }
}
