//! Tunable system parameters.

use rave_sim::SimTime;

/// Global RAVE configuration: the thresholds and knobs §3.2.7 describes
/// qualitatively, made explicit.
#[derive(Debug, Clone)]
pub struct RaveConfig {
    /// A render service whose rolling frame rate drops below this reports
    /// itself overloaded to the data service.
    pub overload_fps: f64,
    /// A render service sustaining more than this is a migration target
    /// (has spare capacity).
    pub underload_fps: f64,
    /// How long under-load must persist before the data service reacts —
    /// "for a given amount of time, to smooth out spikes of usage".
    pub underload_debounce: SimTime,
    /// Frames in the rolling fps window.
    pub fps_window: usize,
    /// Target interactive rate used when interrogating capacity
    /// ("available polygons per second ... and still maintain its current
    /// interactive frame rate").
    pub target_fps: f64,
    /// Headroom factor the planner leaves on each service (1.0 = fill to
    /// capacity; 0.8 = leave 20%).
    pub fill_factor: f64,
    /// Whether render services actually rasterize pixels (figure
    /// generation) or only charge the cost model (timing runs with
    /// multi-million-polygon scenes).
    pub produce_images: bool,
    /// Introspection marshalling rates for scene bootstrap (§5.5): the
    /// Java-reflection path, seconds per field visit and per byte.
    pub introspect_per_field: f64,
    pub introspect_per_byte: f64,
    /// Direct marshalling per byte (the ablation comparator).
    pub direct_per_byte: f64,
    /// Updates between durable snapshot checkpoints when a session store
    /// is attached (§3.1.1's "intermittently streamed to disk" cadence).
    pub checkpoint_every: u64,
}

impl Default for RaveConfig {
    fn default() -> Self {
        Self {
            overload_fps: 10.0,
            underload_fps: 40.0,
            underload_debounce: SimTime::from_secs(5.0),
            fps_window: 10,
            target_fps: 15.0,
            fill_factor: 0.85,
            produce_images: false,
            // Calibrated against Table 5: a 20 MB model bootstraps in
            // ≈68 s, of which ≈58 s is marshalling (the rest is instance
            // creation + wire time) ⇒ ≈2.3 µs/byte through the
            // introspective path.
            introspect_per_field: 4.0e-6,
            introspect_per_byte: 2.3e-6,
            // Direct serialization: bulk memcpy-ish, ~50 ns/byte.
            direct_per_byte: 50.0e-9,
            checkpoint_every: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_ordered() {
        let c = RaveConfig::default();
        assert!(c.overload_fps < c.underload_fps);
        assert!(c.fill_factor > 0.0 && c.fill_factor <= 1.0);
        assert!(c.introspect_per_byte > c.direct_per_byte * 10.0);
    }
}
