//! Remote-bridge interactions / computational steering (§5.2).
//!
//! "We will later create additional interactions for special objects,
//! such as bridging objects into remote processes. An example would be to
//! exert a force on a molecule, which is displayed via RAVE but the
//! molecule's behaviour is computed remotely via a third-party simulator;
//! RAVE is used as the display and collaboration mechanism."
//!
//! This module implements that example end-to-end: a [`MoleculeSimulator`]
//! (the stand-in third-party code — a mass-spring dynamics integrator)
//! runs "on" a compute host; scene nodes are bridged to its atoms; user
//! forces travel to the simulator, integration steps run on the virtual
//! clock, and atom motion comes back as ordinary scene updates that every
//! collaborator sees.

use crate::ids::DataServiceId;
use crate::trace::TraceKind;
use crate::world::{publish_update, RaveSim};
use rave_math::Vec3;
use rave_scene::{NodeId, SceneUpdate, Transform};
use rave_sim::SimTime;
use std::collections::BTreeMap;

/// A point mass in the simulated molecule.
#[derive(Debug, Clone)]
pub struct Atom {
    pub position: Vec3,
    pub velocity: Vec3,
    pub mass: f32,
    /// Pending user force, applied during the next step then cleared.
    pub external_force: Vec3,
}

/// A spring bond between two atoms.
#[derive(Debug, Clone, Copy)]
pub struct Bond {
    pub a: usize,
    pub b: usize,
    pub rest_length: f32,
    pub stiffness: f32,
}

/// The "third-party simulator": mass-spring molecular dynamics with
/// velocity damping, integrated by semi-implicit Euler. Deterministic.
#[derive(Debug, Clone)]
pub struct MoleculeSimulator {
    pub atoms: Vec<Atom>,
    pub bonds: Vec<Bond>,
    pub damping: f32,
    /// Integration substep.
    pub dt: f32,
    /// Wall-clock cost per (atom × substep) charged to the compute host.
    pub cost_per_atom_step: f64,
}

impl MoleculeSimulator {
    /// A small chain molecule: `n` atoms in a line, springs between
    /// neighbours.
    pub fn chain(n: usize, spacing: f32) -> Self {
        assert!(n >= 2);
        let atoms = (0..n)
            .map(|i| Atom {
                position: Vec3::new(i as f32 * spacing, 0.0, 0.0),
                velocity: Vec3::ZERO,
                mass: 1.0,
                external_force: Vec3::ZERO,
            })
            .collect();
        let bonds = (0..n - 1)
            .map(|i| Bond { a: i, b: i + 1, rest_length: spacing, stiffness: 60.0 })
            .collect();
        Self { atoms, bonds, damping: 2.0, dt: 1.0 / 120.0, cost_per_atom_step: 2.0e-6 }
    }

    /// Advance by `steps` substeps; returns the charged compute time.
    pub fn step(&mut self, steps: u32) -> SimTime {
        for _ in 0..steps {
            let mut forces = vec![Vec3::ZERO; self.atoms.len()];
            for bond in &self.bonds {
                let pa = self.atoms[bond.a].position;
                let pb = self.atoms[bond.b].position;
                let delta = pb - pa;
                let len = delta.length().max(1e-6);
                let f = delta * ((len - bond.rest_length) * bond.stiffness / len);
                forces[bond.a] += f;
                forces[bond.b] -= f;
            }
            for (atom, spring) in self.atoms.iter_mut().zip(&forces) {
                let total = *spring + atom.external_force - atom.velocity * self.damping;
                atom.velocity += total * (self.dt / atom.mass);
                atom.position += atom.velocity * self.dt;
                atom.external_force = Vec3::ZERO;
            }
        }
        SimTime::from_secs(self.atoms.len() as f64 * steps as f64 * self.cost_per_atom_step)
    }

    /// Total spring + kinetic energy (stability diagnostics for tests).
    pub fn energy(&self) -> f32 {
        let kinetic: f32 = self.atoms.iter().map(|a| 0.5 * a.mass * a.velocity.length_sq()).sum();
        let spring: f32 = self
            .bonds
            .iter()
            .map(|b| {
                let len = (self.atoms[b.b].position - self.atoms[b.a].position).length();
                0.5 * b.stiffness * (len - b.rest_length).powi(2)
            })
            .sum();
        kinetic + spring
    }
}

/// The bridge between a RAVE session and a simulator instance.
#[derive(Debug)]
pub struct SteeringBridge {
    pub data_service: DataServiceId,
    /// Host the simulator runs on (forces/positions cross this link).
    pub compute_host: String,
    pub simulator: MoleculeSimulator,
    /// atom index → bridged scene node.
    pub bindings: BTreeMap<usize, NodeId>,
}

impl SteeringBridge {
    /// Create the bridge and publish one scene node per atom (small
    /// spheres would be typical; the nodes are groups whose transform is
    /// the atom position — content is presentation-side).
    pub fn new(
        sim: &mut RaveSim,
        ds_id: DataServiceId,
        compute_host: &str,
        simulator: MoleculeSimulator,
    ) -> Self {
        let mut bindings = BTreeMap::new();
        for (i, atom) in simulator.atoms.iter().enumerate() {
            let (id, root) = {
                let ds = sim.world.data_mut(ds_id);
                (ds.scene.allocate_id(), ds.scene.root())
            };
            publish_update(
                sim,
                ds_id,
                "simulator",
                SceneUpdate::AddNode {
                    id,
                    parent: root,
                    name: format!("atom-{i}"),
                    kind: rave_scene::NodeKind::Group,
                },
            )
            .expect("atom node");
            publish_update(
                sim,
                ds_id,
                "simulator",
                SceneUpdate::SetTransform {
                    id,
                    transform: Transform::from_translation(atom.position),
                },
            )
            .expect("atom pose");
            bindings.insert(i, id);
        }
        let now = sim.now();
        sim.world.trace.record(
            now,
            TraceKind::Collaboration,
            format!("steering bridge to {compute_host}: {} atoms", bindings.len()),
        );
        Self { data_service: ds_id, compute_host: compute_host.into(), simulator, bindings }
    }

    /// A user drags a bridged atom: the force crosses the wire to the
    /// simulator ("exert a force on a molecule").
    pub fn apply_force(&mut self, sim: &mut RaveSim, atom: usize, force: Vec3, user_host: &str) {
        let now = sim.now();
        let _arrival = sim.world.send_bytes(now, user_host, &self.compute_host, 64);
        if let Some(a) = self.simulator.atoms.get_mut(atom) {
            a.external_force += force;
        }
    }

    /// Run one coupled step: integrate, then publish the new atom poses
    /// through the normal update protocol (compute time + per-update wire
    /// time are charged; collaborators see the molecule move).
    pub fn step_and_publish(&mut self, sim: &mut RaveSim, substeps: u32) {
        let compute = self.simulator.step(substeps);
        // Advance the clock by the compute time before publishing.
        let target = sim.now() + compute;
        sim.schedule_at(target, |_| {});
        sim.run_until(target);
        for (i, node) in &self.bindings {
            let pos = self.simulator.atoms[*i].position;
            publish_update(
                sim,
                self.data_service,
                "simulator",
                SceneUpdate::SetTransform {
                    id: *node,
                    transform: Transform::from_translation(pos),
                },
            )
            .expect("atom update");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_scene::InterestSet;
    use rave_sim::Simulation;

    fn steering_world() -> (RaveSim, DataServiceId, crate::ids::RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 88));
        let ds = sim.world.spawn_data_service("adrenochrome", "molecule");
        let rs = sim.world.spawn_render_service("laptop");
        sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        (sim, ds, rs)
    }

    #[test]
    fn simulator_relaxes_to_rest() {
        let mut m = MoleculeSimulator::chain(5, 1.0);
        // Stretch the chain.
        m.atoms[4].position.x += 0.8;
        let e0 = m.energy();
        m.step(2000);
        assert!(m.energy() < e0 * 0.01, "damped system relaxes: {} -> {}", e0, m.energy());
        // Rest lengths restored.
        for b in &m.bonds {
            let len = (m.atoms[b.b].position - m.atoms[b.a].position).length();
            assert!((len - b.rest_length).abs() < 0.05, "bond length {len}");
        }
    }

    #[test]
    fn force_moves_the_molecule() {
        let mut m = MoleculeSimulator::chain(3, 1.0);
        // Sustained pull (the user holds the drag): reapply each step —
        // external_force clears after every substep by design.
        for _ in 0..60 {
            m.atoms[0].external_force = Vec3::new(0.0, 50.0, 0.0);
            m.step(1);
        }
        assert!(m.atoms[0].position.y > 0.05, "pulled atom moves: {:?}", m.atoms[0].position);
        m.step(120);
        assert!(
            m.atoms[2].position.y.abs() > 1e-4,
            "force propagates along bonds: {:?}",
            m.atoms[2].position
        );
    }

    #[test]
    fn bridge_publishes_atoms_and_motion_reaches_replicas() {
        let (mut sim, ds, rs) = steering_world();
        let mut bridge =
            SteeringBridge::new(&mut sim, ds, "tower", MoleculeSimulator::chain(4, 1.0));
        sim.run();
        // Atoms exist on the replica.
        for node in bridge.bindings.values() {
            assert!(sim.world.render(rs).scene.contains(*node));
        }
        // User on the laptop yanks atom 0 upward; steps propagate.
        bridge.apply_force(&mut sim, 0, Vec3::new(0.0, 400.0, 0.0), "laptop");
        for _ in 0..5 {
            bridge.step_and_publish(&mut sim, 12);
        }
        sim.run();
        let node0 = bridge.bindings[&0];
        let replica_pos = sim.world.render(rs).scene.node(node0).unwrap().transform().translation;
        assert!(replica_pos.y > 0.01, "replica sees the steered motion: {replica_pos:?}");
        assert_eq!(replica_pos, bridge.simulator.atoms[0].position);
    }

    #[test]
    fn steering_charges_compute_time() {
        let (mut sim, ds, _) = steering_world();
        let mut bridge =
            SteeringBridge::new(&mut sim, ds, "tower", MoleculeSimulator::chain(10, 1.0));
        sim.run();
        let before = sim.now();
        bridge.step_and_publish(&mut sim, 120);
        let after = sim.now();
        // 10 atoms × 120 steps × 2 µs = 2.4 ms minimum.
        assert!((after - before).as_secs() >= 2.3e-3);
    }

    #[test]
    fn session_replay_includes_steered_motion() {
        // Asynchronous collaboration over a steering session: the audit
        // trail replays the molecule's trajectory.
        let (mut sim, ds, _) = steering_world();
        let mut bridge =
            SteeringBridge::new(&mut sim, ds, "tower", MoleculeSimulator::chain(3, 1.0));
        sim.run();
        bridge.apply_force(&mut sim, 2, Vec3::new(0.0, 0.0, 300.0), "laptop");
        bridge.step_and_publish(&mut sim, 30);
        sim.run();
        let replayed = sim.world.data(ds).audit.replay_all().unwrap();
        let node2 = bridge.bindings[&2];
        assert_eq!(
            replayed.node(node2).unwrap().transform().translation,
            bridge.simulator.atoms[2].position
        );
    }
}
