//! RAVE — the Resource-Aware Visualization Environment (SC2004),
//! reproduced in Rust.
//!
//! This crate is the paper's contribution proper, assembled from the
//! substrate crates:
//!
//! | Paper concept (section) | Module |
//! |---|---|
//! | Data service (§3.1.1) | [`data_service`] |
//! | Render service (§3.1.2) | [`render_service`] |
//! | Thin client (§3.1.3) | [`thin_client`] |
//! | Capacity interrogation (§3.2.5) | [`capacity`] |
//! | Dataset distribution (§3.2.5) | [`distribution`] |
//! | Framebuffer/tile distribution (§3.2.5) | [`tiles`] |
//! | Unified workload scheduler (§3.2.5, §3.2.7) | [`sched`] |
//! | Workload migration (§3.2.7) | [`migration`] |
//! | Collaboration & avatars (§3.2.4, §5.2) | [`collaboration`] |
//! | GUI: pick/select/drag + interrogation menus (§5.2) | [`gui`] |
//! | Bootstrap with update overlap (§5.5) | [`bootstrap`] |
//! | Compressed frame streaming (§5.1, §6) | [`frame_stream`] |
//! | The assembled world (testbed, §4.4) | [`world`] |
//! | Distributed volume rendering (§6) | [`volume_dist`] |
//! | Computational steering / remote bridge (§5.2) | [`steering`] |
//! | Data-service mirroring & failover (§6) | [`mirror`] |
//! | WAL log shipping to a warm standby (§6) | [`replica`] |
//! | Durable session store & crash recovery (§3.1.1) | [`persist`] |
//!
//! Everything runs inside a `rave_sim::Simulation<RaveWorld>`: service
//! logic executes immediately (it is ordinary Rust), while *durations* —
//! network transfers, SOAP marshalling, rendering — are charged to the
//! virtual clock through the cost models of the substrate crates.

pub mod bootstrap;
pub mod capacity;
pub mod collaboration;
pub mod config;
pub mod data_service;
pub mod distribution;
pub mod frame_stream;
pub mod gui;
pub mod ids;
pub mod migration;
pub mod mirror;
pub mod persist;
pub mod render_service;
pub mod replica;
pub mod sched;
pub mod steering;
pub mod thin_client;
pub mod tiles;
pub mod trace;
pub mod volume_dist;
pub mod world;

pub use capacity::CapacityReport;
pub use config::RaveConfig;
pub use ids::{ClientId, DataServiceId, RenderServiceId};
pub use persist::{Persistence, StorePersistence};
pub use world::{RaveSim, RaveWorld};
