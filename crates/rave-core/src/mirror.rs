//! Data-service mirroring and failover (§6 future work, implemented).
//!
//! "Finally, we will consider the distribution of the data across several
//! data servers ... This will alleviate any bottleneck in our system, and
//! also support a fail-safe mechanism, where data servers could mirror
//! each other."
//!
//! A [`MirrorPair`] keeps a secondary data service synchronized by
//! shipping every committed update to it (the audit trail *is* the
//! replication log). On primary failure, subscribers are re-pointed at
//! the mirror, which owns the session from then on — no committed update
//! is lost, and sequence numbers continue where the primary stopped.

use crate::ids::{DataServiceId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_scene::StampedUpdate;
use rave_sim::SimTime;

/// A primary/mirror pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirrorPair {
    pub primary: DataServiceId,
    pub mirror: DataServiceId,
}

impl MirrorPair {
    /// Establish mirroring: the mirror receives the primary's audit
    /// trail past its own `last_seq` (charged as one bulk transfer) and
    /// commits it in order — a mirror that already holds a prefix (a
    /// re-established pairing, a restarted mirror) is topped up, not
    /// re-shipped the whole history. Subsequent updates must be
    /// forwarded with [`MirrorPair::replicate_pending`].
    pub fn establish(sim: &mut RaveSim, primary: DataServiceId, mirror: DataServiceId) -> Self {
        let now = sim.now();
        let m_last = sim.world.data(mirror).audit.last_seq();
        let (pending, bytes, p_host): (Vec<(f64, StampedUpdate)>, u64, String) = {
            let p = sim.world.data(primary);
            let pending: Vec<(f64, StampedUpdate)> = p
                .audit
                .entries()
                .iter()
                .filter(|e| e.stamped.seq > m_last)
                .map(|e| (e.at_secs, e.stamped.clone()))
                .collect();
            let bytes: u64 = pending.iter().map(|(_, s)| s.wire_size()).sum::<u64>() + 64;
            (pending, bytes, p.host.clone())
        };
        let m_host = sim.world.data(mirror).host.clone();
        let arrival = sim.world.send_bytes(now, &p_host, &m_host, bytes);
        sim.schedule_at(arrival, move |sim| {
            let at = sim.now();
            let n = pending.len();
            {
                let m = sim.world.data_mut(mirror);
                for (at_secs, stamped) in pending {
                    if stamped.seq > m.audit.last_seq() {
                        m.commit(at_secs, &stamped).expect("primary trail replays");
                    }
                }
            }
            sim.world.trace.record(
                at,
                TraceKind::Bootstrap,
                format!("{mirror} mirroring {primary} ({n} entries, resumed from seq {m_last})"),
            );
        });
        Self { primary, mirror }
    }

    /// Forward updates committed on the primary since the mirror's last
    /// known sequence number. Call after publishes (or on a timer); the
    /// mirror applies them in order at wire-arrival time.
    pub fn replicate_pending(&self, sim: &mut RaveSim) -> usize {
        let mirror = self.mirror;
        let (pending, p_host, m_host): (Vec<(f64, StampedUpdate)>, String, String) = {
            let last = sim.world.data(self.mirror).audit.last_seq();
            let p = sim.world.data(self.primary);
            (
                p.audit
                    .entries()
                    .iter()
                    .filter(|e| e.stamped.seq > last)
                    .map(|e| (e.at_secs, e.stamped.clone()))
                    .collect(),
                p.host.clone(),
                sim.world.data(self.mirror).host.clone(),
            )
        };
        let n = pending.len();
        for (at_secs, stamped) in pending {
            let now = sim.now();
            let arrival = sim.world.send_bytes(now, &p_host, &m_host, stamped.wire_size());
            sim.schedule_at(arrival, move |sim| {
                let m = sim.world.data_mut(mirror);
                // The replication log is authoritative; divergence here is
                // a bug, not a runtime condition.
                if stamped.seq > m.audit.last_seq() {
                    m.commit(at_secs, &stamped).expect("mirror applies primary log");
                }
            });
        }
        n
    }

    /// How many committed updates the mirror is behind.
    pub fn lag(&self, sim: &RaveSim) -> u64 {
        let p = sim.world.data(self.primary).audit.last_seq();
        let m = sim.world.data(self.mirror).audit.last_seq();
        p.saturating_sub(m)
    }

    /// Fail the primary over to the mirror: move every subscriber (with
    /// its interest set) onto the mirror, which continues the session.
    /// Returns the number of subscribers moved. The mirror serves from its
    /// replicated state — any un-replicated tail is lost, which the
    /// caller can bound by checking [`MirrorPair::lag`] first.
    pub fn failover(&self, sim: &mut RaveSim) -> usize {
        let now = sim.now();
        let subs: Vec<(RenderServiceId, rave_scene::InterestSet)> = {
            let p = sim.world.data_mut(self.primary);
            let subs = p.subscribers.iter().map(|(rs, sub)| (*rs, sub.interest.clone())).collect();
            p.subscribers.clear();
            subs
        };
        let moved = subs.len();
        {
            let m = sim.world.data_mut(self.mirror);
            for (rs, interest) in subs {
                m.subscribe_live(rs, interest);
            }
        }
        sim.world.trace.record(
            now,
            TraceKind::Recruitment,
            format!("failover: {} -> {} ({moved} subscribers)", self.primary, self.mirror),
        );
        moved
    }
}

/// Periodic replication driver: replicate every `interval` until the
/// horizon (a convenience for experiments).
pub fn run_replication(sim: &mut RaveSim, pair: MirrorPair, interval: SimTime, horizon: SimTime) {
    fn tick(sim: &mut RaveSim, pair: MirrorPair, interval: SimTime, horizon: SimTime) {
        pair.replicate_pending(sim);
        let next = sim.now() + interval;
        if next <= horizon {
            sim.schedule_at(next, move |sim| tick(sim, pair, interval, horizon));
        }
    }
    let first = sim.now() + interval;
    sim.schedule_at(first, move |sim| tick(sim, pair, interval, horizon));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{publish_update, RaveWorld};
    use crate::RaveConfig;
    use rave_scene::{InterestSet, NodeKind, SceneUpdate};
    use rave_sim::Simulation;

    fn mirrored_world() -> (RaveSim, MirrorPair, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 99));
        let primary = sim.world.spawn_data_service("adrenochrome", "sess");
        let mirror = sim.world.spawn_data_service("tower", "sess-mirror");
        let rs = sim.world.spawn_render_service("laptop");
        sim.world.data_mut(primary).subscribe_live(rs, InterestSet::everything());
        // Seed some history before mirroring starts.
        for name in ["a", "b"] {
            let id = sim.world.data_mut(primary).scene.allocate_id();
            publish_update(
                &mut sim,
                primary,
                "u",
                SceneUpdate::AddNode {
                    id,
                    parent: rave_scene::NodeId(0),
                    name: name.into(),
                    kind: NodeKind::Group,
                },
            )
            .unwrap();
        }
        sim.run();
        let pair = MirrorPair::establish(&mut sim, primary, mirror);
        sim.run();
        (sim, pair, rs)
    }

    #[test]
    fn establish_copies_history() {
        let (sim, pair, _) = mirrored_world();
        let p = &sim.world.data(pair.primary).scene;
        let m = &sim.world.data(pair.mirror).scene;
        assert_eq!(p.len(), m.len());
        assert_eq!(pair.lag(&sim), 0);
    }

    #[test]
    fn re_establish_ships_only_the_delta() {
        let (mut sim, pair, _) = mirrored_world();
        // Publish more history, then re-establish the same pairing: only
        // the two new entries cross the wire, not the whole trail.
        for name in ["c", "d"] {
            let id = sim.world.data_mut(pair.primary).scene.allocate_id();
            publish_update(
                &mut sim,
                pair.primary,
                "u",
                SceneUpdate::AddNode {
                    id,
                    parent: rave_scene::NodeId(0),
                    name: name.into(),
                    kind: NodeKind::Group,
                },
            )
            .unwrap();
        }
        sim.run();
        MirrorPair::establish(&mut sim, pair.primary, pair.mirror);
        sim.run();
        assert_eq!(pair.lag(&sim), 0);
        let detail = &sim.world.trace.last_of(TraceKind::Bootstrap).unwrap().detail;
        assert!(detail.contains("2 entries, resumed from seq 2"), "{detail}");
        assert_eq!(
            sim.world.data(pair.mirror).audit.len(),
            sim.world.data(pair.primary).audit.len()
        );
    }

    #[test]
    fn replication_catches_mirror_up() {
        let (mut sim, pair, _) = mirrored_world();
        let id = sim.world.data_mut(pair.primary).scene.allocate_id();
        publish_update(
            &mut sim,
            pair.primary,
            "u",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "late".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        sim.run();
        assert_eq!(pair.lag(&sim), 1);
        pair.replicate_pending(&mut sim);
        sim.run();
        assert_eq!(pair.lag(&sim), 0);
        assert!(sim.world.data(pair.mirror).scene.contains(id));
    }

    #[test]
    fn replication_is_idempotent() {
        let (mut sim, pair, _) = mirrored_world();
        pair.replicate_pending(&mut sim);
        pair.replicate_pending(&mut sim);
        sim.run();
        assert_eq!(pair.lag(&sim), 0);
        assert_eq!(
            sim.world.data(pair.primary).audit.len(),
            sim.world.data(pair.mirror).audit.len()
        );
    }

    #[test]
    fn failover_continues_the_session() {
        let (mut sim, pair, rs) = mirrored_world();
        pair.replicate_pending(&mut sim);
        sim.run();
        // Primary dies; subscribers move.
        let moved = pair.failover(&mut sim);
        assert_eq!(moved, 1);
        assert!(sim.world.data(pair.primary).subscribers.is_empty());
        // Publishing through the mirror reaches the replica, sequence
        // numbers continuing past the primary's.
        let last_seq = sim.world.data(pair.mirror).audit.last_seq();
        let id = sim.world.data_mut(pair.mirror).scene.allocate_id();
        let seq = publish_update(
            &mut sim,
            pair.mirror,
            "u",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: "post-failover".into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        assert!(seq > last_seq);
        sim.run();
        assert!(sim.world.render(rs).scene.contains(id));
    }

    #[test]
    fn periodic_replication_bounds_lag() {
        let (mut sim, pair, _) = mirrored_world();
        let horizon = sim.now() + SimTime::from_secs(5.0);
        run_replication(&mut sim, pair, SimTime::from_millis(100.0), horizon);
        // Publish a burst.
        for i in 0..10 {
            let id = sim.world.data_mut(pair.primary).scene.allocate_id();
            publish_update(
                &mut sim,
                pair.primary,
                "u",
                SceneUpdate::AddNode {
                    id,
                    parent: rave_scene::NodeId(0),
                    name: format!("n{i}"),
                    kind: NodeKind::Group,
                },
            )
            .unwrap();
        }
        sim.run();
        assert_eq!(pair.lag(&sim), 0, "replication drains the burst");
    }
}
