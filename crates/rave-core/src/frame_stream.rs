//! Compressed frame transport between render services and clients.
//!
//! The §6 future-work item made real: instead of shipping raw 24 bpp
//! (the Table 2 baseline), a per-(render service, client) [`FrameChannel`]
//! runs every outgoing frame through `rave_compress::stream` — adaptive
//! codec selection ([`rave_compress::adaptive::CodecSelector`], EWMA
//! ratios + periodic re-probes), dirty-strip reuse against the previous
//! frame, and word-wide kernels — charging the *encoded* bytes to the
//! serializing channel and the real encode/decode passes to the endpoint
//! CPUs.
//!
//! The channel keeps two previous-frame buffers (see the
//! `rave_compress::stream` docs): `last_raw`, the raw pixels used for the
//! dirty-strip comparison, and `prev_view`, the receiver's decoded
//! reconstruction used as the delta base — distinct so lossy frames never
//! desynchronize the delta stream.

use crate::ids::{ClientId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveWorld;
use rave_compress::adaptive::{self, CodecSelector, EndpointSpeed};
use rave_compress::{stream, Codec};
use rave_sim::SimTime;
use std::collections::BTreeMap;

/// Per-stream transport counters (the "per-client encoded-bytes/ratio
/// stats" the adaptive selector reports on).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    pub frames: u64,
    /// Raw 24 bpp bytes the frames would have cost.
    pub logical_bytes: u64,
    /// Container bytes that actually crossed the wire.
    pub encoded_bytes: u64,
    pub codec_switches: u64,
    pub strips_total: u64,
    pub strips_skipped: u64,
}

impl StreamStats {
    /// Achieved wire/logical ratio (1.0 before any frame).
    pub fn ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Sender-side state of one compressed frame stream.
#[derive(Debug, Clone)]
pub struct FrameChannel {
    pub selector: CodecSelector,
    /// Raw pixels of the last frame shipped (dirty-strip compare base).
    last_raw: Option<Vec<u8>>,
    /// The receiver's reconstruction of the last frame (delta base).
    prev_view: Option<Vec<u8>>,
    last_codec: Option<Codec>,
    pub stats: StreamStats,
}

impl FrameChannel {
    pub fn new(alpha: f64, reprobe_every: u64) -> Self {
        Self {
            selector: CodecSelector::new(alpha, reprobe_every),
            last_raw: None,
            prev_view: None,
            last_codec: None,
            stats: StreamStats::default(),
        }
    }

    pub fn last_codec(&self) -> Option<Codec> {
        self.last_codec
    }
}

/// All live frame streams, keyed by (sending render service, client).
///
/// Recency is tracked per stream: every send does a take → insert dance,
/// so the stream touched longest ago sits at the front of the LRU order.
/// With `RaveConfig::frame_cache_budget > 0` the send path calls
/// [`enforce_budget`](Self::enforce_budget) after each insert; an evicted
/// stream loses its delta base and restarts from a keyframe on its next
/// frame — correct by construction, just briefly more expensive.
#[derive(Debug, Clone, Default)]
pub struct FrameCache {
    channels: BTreeMap<(RenderServiceId, ClientId), FrameChannel>,
    /// Logical use-clock, bumped on every insert.
    clock: u64,
    /// tick -> stream, oldest first (the eviction order).
    by_tick: BTreeMap<u64, (RenderServiceId, ClientId)>,
    /// stream -> its current tick (to unlink on take/evict/re-insert).
    tick_of: BTreeMap<(RenderServiceId, ClientId), u64>,
}

impl FrameCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn unlink(&mut self, key: (RenderServiceId, ClientId)) {
        if let Some(tick) = self.tick_of.remove(&key) {
            self.by_tick.remove(&tick);
        }
    }

    /// Detach a stream's state (re-[`insert`](Self::insert) it after the
    /// send — the take/put dance keeps `&mut RaveWorld` free for the
    /// channel send in between).
    pub fn take(&mut self, rs: RenderServiceId, client: ClientId) -> Option<FrameChannel> {
        self.unlink((rs, client));
        self.channels.remove(&(rs, client))
    }

    pub fn insert(&mut self, rs: RenderServiceId, client: ClientId, ch: FrameChannel) {
        self.unlink((rs, client));
        self.clock += 1;
        self.by_tick.insert(self.clock, (rs, client));
        self.tick_of.insert((rs, client), self.clock);
        self.channels.insert((rs, client), ch);
    }

    pub fn get(&self, rs: RenderServiceId, client: ClientId) -> Option<&FrameChannel> {
        self.channels.get(&(rs, client))
    }

    /// Live stream count.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Transport counters for one stream, if it has ever sent.
    pub fn stats(&self, rs: RenderServiceId, client: ClientId) -> Option<StreamStats> {
        self.get(rs, client).map(|c| c.stats)
    }

    /// Drop a stream's state (e.g. the session closed or the viewport
    /// changed size — the next frame starts over with a keyframe probe).
    pub fn evict(&mut self, rs: RenderServiceId, client: ClientId) {
        self.unlink((rs, client));
        self.channels.remove(&(rs, client));
    }

    /// Evict least-recently-used streams until at most `budget` remain
    /// (no-op when `budget == 0` — that spells "unbounded"). Returns the
    /// evicted stream keys, oldest first, so the caller can trace them.
    pub fn enforce_budget(&mut self, budget: usize) -> Vec<(RenderServiceId, ClientId)> {
        let mut evicted = Vec::new();
        if budget == 0 {
            return evicted;
        }
        while self.channels.len() > budget {
            let Some((&tick, &key)) = self.by_tick.iter().next() else { break };
            self.by_tick.remove(&tick);
            self.tick_of.remove(&key);
            self.channels.remove(&key);
            evicted.push(key);
        }
        evicted
    }
}

/// What one compressed frame send cost and when it lands.
#[derive(Debug, Clone, Copy)]
pub struct FrameSendOutcome {
    /// When the encoded container reaches the receiver (wire only — add
    /// [`decode_secs`](Self::decode_secs) for when pixels are visible).
    pub arrival: SimTime,
    pub codec: Codec,
    pub encoded_bytes: u64,
    pub logical_bytes: u64,
    /// When the encoder CPU actually started on this frame (>= the
    /// frame's ready time when a previous frame was still encoding).
    pub encode_start: SimTime,
    /// Sender-side encode CPU time, already charged before the send.
    pub encode_secs: f64,
    /// When the frame's bits started flowing (after any wire backlog).
    pub wire_start: SimTime,
    /// Wire occupancy of the encoded container (tx time, no latency).
    pub wire_secs: f64,
    /// Receiver-side decode CPU time (the caller schedules display after
    /// it — the wire does not wait on it).
    pub decode_secs: f64,
    pub strips: u32,
    pub strips_skipped: u32,
    pub switched: bool,
}

/// Ship one RGB frame from `rs` (on host `from`) to `client` (on host
/// `to`) through the adaptive compressed stream: pick a codec, encode
/// into the dirty-strip container, charge encode CPU + encoded wire bytes
/// to the sim, and report the decode CPU the receiver will spend.
///
/// The encode starts at `now`; use [`send_frame_after`] when a separate
/// encoder timeline gates the start.
#[allow(clippy::too_many_arguments)]
pub fn send_frame(
    world: &mut RaveWorld,
    now: SimTime,
    rs: RenderServiceId,
    client: ClientId,
    from: &str,
    to: &str,
    cur: &[u8],
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
    allow_lossy: bool,
) -> FrameSendOutcome {
    send_frame_after(world, now, now, rs, client, from, to, cur, sender, receiver, allow_lossy)
}

/// [`send_frame`] for a pipelined stream: the frame's pixels are `ready`
/// (rendered) but the encoder CPU may still be busy with an earlier
/// in-flight frame until `encoder_free` — the encode starts at
/// `max(ready, encoder_free)`. The delta base handed to the codec is the
/// channel's double buffer (`last_raw`/`prev_view`): the *previous*
/// frame's pixels and reconstruction, which are valid even while that
/// frame is still on the wire or undecoded at the client, because both
/// sides advance their view strictly in frame order.
#[allow(clippy::too_many_arguments)]
pub fn send_frame_after(
    world: &mut RaveWorld,
    ready: SimTime,
    encoder_free: SimTime,
    rs: RenderServiceId,
    client: ClientId,
    from: &str,
    to: &str,
    cur: &[u8],
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
    allow_lossy: bool,
) -> FrameSendOutcome {
    let link = world.network.link_between(from, to).clone();
    let mut ch = world.frame_cache.take(rs, client).unwrap_or_else(|| {
        FrameChannel::new(world.config.codec_ewma_alpha, world.config.codec_reprobe_every)
    });

    let est =
        ch.selector.choose(cur, ch.prev_view.as_deref(), &link, sender, receiver, allow_lossy);
    let codec = est.codec;
    let strips = stream::strip_count_for(cur.len(), world.config.frame_strip_bytes);
    let (payload, meta) = stream::encode_frame_with_meta(
        codec,
        cur,
        ch.last_raw.as_deref(),
        ch.prev_view.as_deref(),
        strips,
    );

    // Sender CPU, then the wire (encoded bytes only), receiver CPU after.
    let encode_start = ready.max(encoder_free);
    let encode_secs =
        adaptive::encode_cost_bytes(codec, cur.len()) as f64 / sender.codec_bytes_per_sec;
    let t_sent = encode_start + SimTime::from_secs(encode_secs);
    let wire_secs = link.tx_time(payload.len() as u64).as_secs();
    let wire_start = t_sent.max(world.channel(from, to).busy_until());
    let arrival =
        world.send_encoded_bytes(t_sent, from, to, payload.len() as u64, cur.len() as u64);
    let decode_secs = adaptive::decode_cost_bytes(codec, cur.len(), payload.len()) as f64
        / receiver.codec_bytes_per_sec;

    // Advance the stream: the receiver's view is what the container
    // decodes to (exact for lossless codecs, quantized for lossy ones).
    let new_view = stream::decode_frame(&payload, ch.prev_view.as_deref())
        .expect("self-encoded container must decode");
    let switched = ch.last_codec.is_some_and(|prev| prev != codec);
    if switched {
        world.trace.record(
            encode_start,
            TraceKind::CodecSwitch,
            format!(
                "{rs}->{client}: {} -> {} (ratio {:.3})",
                ch.last_codec.expect("switched implies a previous codec").name(),
                codec.name(),
                payload.len() as f64 / cur.len().max(1) as f64,
            ),
        );
    }
    ch.selector.observe(codec, cur.len() as u64, payload.len() as u64);
    ch.stats.frames += 1;
    ch.stats.logical_bytes += cur.len() as u64;
    ch.stats.encoded_bytes += payload.len() as u64;
    ch.stats.codec_switches += u64::from(switched);
    ch.stats.strips_total += u64::from(meta.strips);
    ch.stats.strips_skipped += u64::from(meta.skipped);
    ch.last_codec = Some(codec);
    ch.last_raw = Some(cur.to_vec());
    ch.prev_view = Some(new_view);
    world.frame_cache.insert(rs, client, ch);
    let budget = world.config.frame_cache_budget;
    for (ers, ecl) in world.frame_cache.enforce_budget(budget) {
        world.trace.record(
            encode_start,
            TraceKind::FrameCacheEvict,
            format!("{ers}->{ecl} evicted (budget {budget})"),
        );
    }

    FrameSendOutcome {
        arrival,
        codec,
        encoded_bytes: payload.len() as u64,
        logical_bytes: cur.len() as u64,
        encode_start,
        encode_secs,
        wire_start,
        wire_secs,
        decode_secs,
        strips: meta.strips,
        strips_skipped: meta.skipped,
        switched,
    }
}

/// A deterministic render-like RGB frame for timing runs where the world
/// skips rasterization (`produce_images: false`): a flat background (the
/// bulk of a real rendered frame) with a seq-animated gradient block, so
/// consecutive frames differ exactly where a moving model would.
pub fn synthesize_frame(width: u32, height: u32, seq: u64) -> Vec<u8> {
    let (w, h) = (width as usize, height as usize);
    let mut out = vec![32u8; w * h * 3];
    if w == 0 || h == 0 {
        return out;
    }
    let bw = (w / 3).max(1);
    let bh = (h / 3).max(1);
    let x0 = (seq as usize * 7) % (w - bw + 1);
    let y0 = (seq as usize * 5) % (h - bh + 1);
    for y in y0..y0 + bh {
        for x in x0..x0 + bw {
            let i = (y * w + x) * 3;
            out[i] = (x * 255 / w) as u8;
            out[i + 1] = (y * 255 / h) as u8;
            out[i + 2] = ((x + y + seq as usize) % 256) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RaveConfig;
    use crate::world::RaveWorld;
    use rave_net::Network;

    fn world() -> RaveWorld {
        RaveWorld::new(Network::paper_testbed(1.0), RaveConfig::default(), 9)
    }

    fn pda_stream_hosts() -> (&'static str, &'static str) {
        ("laptop", "zaurus")
    }

    #[test]
    fn static_scene_collapses_to_header_frames() {
        let mut w = world();
        let (from, to) = pda_stream_hosts();
        let rs = RenderServiceId(1);
        let cl = ClientId(1);
        let frame = synthesize_frame(200, 200, 0);
        let mut t = SimTime::ZERO;
        let first = send_frame(
            &mut w,
            t,
            rs,
            cl,
            from,
            to,
            &frame,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        assert!(first.encoded_bytes > 0);
        t = first.arrival;
        // Same frame again: every strip clean, near-zero wire bytes.
        let second = send_frame(
            &mut w,
            t,
            rs,
            cl,
            from,
            to,
            &frame,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        assert_eq!(second.strips_skipped, second.strips);
        assert!(second.encoded_bytes < 64, "static frame bytes: {}", second.encoded_bytes);
        let stats = w.frame_cache.stats(rs, cl).unwrap();
        assert_eq!(stats.frames, 2);
        assert!(stats.ratio() < 1.0);
    }

    #[test]
    fn moving_scene_stays_decodable_and_cheaper_than_raw() {
        let mut w = world();
        let (from, to) = pda_stream_hosts();
        let rs = RenderServiceId(1);
        let cl = ClientId(1);
        let mut t = SimTime::ZERO;
        let mut total_encoded = 0u64;
        let mut total_logical = 0u64;
        for seq in 0..20 {
            let frame = synthesize_frame(200, 200, seq);
            let out = send_frame(
                &mut w,
                t,
                rs,
                cl,
                from,
                to,
                &frame,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                false, // lossless: the receiver view must equal the frame
            );
            t = out.arrival;
            total_encoded += out.encoded_bytes;
            total_logical += out.logical_bytes;
            let ch = w.frame_cache.get(rs, cl).unwrap();
            assert_eq!(ch.prev_view.as_deref(), Some(frame.as_slice()));
        }
        assert!(
            total_encoded * 4 < total_logical,
            "synthetic stream compresses >4x: {total_encoded}/{total_logical}"
        );
        // Channel accounting matches stream accounting.
        let chan = w.channel(from, to);
        assert_eq!(chan.bytes_sent(), total_encoded);
        assert_eq!(chan.logical_bytes_sent(), total_logical);
        assert!(chan.compression_ratio() < 0.25);
    }

    #[test]
    fn codec_switch_is_traced() {
        let mut w = world();
        let (from, to) = pda_stream_hosts();
        let rs = RenderServiceId(1);
        let cl = ClientId(1);
        // Frame 1: flat (RLE heaven). Then incompressible noise frames —
        // with lossy allowed the selector moves off the first pick.
        let flat = vec![40u8; 200 * 200 * 3];
        let noise: Vec<u8> =
            (0..200 * 200 * 3).map(|i| ((i as u64).wrapping_mul(2654435761) >> 13) as u8).collect();
        let mut t = SimTime::ZERO;
        for (i, f) in [&flat, &noise, &noise, &noise, &noise].into_iter().enumerate() {
            let out = send_frame(
                &mut w,
                t,
                rs,
                cl,
                from,
                to,
                f,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                true,
            );
            t = out.arrival;
            let _ = i;
        }
        let stats = w.frame_cache.stats(rs, cl).unwrap();
        assert!(stats.codec_switches > 0, "content change forces a codec switch");
        assert_eq!(w.trace.count(TraceKind::CodecSwitch), stats.codec_switches as usize);
    }

    #[test]
    fn eviction_restarts_with_a_keyframe() {
        let mut w = world();
        let (from, to) = pda_stream_hosts();
        let rs = RenderServiceId(1);
        let cl = ClientId(1);
        let frame = synthesize_frame(64, 64, 0);
        send_frame(
            &mut w,
            SimTime::ZERO,
            rs,
            cl,
            from,
            to,
            &frame,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        w.frame_cache.evict(rs, cl);
        // Same frame after eviction: no prev state, so nothing skipped.
        let out = send_frame(
            &mut w,
            SimTime::from_secs(1.0),
            rs,
            cl,
            from,
            to,
            &frame,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_eq!(out.strips_skipped, 0);
        assert_eq!(w.frame_cache.stats(rs, cl).unwrap().frames, 1);
    }

    #[test]
    fn frame_cache_budget_evicts_least_recently_used_stream() {
        let mut w = world();
        w.config.frame_cache_budget = 2;
        let (from, to) = pda_stream_hosts();
        let rs = RenderServiceId(1);
        let frame = synthesize_frame(64, 64, 0);
        let send_to = |w: &mut RaveWorld, cl: ClientId, t: f64| {
            send_frame(
                w,
                SimTime::from_secs(t),
                rs,
                cl,
                from,
                to,
                &frame,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                false,
            )
        };
        send_to(&mut w, ClientId(1), 0.0);
        send_to(&mut w, ClientId(2), 1.0);
        // Touch client 1 again so client 2 is now the LRU stream.
        send_to(&mut w, ClientId(1), 2.0);
        assert_eq!(w.frame_cache.len(), 2);
        assert_eq!(w.trace.count(TraceKind::FrameCacheEvict), 0);
        // A third stream pushes the cache over budget: client 2 goes.
        send_to(&mut w, ClientId(3), 3.0);
        assert_eq!(w.frame_cache.len(), 2);
        assert!(w.frame_cache.stats(rs, ClientId(2)).is_none(), "LRU stream evicted");
        assert!(w.frame_cache.stats(rs, ClientId(1)).is_some());
        assert!(w.frame_cache.stats(rs, ClientId(3)).is_some());
        let ev = w.trace.first_of(TraceKind::FrameCacheEvict).unwrap();
        assert!(ev.detail.contains("->cl2"), "evicted stream named: {}", ev.detail);
        // The evicted stream restarts with a full keyframe (nothing skipped).
        let out = send_to(&mut w, ClientId(2), 4.0);
        assert_eq!(out.strips_skipped, 0);
    }

    #[test]
    fn synthesized_frames_animate_deterministically() {
        let a = synthesize_frame(64, 48, 3);
        let b = synthesize_frame(64, 48, 3);
        let c = synthesize_frame(64, 48, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64 * 48 * 3);
    }
}
