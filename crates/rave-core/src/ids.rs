//! Typed service identifiers.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A data-service instance.
    DataServiceId,
    "ds"
);
id_type!(
    /// A render-service instance.
    RenderServiceId,
    "rs"
);
id_type!(
    /// A connected client (thin client or render-capable user).
    ClientId,
    "cl"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(DataServiceId(3).to_string(), "ds3");
        assert_eq!(RenderServiceId(1).to_string(), "rs1");
        assert_eq!(ClientId(9).to_string(), "cl9");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::BTreeSet;
        let s: BTreeSet<RenderServiceId> =
            [RenderServiceId(2), RenderServiceId(1)].into_iter().collect();
        assert_eq!(s.iter().next(), Some(&RenderServiceId(1)));
    }
}
