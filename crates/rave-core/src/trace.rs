//! A timestamped trace of system events, used by experiments and tests to
//! assert on *what happened when* without coupling to internals.

use rave_sim::SimTime;

/// Categories of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    Bootstrap,
    UpdatePublished,
    UpdateDelivered,
    FrameDelivered,
    Distribution,
    Migration,
    Recruitment,
    Overload,
    Underload,
    Refusal,
    Collaboration,
    /// A durable snapshot checkpoint of the session store was written.
    Checkpoint,
    /// A data service was rebuilt from its durable store after a crash.
    Recovery,
    /// Measured per-tile render cost fed back into the tile planner.
    TileCostFeedback,
    /// One scheduler placement decision: the considered candidates, their
    /// headroom scores, and the chosen service (or "unplaced").
    SchedDecision,
    /// The adaptive frame stream changed codec for a client.
    CodecSwitch,
    /// Log-shipping replication traffic: a WAL frame shipped to (or
    /// acknowledged by) a warm standby.
    LogShip,
    /// A warm standby was promoted to primary after a data-service
    /// failure.
    Promote,
    /// A pipelined frame waited on a busy resource (render GPU, wire, or
    /// client CPU); the detail names the binding resource and the stall.
    /// Never emitted at `pipeline_depth = 1` — the serial cycle has no
    /// overlap, hence nothing to wait on.
    PipelineStall,
    /// A frame-stream channel was evicted from the world's `FrameCache`
    /// to stay inside `frame_cache_budget` (LRU); the stream restarts
    /// from a keyframe on its next frame.
    FrameCacheEvict,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: TraceKind,
    pub detail: String,
}

/// Append-only event trace.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    events: Vec<TraceEvent>,
}

impl EventTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, at: SimTime, kind: TraceKind, detail: impl Into<String>) {
        self.events.push(TraceEvent { at, kind, detail: detail.into() });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    pub fn count(&self, kind: TraceKind) -> usize {
        self.of_kind(kind).count()
    }

    pub fn first_of(&self, kind: TraceKind) -> Option<&TraceEvent> {
        self.of_kind(kind).next()
    }

    pub fn last_of(&self, kind: TraceKind) -> Option<&TraceEvent> {
        self.of_kind(kind).last()
    }

    /// Render as text (experiment logs).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "[{:>10}] {:?}: {}", e.at.to_string(), e.kind, e.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_filter() {
        let mut t = EventTrace::new();
        t.record(SimTime::from_secs(1.0), TraceKind::Overload, "rs1 at 4 fps");
        t.record(SimTime::from_secs(2.0), TraceKind::Migration, "moved 3 nodes");
        t.record(SimTime::from_secs(3.0), TraceKind::Overload, "rs2 at 2 fps");
        assert_eq!(t.count(TraceKind::Overload), 2);
        assert_eq!(t.first_of(TraceKind::Migration).unwrap().at, SimTime::from_secs(2.0));
        assert_eq!(t.last_of(TraceKind::Overload).unwrap().detail, "rs2 at 2 fps");
        assert!(t.render().contains("Migration"));
    }
}
