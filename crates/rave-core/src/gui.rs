//! The client GUI, as a scriptable controller (§5.2).
//!
//! "Our current GUI enables users to carry out actions with specific
//! objects ... with selected objects or relative to selected objects
//! (such as rotate the camera around a selected object). The GUI
//! interrogates objects for any supported interactions, and reflects this
//! in the drop-down menus; all interactions are based on clicking to
//! select/deselect an object, and dragging. This simple interface then
//! maps neatly onto a PDA."
//!
//! [`GuiController`] is that interface: click → pick → selection;
//! interrogation builds the menu; drags map to the selected object's
//! supported interactions and publish ordinary scene updates. The GUI
//! never hardcodes object behaviour — exactly the property the paper
//! wanted ("permits alterations of the supported interactions without
//! affecting any part of the GUI or underlying message transport").

use crate::collaboration::Participant;
use crate::ids::DataServiceId;
use crate::world::{publish_update, RaveSim};
use rave_math::{Vec3, Viewport};
use rave_render::pick::pick_node_skipping;
use rave_scene::node::Interaction;
use rave_scene::{CameraParams, NodeId, SceneUpdate, Transform, UpdateError};

/// One user's GUI state: their camera, viewport, and current selection.
#[derive(Debug, Clone)]
pub struct GuiController {
    pub user: String,
    pub data_service: DataServiceId,
    pub participant: Participant,
    pub camera: CameraParams,
    pub viewport: Viewport,
    pub selected: Option<NodeId>,
}

impl GuiController {
    pub fn new(
        user: &str,
        ds: DataServiceId,
        participant: Participant,
        camera: CameraParams,
        viewport: Viewport,
    ) -> Self {
        Self { user: user.into(), data_service: ds, participant, camera, viewport, selected: None }
    }

    /// Click at a pixel: select what's under the cursor (deselect on
    /// background, toggle off when re-clicking the selection — the
    /// "select/deselect" behaviour). Picking runs against the *master*
    /// scene via the user's camera.
    pub fn click(&mut self, sim: &RaveSim, x: u32, y: u32) -> Option<NodeId> {
        let scene = &sim.world.data(self.data_service).scene;
        // Never pick your own avatar — it sits at your camera.
        let hit = pick_node_skipping(
            scene,
            &self.camera,
            &self.viewport,
            x,
            y,
            Some(self.participant.avatar),
        );
        self.selected = match (hit, self.selected) {
            (Some(h), Some(s)) if h == s => None, // toggle off
            (h, _) => h,
        };
        self.selected
    }

    /// The drop-down menu for the current selection, built by
    /// interrogation.
    pub fn menu(&self, sim: &RaveSim) -> &'static [Interaction] {
        let scene = &sim.world.data(self.data_service).scene;
        self.selected
            .and_then(|id| scene.node(id))
            .map(|n| n.supported_interactions())
            .unwrap_or(&[])
    }

    /// Drag with an object selected: moves the object if it supports
    /// `Drag`, otherwise orbits the camera around it if it supports
    /// `RotateAround`, otherwise orbits the world origin (plain camera
    /// navigation). Returns which interaction ran.
    pub fn drag(
        &mut self,
        sim: &mut RaveSim,
        dx: f32,
        dy: f32,
    ) -> Result<Interaction, UpdateError> {
        let menu = self.menu(sim);
        if let Some(id) = self.selected {
            if menu.contains(&Interaction::Drag) {
                // Translate the object in the camera plane, scaled to feel
                // like pixels.
                let scale = 0.01;
                let delta = self.camera.right() * (dx * scale) + self.camera.up() * (-dy * scale);
                let current =
                    sim.world.data(self.data_service).scene.node(id).map(|n| n.transform());
                let mut t = current.unwrap_or(Transform::IDENTITY);
                t.translation += delta;
                publish_update(
                    sim,
                    self.data_service,
                    &self.user,
                    SceneUpdate::SetTransform { id, transform: t },
                )?;
                return Ok(Interaction::Drag);
            }
            if menu.contains(&Interaction::RotateAround) {
                let center = sim.world.data(self.data_service).scene.world_bounds(id).center();
                self.orbit_camera(sim, center, dx, dy)?;
                return Ok(Interaction::RotateAround);
            }
        }
        self.orbit_camera(sim, Vec3::ZERO, dx, dy)?;
        Ok(Interaction::Select) // plain navigation
    }

    fn orbit_camera(
        &mut self,
        sim: &mut RaveSim,
        center: Vec3,
        dx: f32,
        dy: f32,
    ) -> Result<(), UpdateError> {
        self.camera.orbit(center, dx * 0.01, dy * 0.01);
        publish_update(
            sim,
            self.data_service,
            &self.user,
            SceneUpdate::CameraMoved { id: self.participant.avatar, camera: self.camera },
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collaboration::join_session;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_scene::{InterestSet, MeshData, NodeKind};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn gui_world() -> (RaveSim, GuiController, NodeId, crate::ids::RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 31));
        let ds = sim.world.spawn_data_service("adrenochrome", "sess");
        let rs = sim.world.spawn_render_service("laptop");
        sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        let mesh = MeshData::new(
            vec![
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(1.0, -1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(-1.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        );
        let (obj, root) = {
            let scene = &mut sim.world.data_mut(ds).scene;
            (scene.allocate_id(), scene.root())
        };
        publish_update(
            &mut sim,
            ds,
            "u",
            SceneUpdate::AddNode {
                id: obj,
                parent: root,
                name: "quad".into(),
                kind: NodeKind::Mesh(Arc::new(mesh)),
            },
        )
        .unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let who = join_session(&mut sim, ds, "gui-user", Vec3::X, cam).unwrap();
        sim.run();
        let gui = GuiController::new("gui-user", ds, who, cam, Viewport::new(64, 64));
        (sim, gui, obj, rs)
    }

    #[test]
    fn click_selects_and_toggles() {
        let (sim, mut gui, obj, _) = gui_world();
        assert_eq!(gui.click(&sim, 32, 32), Some(obj));
        assert_eq!(gui.click(&sim, 32, 32), None, "re-click deselects");
        assert_eq!(gui.click(&sim, 1, 1), None, "background deselects");
    }

    #[test]
    fn menu_comes_from_interrogation() {
        let (sim, mut gui, _, _) = gui_world();
        assert!(gui.menu(&sim).is_empty(), "no selection, no menu");
        gui.click(&sim, 32, 32);
        let menu = gui.menu(&sim);
        assert!(menu.contains(&Interaction::Drag));
        assert!(menu.contains(&Interaction::RotateAround));
    }

    #[test]
    fn drag_selected_object_moves_it_everywhere() {
        let (mut sim, mut gui, obj, rs) = gui_world();
        gui.click(&sim, 32, 32);
        let ran = gui.drag(&mut sim, 30.0, 0.0).unwrap();
        assert_eq!(ran, Interaction::Drag);
        sim.run();
        let master_t =
            sim.world.data(gui.data_service).scene.node(obj).unwrap().transform().translation;
        assert!(master_t.x > 0.2, "object moved: {master_t:?}");
        let replica_t = sim.world.render(rs).scene.node(obj).unwrap().transform().translation;
        assert_eq!(master_t, replica_t, "replica follows the drag");
    }

    #[test]
    fn drag_with_no_selection_navigates_camera() {
        let (mut sim, mut gui, _, rs) = gui_world();
        let pos0 = gui.camera.position;
        let ran = gui.drag(&mut sim, 40.0, 10.0).unwrap();
        assert_eq!(ran, Interaction::Select);
        assert!(gui.camera.position.distance(pos0) > 0.01);
        sim.run();
        // Avatar on the replica moved with the camera.
        let av = sim
            .world
            .render(rs)
            .scene
            .node(gui.participant.avatar)
            .unwrap()
            .transform()
            .translation;
        assert_eq!(av, gui.camera.position);
    }

    #[test]
    fn avatar_selection_offers_no_drag() {
        let (mut sim, mut gui, obj, _) = gui_world();
        // Remove the quad so the avatar is exposed?  Simpler: select the
        // avatar node directly and check the menu path.
        let _ = obj;
        gui.selected = Some(gui.participant.avatar);
        let menu = gui.menu(&sim);
        assert!(menu.contains(&Interaction::Select));
        assert!(!menu.contains(&Interaction::Drag));
        // Dragging with an avatar selected falls through to navigation.
        let ran = gui.drag(&mut sim, 10.0, 0.0).unwrap();
        assert_eq!(ran, Interaction::Select);
    }
}
