//! Distributed volume rendering (§6 future work, implemented).
//!
//! "We will extend our support and rendering services to include voxel
//! and point based methods; these will distribute across multiple render
//! services. Subset blocks of the volume can be blended, even though they
//! contain transparency, by considering their relative distance from the
//! view in the order of blending (such as Visapult)."
//!
//! The flow mirrors Visapult's: the volume is split into bricks
//! ([`rave_scene::VolumeData::split_bricks`] via the distribution
//! planner's `split_node`), each assisting render service ray-casts *its
//! brick* over the full viewport into an RGBA layer, ships it to the
//! owner, and the owner blends the layers back-to-front by brick
//! distance.

use crate::capacity::CapacityReport;
use crate::distribution::split_node;
use crate::ids::RenderServiceId;
use crate::sched::placement::rank_helpers;
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_math::Viewport;
use rave_render::composite::{blend_volume_layers, VolumeLayer};
use rave_render::Framebuffer;
use rave_scene::{CameraParams, KindTag, NodeId, SceneTree};
use rave_sim::SimTime;

/// Split one volume node into `2^splits` bricks (in the master scene),
/// returning the brick node ids. The bricks stay children of the original
/// node, which becomes a group — structural updates the normal protocol
/// replicates.
pub fn brick_volume(scene: &mut SceneTree, volume: NodeId, splits: u32) -> Vec<NodeId> {
    let mut frontier = vec![volume];
    for _ in 0..splits {
        let mut next = Vec::new();
        for node in frontier {
            match split_node(scene, node) {
                Some((a, b)) => {
                    next.push(a);
                    next.push(b);
                }
                None => next.push(node),
            }
        }
        frontier = next;
    }
    frontier
}

/// Plan brick-to-service assignments through the scheduler's shared
/// participant ranking: the owner takes the first brick, assisting
/// services (strongest advertised headroom first, zero-headroom helpers
/// dropped) take the rest, wrapping round-robin when bricks outnumber
/// participants. With one helper and two bricks this reproduces the
/// manual `[(owner, b0), (helper, b1)]` assignment the module's tests
/// always used.
pub fn plan_volume_bricks(
    owner: RenderServiceId,
    bricks: &[NodeId],
    helpers: &[CapacityReport],
) -> Vec<(RenderServiceId, NodeId)> {
    let ranked = rank_helpers(helpers, bricks.len().saturating_sub(1));
    let participants: Vec<RenderServiceId> =
        std::iter::once(owner).chain(ranked.iter().map(|r| r.service)).collect();
    bricks
        .iter()
        .enumerate()
        .map(|(i, &brick)| (participants[i % participants.len()], brick))
        .collect()
}

/// Outcome of a distributed volume frame.
#[derive(Debug)]
pub struct VolumeFrameResult {
    pub completed_at: SimTime,
    /// Blended image (when the world produces images).
    pub image: Option<Framebuffer>,
    /// Per-brick layer arrival times.
    pub layer_arrivals: Vec<SimTime>,
    pub bricks: usize,
}

/// Render one distributed volume frame: each `(service, brick)` pair
/// ray-casts its brick; layers converge on the owner and blend in view
/// order. `cost_voxels_per_sec` is the ray-cast throughput charged to the
/// virtual clock (volume rendering was not in the paper's machine tables,
/// so the rate is a single explicit knob).
pub fn render_distributed_volume(
    sim: &mut RaveSim,
    owner: RenderServiceId,
    assignments: &[(RenderServiceId, NodeId)],
    camera: CameraParams,
    viewport: Viewport,
    cost_voxels_per_sec: f64,
) -> VolumeFrameResult {
    let t0 = sim.now();
    let produce = sim.world.config.produce_images;
    let owner_host = sim.world.render(owner).host.clone();

    let mut layers: Vec<VolumeLayer> = Vec::new();
    let mut arrivals = Vec::with_capacity(assignments.len());
    for (svc, brick) in assignments {
        let helper_host = sim.world.render(*svc).host.clone();
        // Charge: request + ray-cast + RGBA layer transfer (4 floats/px
        // quantized to 8 bytes/px on the wire).
        let req_at = if *svc == owner {
            t0
        } else {
            sim.world.send_bytes(t0, &owner_host, &helper_host, 128)
        };
        let voxels = {
            let rs = sim.world.render(*svc);
            rs.scene.node(*brick).map_or(0, |n| n.own_cost().voxels)
        };
        let cast_time = SimTime::from_secs(voxels as f64 / cost_voxels_per_sec);
        let rendered_at = req_at + cast_time;
        let arrival = if *svc == owner {
            rendered_at
        } else {
            sim.world.send_bytes(
                rendered_at,
                &helper_host,
                &owner_host,
                viewport.pixel_count() as u64 * 8,
            )
        };
        arrivals.push(arrival);
        if produce {
            let rs = sim.world.render(*svc);
            if let Some(layer) =
                rs.renderer.render_volume_layer(&rs.scene, *brick, &camera, &viewport)
            {
                layers.push(layer);
            }
        }
    }

    let completed_at = arrivals.iter().copied().fold(t0, SimTime::max);
    let image = if produce {
        let mut target = Framebuffer::new(viewport.width, viewport.height);
        blend_volume_layers(&mut target, &mut layers);
        Some(target)
    } else {
        None
    };
    sim.world.trace.record(
        completed_at,
        TraceKind::FrameDelivered,
        format!("distributed volume frame: {} bricks via {owner}", assignments.len()),
    );
    VolumeFrameResult { completed_at, image, layer_arrivals: arrivals, bricks: assignments.len() }
}

/// Convenience: does a scene node hold volume content?
pub fn is_volume(scene: &SceneTree, id: NodeId) -> bool {
    matches!(scene.node(id).map(|n| n.kind_tag()), Some(KindTag::Volume))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RaveWorld;
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{NodeKind, VolumeData};
    use rave_sim::Simulation;
    use std::sync::Arc;

    /// A dense ball in a 24³ volume.
    fn ball_volume() -> VolumeData {
        let n = 24u32;
        let mut voxels = vec![0u8; (n * n * n) as usize];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let p = Vec3::new(x as f32 - 11.5, y as f32 - 11.5, z as f32 - 11.5);
                    if p.length() < 8.0 {
                        voxels[(x + n * (y + n * z)) as usize] = 220;
                    }
                }
            }
        }
        VolumeData::new([n, n, n], Vec3::ONE, voxels)
    }

    fn volume_world() -> (RaveSim, RenderServiceId, RenderServiceId, NodeId) {
        let cfg = RaveConfig { produce_images: true, ..RaveConfig::default() };
        let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 77));
        let owner = sim.world.spawn_render_service("v880z"); // volume_hw
        let helper = sim.world.spawn_render_service("onyx");
        let mut master = SceneTree::new();
        let root = master.root();
        let vol = master.add_node(root, "ct", NodeKind::Volume(Arc::new(ball_volume()))).unwrap();
        for rs in [owner, helper] {
            sim.world.render_mut(rs).scene = master.clone();
        }
        (sim, owner, helper, vol)
    }

    #[test]
    fn bricking_conserves_voxels() {
        let mut scene = SceneTree::new();
        let root = scene.root();
        let vol = scene.add_node(root, "v", NodeKind::Volume(Arc::new(ball_volume()))).unwrap();
        let total = scene.total_cost().voxels;
        let bricks = brick_volume(&mut scene, vol, 2);
        assert_eq!(bricks.len(), 4);
        assert_eq!(scene.total_cost().voxels, total);
        scene.check_invariants().unwrap();
        assert!(matches!(scene.node(vol).unwrap().kind(), NodeKind::Group));
    }

    #[test]
    fn distributed_blend_close_to_monolithic() {
        let (mut sim, owner, helper, vol) = volume_world();
        let cam = CameraParams::look_at(Vec3::new(12.0, 12.0, 60.0), Vec3::splat(12.0), Vec3::Y);
        let viewport = Viewport::new(48, 48);

        // Monolithic reference on the owner (single volume layer).
        let mono = {
            let rs = sim.world.render(owner);
            let layer = rs.renderer.render_volume_layer(&rs.scene, vol, &cam, &viewport).unwrap();
            let mut fb = Framebuffer::new(48, 48);
            blend_volume_layers(&mut fb, &mut [layer]);
            fb
        };

        // Brick the volume on both replicas, assign one brick each.
        let bricks = {
            let mut bricks = Vec::new();
            for rs in [owner, helper] {
                let scene = &mut sim.world.render_mut(rs).scene;
                bricks = brick_volume(scene, vol, 1);
            }
            bricks
        };
        assert_eq!(bricks.len(), 2);
        let assignments = vec![(owner, bricks[0]), (helper, bricks[1])];
        let result =
            render_distributed_volume(&mut sim, owner, &assignments, cam, viewport, 50.0e6);
        let distributed = result.image.unwrap();
        // Both show the ball; the split must not lose it.
        assert!(mono.coverage(rave_render::Rgb::BLACK) > 100);
        assert!(distributed.coverage(rave_render::Rgb::BLACK) > 100);
        // Blended result close to the monolithic one (brick-boundary
        // interpolation differs slightly; most pixels agree).
        assert!(
            distributed.diff_fraction(&mono, 40.0) < 0.15,
            "diff {}",
            distributed.diff_fraction(&mono, 40.0)
        );
    }

    #[test]
    fn planned_bricks_match_the_manual_assignment() {
        use rave_scene::NodeCost;
        let (mut sim, owner, helper, vol) = volume_world();
        let bricks = {
            let mut bricks = Vec::new();
            for rs in [owner, helper] {
                let scene = &mut sim.world.render_mut(rs).scene;
                bricks = brick_volume(scene, vol, 1);
            }
            bricks
        };
        let helper_report = CapacityReport {
            service: helper,
            host: "onyx".into(),
            polys_per_sec: 1e7,
            poly_headroom: 1000,
            texture_headroom: u64::MAX,
            volume_hw: true,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        };
        let planned = plan_volume_bricks(owner, &bricks, std::slice::from_ref(&helper_report));
        assert_eq!(planned, vec![(owner, bricks[0]), (helper, bricks[1])]);

        // A zero-headroom helper is dropped: the owner wraps around and
        // carries every brick itself.
        let dead = CapacityReport { poly_headroom: 0, ..helper_report };
        let solo = plan_volume_bricks(owner, &bricks, &[dead]);
        assert_eq!(solo, vec![(owner, bricks[0]), (owner, bricks[1])]);

        // Plan-driven render produces the same frame as the manual pair.
        let cam = CameraParams::look_at(Vec3::new(12.0, 12.0, 60.0), Vec3::splat(12.0), Vec3::Y);
        let vp = Viewport::new(48, 48);
        let via_plan =
            render_distributed_volume(&mut sim, owner, &planned, cam, vp, 50.0e6).image.unwrap();
        let manual = vec![(owner, bricks[0]), (helper, bricks[1])];
        let via_manual =
            render_distributed_volume(&mut sim, owner, &manual, cam, vp, 50.0e6).image.unwrap();
        assert_eq!(via_plan.diff_fraction(&via_manual, 0.0), 0.0);
    }

    #[test]
    fn remote_bricks_cost_wire_time() {
        let (mut sim, owner, helper, vol) = volume_world();
        sim.world.config.produce_images = false;
        let bricks = {
            let mut bricks = Vec::new();
            for rs in [owner, helper] {
                let scene = &mut sim.world.render_mut(rs).scene;
                bricks = brick_volume(scene, vol, 1);
            }
            bricks
        };
        let cam = CameraParams::default();
        let result = render_distributed_volume(
            &mut sim,
            owner,
            &[(owner, bricks[0]), (helper, bricks[1])],
            cam,
            Viewport::new(200, 200),
            50.0e6,
        );
        assert!(result.layer_arrivals[1] > result.layer_arrivals[0]);
        assert_eq!(result.completed_at, result.layer_arrivals[1]);
        assert!(result.image.is_none());
    }

    #[test]
    fn more_services_shorten_cast_time() {
        // With equal split, per-service cast time halves; wall clock
        // improves as long as transfer < cast.
        let (mut sim, owner, helper, vol) = volume_world();
        sim.world.config.produce_images = false;
        let cam = CameraParams::default();
        let slow_rate = 1.0e5; // firmly cast-bound: transfer << cast
        let single = render_distributed_volume(
            &mut sim,
            owner,
            &[(owner, vol)],
            cam,
            Viewport::new(100, 100),
            slow_rate,
        );
        let bricks = {
            let mut bricks = Vec::new();
            for rs in [owner, helper] {
                let scene = &mut sim.world.render_mut(rs).scene;
                bricks = brick_volume(scene, vol, 1);
            }
            bricks
        };
        let t1 = sim.now();
        let dual = render_distributed_volume(
            &mut sim,
            owner,
            &[(owner, bricks[0]), (helper, bricks[1])],
            cam,
            Viewport::new(100, 100),
            slow_rate,
        );
        let single_span = single.completed_at.as_secs();
        let dual_span = (dual.completed_at - t1).as_secs();
        assert!(
            dual_span < single_span * 0.75,
            "distribution helps: single {single_span} dual {dual_span}"
        );
    }
}
