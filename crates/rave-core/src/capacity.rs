//! Capacity interrogation.
//!
//! §3.2.5: "The data service interrogates the render service for its
//! capacity (available polygons per second, texture memory, support for
//! hardware assisted volume rendering, etc.)." A [`CapacityReport`] is
//! that answer, and is the planner's only view of a service — the planner
//! never peeks at service internals.

use crate::ids::RenderServiceId;
use rave_scene::NodeCost;

/// A render service's advertised capacity at a moment in time.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityReport {
    pub service: RenderServiceId,
    pub host: String,
    /// Raw triangle throughput (tris/s).
    pub polys_per_sec: f64,
    /// Polygons the service can hold *per frame* while sustaining the
    /// configured interactive rate, minus what it already carries.
    pub poly_headroom: u64,
    /// Unused texture memory (bytes).
    pub texture_headroom: u64,
    /// Hardware-assisted volume rendering available?
    pub volume_hw: bool,
    /// Cost of the scene content currently assigned.
    pub assigned: NodeCost,
    /// Rolling measured frame rate, if the service has rendered recently.
    pub rolling_fps: Option<f64>,
}

impl CapacityReport {
    /// Can this service additionally accept `cost` (with the planner's
    /// fill factor already applied by the caller)?
    pub fn can_accept(&self, cost: &NodeCost) -> bool {
        self.headroom().fits(cost)
    }

    /// Scalar headroom used for ordering candidate services (most spare
    /// capacity first).
    pub fn headroom_weight(&self) -> u64 {
        self.poly_headroom
    }

    /// The report's remaining room as a debitable ledger entry.
    pub fn headroom(&self) -> Headroom {
        Headroom { polygons: self.poly_headroom, texture_bytes: self.texture_headroom }
    }
}

/// A service's remaining room on the two advertised capacity axes. Every
/// "does it fit / subtract it" check in the scheduler, migration and
/// distribution paths goes through this one type rather than re-deriving
/// the comparison from raw `(poly, tex)` tuples inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Headroom {
    pub polygons: u64,
    pub texture_bytes: u64,
}

impl Headroom {
    /// Does `cost` fit on both capacity axes?
    pub fn fits(&self, cost: &NodeCost) -> bool {
        cost.polygons <= self.polygons && cost.texture_bytes <= self.texture_bytes
    }

    /// Subtract a placed cost (caller guarantees [`Headroom::fits`]).
    pub fn debit(&mut self, cost: &NodeCost) {
        self.polygons -= cost.polygons;
        self.texture_bytes -= cost.texture_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(poly: u64, tex: u64) -> CapacityReport {
        CapacityReport {
            service: RenderServiceId(1),
            host: "laptop".into(),
            polys_per_sec: 8.8e6,
            poly_headroom: poly,
            texture_headroom: tex,
            volume_hw: false,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        }
    }

    #[test]
    fn accept_requires_both_axes() {
        let r = report(1000, 500);
        assert!(r.can_accept(&NodeCost { polygons: 1000, texture_bytes: 500, ..NodeCost::ZERO }));
        assert!(!r.can_accept(&NodeCost { polygons: 1001, ..NodeCost::ZERO }));
        assert!(!r.can_accept(&NodeCost { texture_bytes: 501, ..NodeCost::ZERO }));
    }

    #[test]
    fn headroom_orders_candidates() {
        assert!(report(5000, 0).headroom_weight() > report(100, 0).headroom_weight());
    }

    #[test]
    fn headroom_debits_both_axes() {
        let mut room = report(1000, 500).headroom();
        let cost = NodeCost { polygons: 400, texture_bytes: 100, ..NodeCost::ZERO };
        assert!(room.fits(&cost));
        room.debit(&cost);
        assert_eq!(room, Headroom { polygons: 600, texture_bytes: 400 });
        assert!(!room.fits(&NodeCost { polygons: 601, ..NodeCost::ZERO }));
    }
}
