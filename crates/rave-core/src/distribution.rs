//! Dataset distribution (§3.2.5).
//!
//! "When a dataset would overwhelm the resources on a particular render
//! service, the data may be distributed amongst multiple services
//! instead." The planner bin-packs content nodes onto services by their
//! interrogated capacity, splitting oversized nodes spatially when no
//! single service can hold them, and refuses with an explanatory error
//! when total resources are insufficient (the paper's present-testbed
//! behaviour).
//!
//! Since the scheduler unification this module is a thin adapter: the
//! packing loop itself lives in [`crate::sched::placement`] (shared with
//! migration and failover re-plans); what stays here is the dataset
//! vocabulary — [`DistributionPlan`], [`PlanError`], the feasibility
//! pre-check, and the spatial [`split_node`] the engine calls back into.

use crate::capacity::{CapacityReport, Headroom};
use crate::ids::RenderServiceId;
use crate::sched::incremental::{PlanDiff, PlanState};
use crate::sched::placement::{place_with_splitting, Ledger, PlaceError};
use rave_scene::{CostDirt, KindTag, NodeCost, NodeId, NodeKind, SceneTree};
use std::sync::Arc;

/// One service's share of the scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub service: RenderServiceId,
    /// Subtree roots this service must render (its interest set).
    pub nodes: Vec<NodeId>,
    pub cost: NodeCost,
}

/// A complete distribution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionPlan {
    pub assignments: Vec<Assignment>,
    /// How many node splits the planner performed to make things fit.
    pub splits_performed: u32,
}

impl DistributionPlan {
    /// The plan's total placed cost.
    pub fn total_cost(&self) -> NodeCost {
        self.assignments.iter().map(|a| a.cost).sum()
    }

    pub fn assignment_for(&self, rs: RenderServiceId) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.service == rs)
    }
}

/// Why a plan could not be produced — "the request is refused with an
/// explanatory error message" (§3.2.5).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Demand exceeds the combined capacity of every candidate.
    InsufficientResources {
        required_polygons: u64,
        total_poly_headroom: u64,
        required_texture: u64,
        total_texture_headroom: u64,
    },
    /// A single indivisible node exceeds every service's capacity.
    IndivisibleNode {
        node: NodeId,
        polygons: u64,
        largest_headroom: u64,
    },
    NoCandidates,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InsufficientResources { required_polygons, total_poly_headroom, .. } => {
                write!(
                f,
                "insufficient render resources: scene needs {required_polygons} polygons/frame, \
                 connected services offer {total_poly_headroom}"
            )
            }
            PlanError::IndivisibleNode { node, polygons, largest_headroom } => write!(
                f,
                "node {node} ({polygons} polygons) cannot be split further and exceeds the \
                 largest service headroom ({largest_headroom})"
            ),
            PlanError::NoCandidates => write!(f, "no render services available"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Split an oversized content node in place: the node becomes a `Group`
/// whose two children carry the halves. Returns the child ids, or `None`
/// if the payload cannot be split.
pub fn split_node(scene: &mut SceneTree, id: NodeId) -> Option<(NodeId, NodeId)> {
    let node = scene.node(id)?;
    match node.kind().clone() {
        NodeKind::Mesh(mesh) => {
            let (a, b) = mesh.split_spatial()?;
            let ida = scene.allocate_id();
            let idb = scene.allocate_id();
            let name = scene.node(id)?.name().to_string();
            scene.insert_with_id(ida, id, format!("{name}.a"), NodeKind::Mesh(Arc::new(a))).ok()?;
            scene.insert_with_id(idb, id, format!("{name}.b"), NodeKind::Mesh(Arc::new(b))).ok()?;
            let mut n = scene.node_mut(id)?;
            n.set_kind(NodeKind::Group);
            n.bump_version();
            Some((ida, idb))
        }
        NodeKind::PointCloud(cloud) => {
            let (a, b) = cloud.split_spatial()?;
            let ida = scene.allocate_id();
            let idb = scene.allocate_id();
            let name = scene.node(id)?.name().to_string();
            scene
                .insert_with_id(ida, id, format!("{name}.a"), NodeKind::PointCloud(Arc::new(a)))
                .ok()?;
            scene
                .insert_with_id(idb, id, format!("{name}.b"), NodeKind::PointCloud(Arc::new(b)))
                .ok()?;
            let mut n = scene.node_mut(id)?;
            n.set_kind(NodeKind::Group);
            n.bump_version();
            Some((ida, idb))
        }
        NodeKind::Volume(vol) => {
            let (a, b, offset) = vol.split_bricks()?;
            let ida = scene.allocate_id();
            let idb = scene.allocate_id();
            let name = scene.node(id)?.name().to_string();
            scene
                .insert_with_id(ida, id, format!("{name}.a"), NodeKind::Volume(Arc::new(a)))
                .ok()?;
            scene
                .insert_with_id(idb, id, format!("{name}.b"), NodeKind::Volume(Arc::new(b)))
                .ok()?;
            scene.node_mut(idb)?.transform_mut().translation = offset;
            let mut n = scene.node_mut(id)?;
            n.set_kind(NodeKind::Group);
            n.bump_version();
            Some((ida, idb))
        }
        _ => None,
    }
}

/// Content units eligible for distribution: nodes with non-zero cost,
/// excluding avatars/cameras (presence markers travel with every
/// replica).
pub(crate) fn distributable_units(scene: &SceneTree) -> Vec<(NodeId, NodeCost)> {
    // Sequential id-order walk rather than the pre-order
    // `descendants_iter`: every node is reachable from the root (tree
    // invariant), so the *set* is identical, and `place_with_splitting`
    // canonicalizes the queue with a strict total-order sort
    // (descending render weight, then id — ids are unique), so the
    // visit order here cannot affect the plan. The in-order map walk
    // avoids a random-probe lookup per node, which is what dominates
    // plan latency past ~10k nodes.
    scene
        .iter_nodes()
        .filter_map(|node| {
            // Hot-array reads only: the cached own cost and the kind tag
            // classify the node without touching the cold payload.
            let cost = node.own_cost();
            let eligible =
                !cost.is_zero() && !matches!(node.kind_tag(), KindTag::Avatar | KindTag::Camera);
            eligible.then_some((node.id(), cost))
        })
        .collect()
}

/// Plan a distribution of `scene` across `candidates`. May split
/// oversized nodes in `scene` (mutating it — the data service owns the
/// master copy and splits are ordinary structural updates).
pub fn plan_distribution(
    scene: &mut SceneTree,
    candidates: &[CapacityReport],
) -> Result<DistributionPlan, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::NoCandidates);
    }
    // Quick feasibility check up front for the explanatory refusal.
    let demand = scene.total_cost();
    let total_polys = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.poly_headroom));
    let total_tex = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.texture_headroom));
    if demand.polygons > total_polys || demand.texture_bytes > total_tex {
        return Err(PlanError::InsufficientResources {
            required_polygons: demand.polygons,
            total_poly_headroom: total_polys,
            required_texture: demand.texture_bytes,
            total_texture_headroom: total_tex,
        });
    }

    // The shared engine does the first-fit-decreasing packing with the
    // re-sort-after-every-placement ledger policy this planner has always
    // used; splitting calls back into the spatial [`split_node`].
    let mut ledger = Ledger::from_reports(candidates, true);
    let outcome = place_with_splitting(
        &mut ledger,
        distributable_units(scene),
        |id| {
            let (a, b) = split_node(scene, id)?;
            let ca = scene.node(a).expect("split child").own_cost();
            let cb = scene.node(b).expect("split child").own_cost();
            Some([(a, ca), (b, cb)])
        },
        // Bulk planning is latency-sensitive and discards the records;
        // migration/failure paths record through the ledger directly.
        false,
    )
    .map_err(|e| match e {
        PlaceError::Indivisible { item, polygons, largest_headroom } => {
            PlanError::IndivisibleNode { node: item, polygons, largest_headroom }
        }
    })?;

    Ok(DistributionPlan {
        assignments: outcome
            .assignments
            .into_iter()
            .map(|(service, nodes, cost)| Assignment { service, nodes, cost })
            .collect(),
        splits_performed: outcome.splits,
    })
}

/// The distribution eligibility rule as a per-node query: the cost the
/// incremental plan should carry for `id`, or `None` when the node is
/// not a distributable unit (gone, zero-cost, or a presence marker).
fn eligible_cost(scene: &SceneTree, id: NodeId) -> Option<NodeCost> {
    let node = scene.node(id)?;
    let cost = node.own_cost();
    let eligible = !cost.is_zero() && !matches!(node.kind_tag(), KindTag::Avatar | KindTag::Camera);
    eligible.then_some(cost)
}

/// Incrementally (re)plan `scene` across an explicit per-service
/// capacity basis, maintaining `state` between calls.
///
/// The scene's cost-dirt log ([`SceneTree::drain_cost_dirt`]) is folded
/// into the plan as workload edits, the basis change (if any) is noted,
/// and the engine replays from the first affected queue position —
/// falling back to a full rebuild when the dirt log saturated or no plan
/// exists yet. Returns `Ok(None)` when the bounded-staleness policy
/// deferred the replan (the dirt stays accumulated), `Ok(Some(diff))`
/// with the minimal migration set otherwise. The resulting assignment is
/// always identical to what [`plan_distribution`] would produce from
/// scratch on the same scene and basis.
pub fn plan_incremental(
    scene: &mut SceneTree,
    caps: &[(RenderServiceId, Headroom)],
    state: &mut PlanState,
    max_staleness: f64,
) -> Result<Option<PlanDiff>, PlanError> {
    let mut rebuild = !state.is_planned();
    match scene.drain_cost_dirt() {
        CostDirt::Clean => {}
        CostDirt::Everything => rebuild = true,
        CostDirt::Nodes(ids) => {
            for id in ids {
                state.note_unit(id, eligible_cost(scene, id));
            }
        }
    }
    state.note_caps(caps);
    if !rebuild && !state.should_replan(max_staleness) {
        return Ok(None);
    }

    // The same explanatory refusals as the cold planner. The rebuild
    // path walks the scene anyway and uses the whole-scene demand, like
    // `plan_distribution`; the incremental path must not — re-totalling
    // the tree is the O(n) walk the suffix replay exists to avoid — so
    // it checks the queue's own maintained demand (the eligible units,
    // which is what actually gets packed).
    let (demand_polys, demand_tex, demand_empty) = if rebuild {
        let demand = scene.total_cost();
        (demand.polygons, demand.texture_bytes, demand.is_zero())
    } else {
        (
            state.total_polygons(),
            state.total_texture(),
            state.total_weight() == 0 && state.total_texture() == 0,
        )
    };
    if caps.is_empty() && !demand_empty {
        return Err(PlanError::NoCandidates);
    }
    let total_polys = caps.iter().fold(0u64, |a, c| a.saturating_add(c.1.polygons));
    let total_tex = caps.iter().fold(0u64, |a, c| a.saturating_add(c.1.texture_bytes));
    if demand_polys > total_polys || demand_tex > total_tex {
        return Err(PlanError::InsufficientResources {
            required_polygons: demand_polys,
            total_poly_headroom: total_polys,
            required_texture: demand_tex,
            total_texture_headroom: total_tex,
        });
    }

    let units = if rebuild { distributable_units(scene) } else { Vec::new() };
    let splitter = |id: NodeId| {
        let (a, b) = split_node(scene, id)?;
        let ca = scene.node(a).expect("split child").own_cost();
        let cb = scene.node(b).expect("split child").own_cost();
        Some([(a, ca), (b, cb)])
    };
    let result =
        if rebuild { state.full_rebuild(units, caps, splitter) } else { state.replan(splitter) };
    result.map(Some).map_err(|e| match e {
        PlaceError::Indivisible { item, polygons, largest_headroom } => {
            PlanError::IndivisibleNode { node: item, polygons, largest_headroom }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_math::Vec3;
    use rave_scene::MeshData;

    fn report(id: u64, polys: u64) -> CapacityReport {
        CapacityReport {
            service: RenderServiceId(id),
            host: format!("host{id}"),
            polys_per_sec: 1e7,
            poly_headroom: polys,
            texture_headroom: u64::MAX,
            volume_hw: false,
            assigned: NodeCost::ZERO,
            rolling_fps: None,
        }
    }

    fn strip_mesh(tris: u32) -> MeshData {
        // A strip along X so spatial splits succeed.
        let mut positions = Vec::new();
        let mut triangles = Vec::new();
        for i in 0..=tris {
            positions.push(Vec3::new(i as f32, 0.0, 0.0));
            positions.push(Vec3::new(i as f32, 1.0, 0.0));
        }
        for i in 0..tris {
            let b = i * 2;
            triangles.push([b, b + 2, b + 3]);
        }
        MeshData::new(positions, triangles)
    }

    fn scene_with_meshes(sizes: &[u32]) -> SceneTree {
        let mut scene = SceneTree::new();
        for (i, &s) in sizes.iter().enumerate() {
            let root = scene.root();
            scene.add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(strip_mesh(s)))).unwrap();
        }
        scene
    }

    #[test]
    fn single_service_takes_everything_that_fits() {
        let mut scene = scene_with_meshes(&[100, 200, 50]);
        let plan = plan_distribution(&mut scene, &[report(1, 1000)]).unwrap();
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].cost.polygons, 350);
        assert_eq!(plan.splits_performed, 0);
    }

    #[test]
    fn load_spreads_across_services() {
        let mut scene = scene_with_meshes(&[400, 400, 400]);
        let plan = plan_distribution(&mut scene, &[report(1, 500), report(2, 500), report(3, 500)])
            .unwrap();
        assert_eq!(plan.assignments.len(), 3, "each service takes one mesh");
        for a in &plan.assignments {
            assert!(a.cost.polygons <= 500, "capacity respected: {:?}", a);
        }
        assert_eq!(plan.total_cost().polygons, 1200);
    }

    #[test]
    fn oversized_mesh_is_split() {
        let mut scene = scene_with_meshes(&[1000]);
        let plan = plan_distribution(&mut scene, &[report(1, 600), report(2, 600)]).unwrap();
        assert!(plan.splits_performed >= 1);
        assert_eq!(plan.total_cost().polygons, 1000, "no triangles lost");
        for a in &plan.assignments {
            assert!(a.cost.polygons <= 600);
        }
        scene.check_invariants().unwrap();
    }

    #[test]
    fn refusal_when_insufficient_total() {
        let mut scene = scene_with_meshes(&[1000]);
        let err = plan_distribution(&mut scene, &[report(1, 300), report(2, 300)]).unwrap_err();
        match err {
            PlanError::InsufficientResources { required_polygons, total_poly_headroom, .. } => {
                assert_eq!(required_polygons, 1000);
                assert_eq!(total_poly_headroom, 600);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Refusal must not have mutated the scene.
        assert_eq!(scene.total_cost().polygons, 1000);
        assert_eq!(scene.len(), 2);
    }

    #[test]
    fn no_candidates_is_an_error() {
        let mut scene = scene_with_meshes(&[10]);
        assert_eq!(plan_distribution(&mut scene, &[]), Err(PlanError::NoCandidates));
    }

    #[test]
    fn plan_error_is_a_std_error_with_explanatory_display() {
        // The §3.2.5 "refused with an explanatory error message": PlanError
        // composes with `?` into boxed-error call chains and renders a
        // human-readable refusal for each variant.
        fn plan_or_box(
            scene: &mut SceneTree,
            candidates: &[CapacityReport],
        ) -> Result<DistributionPlan, Box<dyn std::error::Error>> {
            Ok(plan_distribution(scene, candidates)?)
        }
        let mut scene = scene_with_meshes(&[1000]);
        let err = plan_or_box(&mut scene, &[]).unwrap_err();
        assert_eq!(err.to_string(), "no render services available");

        let err = plan_or_box(&mut scene, &[report(1, 300)]).unwrap_err();
        assert!(err.to_string().contains("insufficient render resources"), "explanatory: {err}");
        assert!(err.to_string().contains("1000"), "names the demand: {err}");

        let indivisible =
            PlanError::IndivisibleNode { node: NodeId(7), polygons: 900, largest_headroom: 50 };
        let msg = indivisible.to_string();
        assert!(msg.contains("cannot be split further"), "{msg}");
        assert!(msg.contains("50"), "{msg}");
    }

    #[test]
    fn split_node_mesh_preserves_world_geometry() {
        let mut scene = scene_with_meshes(&[100]);
        let id = scene.find_by_path("/m0").unwrap();
        let before = scene.world_bounds(scene.root());
        let (a, b) = split_node(&mut scene, id).unwrap();
        let after = scene.world_bounds(scene.root());
        assert_eq!(before, after, "split does not move geometry");
        assert!(matches!(scene.node(id).unwrap().kind(), NodeKind::Group));
        let ca = scene.node(a).unwrap().own_cost().polygons;
        let cb = scene.node(b).unwrap().own_cost().polygons;
        assert_eq!(ca + cb, 100);
    }

    #[test]
    fn split_node_volume_offsets_second_brick() {
        let mut scene = SceneTree::new();
        let vol = rave_scene::VolumeData::new([8, 4, 4], Vec3::ONE, vec![1; 128]);
        let root = scene.root();
        let id = scene.add_node(root, "vol", NodeKind::Volume(Arc::new(vol))).unwrap();
        let (_, b) = split_node(&mut scene, id).unwrap();
        assert_eq!(scene.node(b).unwrap().transform().translation, Vec3::new(4.0, 0.0, 0.0));
    }

    #[test]
    fn oversized_pointcloud_splits_and_distributes() {
        let mut scene = SceneTree::new();
        let root = scene.root();
        let cloud = rave_scene::PointCloudData::new(
            (0..1000).map(|i| Vec3::new(i as f32, 0.0, 0.0)).collect(),
        );
        scene.add_node(root, "pc", NodeKind::PointCloud(Arc::new(cloud))).unwrap();
        // Point headroom is not modelled separately: a point-only scene
        // always "fits" by polygons, so exercise split_node directly.
        let id = scene.find_by_path("/pc").unwrap();
        let (a, b) = split_node(&mut scene, id).unwrap();
        let ca = scene.node(a).unwrap().own_cost().points;
        let cb = scene.node(b).unwrap().own_cost().points;
        assert_eq!(ca + cb, 1000);
        scene.check_invariants().unwrap();
    }

    #[test]
    fn avatar_nodes_not_distributed() {
        let mut scene = scene_with_meshes(&[100]);
        let root = scene.root();
        scene
            .add_node(
                root,
                "avatar",
                NodeKind::Avatar(rave_scene::AvatarInfo {
                    label: "u".into(),
                    color: Vec3::X,
                    camera: rave_scene::CameraParams::default(),
                }),
            )
            .unwrap();
        let plan = plan_distribution(&mut scene, &[report(1, 10_000)]).unwrap();
        assert_eq!(plan.assignments[0].nodes.len(), 1, "only the mesh is assigned");
    }

    #[test]
    fn fine_grained_packing_prefers_spacious_services() {
        // The §3.2.7 scenario: don't shove 100k onto a service with 5k
        // headroom.
        let mut scene = scene_with_meshes(&[100_000, 4_000]);
        let plan = plan_distribution(&mut scene, &[report(1, 5_000), report(2, 150_000)]).unwrap();
        let small_svc = plan.assignment_for(RenderServiceId(1));
        if let Some(a) = small_svc {
            assert!(a.cost.polygons <= 5_000, "small service never overfilled");
        }
        let big_svc = plan.assignment_for(RenderServiceId(2)).unwrap();
        assert!(big_svc.cost.polygons >= 100_000);
    }
}
