//! Warm-standby replication: continuous WAL log shipping and measured
//! promotion (§6 "data servers could mirror each other", production
//! grade).
//!
//! [`crate::mirror`] is the *cold* half of the fail-safe: a one-shot bulk
//! copy of the whole audit trail, paid for at failover time. This module
//! is the warm half. A [`ReplicaLink`] continuously streams the
//! primary's WAL — sealed segments verbatim, plus the unsealed tail past
//! the [`crate::RaveConfig::ship_max_lag`] bound — to a standby data
//! service on another host, through the same serializing
//! `rave_net` channels every other transfer uses. The standby applies
//! each frame to its own on-disk log *and* its in-memory replica, so at
//! promotion time there is (almost) nothing left to do: re-point the
//! subscribers and continue sequence numbers where the primary stopped.
//!
//! Failure enters through the scheduler:
//! [`crate::sched::SchedEvent::DataFailure`] is handled by
//! `rebalance::process_events`, which promotes the standby when a link
//! exists and falls back to the cold
//! [`crate::bootstrap::recover_data_service`] path (durable store, full
//! re-bootstrap of every subscriber) when one does not.

use crate::ids::{DataServiceId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_scene::InterestSet;
use rave_sim::SimTime;
use rave_store::ship::{Shipper, StandbyLog, ACK_BYTES};
use rave_store::{StoreConfig, Wal};
use std::io;
use std::path::{Path, PathBuf};

/// One live replication link, owned by the world and keyed by primary.
#[derive(Debug)]
pub struct ReplicaLink {
    pub primary: DataServiceId,
    pub standby: DataServiceId,
    /// The primary's WAL directory frames are planned from.
    pub primary_dir: PathBuf,
    /// The standby's durable log (its directory is a prefix of the
    /// primary's, and becomes the promoted service's store).
    pub log: StandbyLog,
    /// Highest sequence number the standby has acknowledged.
    pub acked_seq: u64,
    /// Optimistic cursor covering frames still in flight, so overlapping
    /// ship ticks never re-send what an earlier tick already queued.
    pub shipped_seq: u64,
    /// Segment index the standby asked to have re-shipped (torn frame).
    pub resend: Option<u64>,
    /// Frames sent but not yet acknowledged.
    pub in_flight: usize,
    /// Lifetime accounting, for traces and benches.
    pub shipped_frames: u64,
    pub shipped_bytes: u64,
}

/// What [`promote_standby`] did, for the scheduler's outcome record and
/// for benches measuring recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionReport {
    pub failed: DataServiceId,
    pub promoted: DataServiceId,
    /// True for a warm (log-shipped) promotion; false for the cold
    /// recover-from-store fallback.
    pub warm: bool,
    /// Subscribers re-pointed at the promoted service.
    pub subscribers_moved: usize,
    /// Durably shipped entries the standby had not yet applied in memory
    /// and replayed at promotion time (normally 0 for a warm standby).
    pub residual_entries: usize,
    /// Wire bytes of those residual entries.
    pub replayed_bytes: u64,
    /// Committed updates the primary held that never reached the
    /// standby's log — bounded by the configured lag.
    pub lost_updates: u64,
    /// Virtual time at which the last subscriber flip completes.
    pub completed_at: SimTime,
}

/// Establish a warm standby for `primary` (whose WAL lives under
/// `primary_dir`): the standby service resumes from whatever prefix its
/// own directory already holds — a restarted standby does NOT re-ship
/// history it kept — and the link starts shipping from that cursor on
/// the next [`ship_tick`].
pub fn establish_standby(
    sim: &mut RaveSim,
    primary: DataServiceId,
    standby: DataServiceId,
    primary_dir: impl AsRef<Path>,
    standby_dir: impl AsRef<Path>,
) -> io::Result<u64> {
    let log = StandbyLog::open(standby_dir.as_ref())?;
    let resumed_from = log.last_seq();
    // Seed the standby's in-memory replica from its durable prefix, so
    // memory and disk advance together from one consistent point.
    let rec = rave_store::recover(standby_dir.as_ref())?;
    {
        let ds = sim.world.data_mut(standby);
        if rec.last_seq > ds.audit.last_seq() {
            ds.scene = rec.tree;
            ds.observe_seq(rec.last_seq);
        }
        for e in &rec.entries {
            // A re-established link over a live standby already holds a
            // prefix in memory; only record past it.
            if e.stamped.seq > ds.audit.last_seq() {
                ds.audit
                    .record(e.at_secs, e.stamped.clone())
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
            }
        }
    }
    sim.world.replicas.insert(
        primary,
        ReplicaLink {
            primary,
            standby,
            primary_dir: primary_dir.as_ref().to_path_buf(),
            log,
            acked_seq: resumed_from,
            shipped_seq: resumed_from,
            resend: None,
            in_flight: 0,
            shipped_frames: 0,
            shipped_bytes: 0,
        },
    );
    let now = sim.now();
    sim.world.trace.record(
        now,
        TraceKind::LogShip,
        format!("{standby} standing by for {primary} (resumed from seq {resumed_from})"),
    );
    Ok(resumed_from)
}

/// One replication round: plan frames past the link's cursor (bounded by
/// the ack window), charge each over the primary→standby channel, apply
/// on arrival (disk + in-memory replica), and charge the ack back.
/// Returns the number of frames put in flight.
pub fn ship_tick(sim: &mut RaveSim, primary: DataServiceId) -> io::Result<usize> {
    let cfg = sim.world.config.clone();
    let Some(link) = sim.world.replicas.get(&primary) else { return Ok(0) };
    let window = cfg.ship_ack_window.saturating_sub(link.in_flight);
    if window == 0 {
        return Ok(0);
    }
    let standby = link.standby;
    let shipper = Shipper::new(&link.primary_dir);
    let (shipped_seq, resend) = (link.shipped_seq, link.resend);
    // The primary must flush its WAL before frames leave the host: a
    // frame must never describe bytes the OS still holds in a buffer.
    sim.world.data_mut(primary).sync_persistence()?;
    let frames = shipper.plan(shipped_seq, resend, cfg.ship_max_lag, window)?;
    if frames.is_empty() {
        return Ok(0);
    }
    let p_host = sim.world.data(primary).host.clone();
    let s_host = sim.world.data(standby).host.clone();
    let shipped = frames.len();
    let now = sim.now();
    for frame in frames {
        let bytes = frame.wire_size();
        {
            let link = sim.world.replicas.get_mut(&primary).expect("link checked above");
            link.in_flight += 1;
            link.shipped_frames += 1;
            link.shipped_bytes += bytes;
            if let Some(last) = frame.last_seq() {
                link.shipped_seq = link.shipped_seq.max(last);
            }
        }
        sim.world.trace.record(
            now,
            TraceKind::LogShip,
            format!("{primary} -> {standby}: {} ({bytes} bytes)", frame.describe()),
        );
        let arrival = sim.world.send_bytes(now, &p_host, &s_host, bytes);
        let (p_host, s_host) = (p_host.clone(), s_host.clone());
        sim.schedule_at(arrival, move |sim| {
            let at = sim.now();
            // The link may have been torn down (promotion) while the
            // frame was on the wire; late frames are simply dropped.
            let Some(link) = sim.world.replicas.get_mut(&primary) else { return };
            let apply = link.log.apply(&frame).expect("standby applies shipped frame");
            let ack = apply.ack;
            for e in &apply.entries {
                // The shipped log is authoritative: divergence between it
                // and the in-memory replica is a bug, not a condition.
                sim.world
                    .data_mut(standby)
                    .commit(e.at_secs, &e.stamped)
                    .expect("standby replays primary log");
            }
            // For tail-sealed coverage the tail cursor is what the sealed
            // frame ends at; keep the optimistic cursor monotone.
            if let Some(link) = sim.world.replicas.get_mut(&primary) {
                link.shipped_seq = link.shipped_seq.max(ack.last_seq);
            }
            let ack_arrival = sim.world.send_bytes(at, &s_host, &p_host, ACK_BYTES);
            sim.schedule_at(ack_arrival, move |sim| {
                let at = sim.now();
                let Some(link) = sim.world.replicas.get_mut(&primary) else { return };
                link.in_flight = link.in_flight.saturating_sub(1);
                link.acked_seq = link.acked_seq.max(ack.last_seq);
                link.resend = ack.resend;
                // Once the pipe drains, re-sync the optimistic cursor to
                // what the standby actually holds (a declined or torn
                // frame leaves them apart; re-planning from the acked
                // cursor re-ships the difference).
                if link.in_flight == 0 && link.acked_seq < link.shipped_seq {
                    link.shipped_seq = link.acked_seq;
                }
                if let Some(idx) = ack.resend {
                    sim.world.trace.record(
                        at,
                        TraceKind::LogShip,
                        format!(
                            "{standby} -> {primary}: ack seq {} torn, re-requesting segment #{idx}",
                            ack.last_seq,
                        ),
                    );
                }
            });
        });
    }
    Ok(shipped)
}

/// Periodic replication driver: run [`ship_tick`] every
/// [`crate::RaveConfig::ship_interval`] until the horizon, stopping by
/// itself once the link (or the primary) is gone.
pub fn run_log_shipping(sim: &mut RaveSim, primary: DataServiceId, horizon: SimTime) {
    fn tick(sim: &mut RaveSim, primary: DataServiceId, horizon: SimTime) {
        if !sim.world.replicas.contains_key(&primary)
            || !sim.world.data_services.contains_key(&primary)
        {
            return;
        }
        if let Err(e) = ship_tick(sim, primary) {
            let now = sim.now();
            sim.world.trace.record(
                now,
                TraceKind::LogShip,
                format!("{primary}: shipping stopped: {e}"),
            );
            return;
        }
        let next = sim.now() + sim.world.config.ship_interval;
        if next <= horizon {
            sim.schedule_at(next, move |sim| tick(sim, primary, horizon));
        }
    }
    let first = sim.now() + sim.world.config.ship_interval;
    sim.schedule_at(first, move |sim| tick(sim, primary, horizon));
}

/// Promote the warm standby of a failed primary. The primary is removed
/// from the world and the registry; the standby replays any durably
/// shipped entries it had not yet applied in memory, attaches the
/// shipped store (sequence numbers and logging continue on the shipped
/// segments), and every subscriber is re-pointed with one control round
/// trip charged per flip — no snapshot marshal, no trail re-replay.
///
/// Returns `None` when `primary` has no replica link.
pub fn promote_standby(
    sim: &mut RaveSim,
    primary: DataServiceId,
) -> io::Result<Option<PromotionReport>> {
    let Some(link) = sim.world.replicas.remove(&primary) else { return Ok(None) };
    let now = sim.now();
    let standby = link.standby;
    // The failed instance: its in-memory state is gone with the host,
    // but as the simulator we can still read it to *report* loss.
    let failed = sim
        .world
        .data_services
        .remove(&primary)
        .unwrap_or_else(|| panic!("no data service {primary} to promote away from"));
    sim.world.registry.unpublish("RAVE", &failed.host, &failed.name);

    // Residual: entries on the standby's disk (shipped, durable) that
    // its in-memory replica has not applied yet — e.g. the standby
    // process restarted after the last apply. Normally empty.
    let applied = sim.world.data(standby).audit.last_seq();
    let residual = Wal::replay_after(link.log.dir(), applied)?;
    let replayed_bytes: u64 = residual.iter().map(|e| e.stamped.wire_size()).sum();
    for e in &residual {
        sim.world
            .data_mut(standby)
            .commit(e.at_secs, &e.stamped)
            .expect("standby replays shipped log");
    }
    // The shipped directory *is* a WAL: attach it so the promoted
    // service appends (and checkpoints) where shipping stopped.
    let store_cfg =
        StoreConfig { checkpoint_every: sim.world.config.checkpoint_every, ..Default::default() };
    sim.world.data_mut(standby).attach_store(link.log.dir(), store_cfg)?;

    let standby_last = sim.world.data(standby).audit.last_seq();
    let lost = failed.audit.last_seq().saturating_sub(standby_last);

    // Re-point subscribers: each flip is one small control round trip
    // from the promoted host — the replicas themselves are already warm,
    // so there is no bootstrap marshal and no buffered-update replay.
    let s_host = sim.world.data(standby).host.clone();
    let mut completed_at = now;
    let subs: Vec<(RenderServiceId, InterestSet)> =
        failed.subscribers.iter().map(|(rs, sub)| (*rs, sub.interest.clone())).collect();
    for (rs, interest) in &subs {
        let rs_host = sim.world.render(*rs).host.clone();
        let rtt = sim.world.network.round_trip(&s_host, &rs_host, 128, 64);
        let at = now + rtt;
        completed_at = completed_at.max(at);
        let (rs, interest) = (*rs, interest.clone());
        sim.schedule_at(at, move |sim| {
            sim.world.data_mut(standby).subscribe_live(rs, interest);
        });
    }
    let report = PromotionReport {
        failed: primary,
        promoted: standby,
        warm: true,
        subscribers_moved: subs.len(),
        residual_entries: residual.len(),
        replayed_bytes,
        lost_updates: lost,
        completed_at,
    };
    sim.world.trace.record(
        now,
        TraceKind::Promote,
        format!(
            "{primary} -> {standby}: promoted at seq {standby_last} \
             ({} subscriber(s) re-pointed, {} residual entr(ies) replayed, \
             {lost} committed update(s) lost)",
            subs.len(),
            residual.len(),
        ),
    );
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rebalance::process_events;
    use crate::sched::SchedEvent;
    use crate::world::{publish_update, RaveWorld};
    use crate::RaveConfig;
    use rave_scene::{NodeKind, SceneUpdate};
    use rave_sim::Simulation;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rave-replica-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(sim: &mut RaveSim, ds: DataServiceId, name: &str) -> rave_scene::NodeId {
        let id = sim.world.data_mut(ds).scene.allocate_id();
        publish_update(
            sim,
            ds,
            "u",
            SceneUpdate::AddNode {
                id,
                parent: rave_scene::NodeId(0),
                name: name.into(),
                kind: NodeKind::Group,
            },
        )
        .unwrap();
        id
    }

    /// Primary with a durable store + subscriber + warm standby, shipping.
    fn warm_world(
        tag: &str,
        max_lag: u64,
    ) -> (RaveSim, DataServiceId, DataServiceId, RenderServiceId, PathBuf, PathBuf) {
        let cfg = RaveConfig { ship_max_lag: max_lag, ..Default::default() };
        let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 7));
        let primary = sim.world.spawn_data_service("adrenochrome", "sess");
        let standby = sim.world.spawn_data_service("tower", "sess-standby");
        let rs = sim.world.spawn_render_service("laptop");
        sim.world.data_mut(primary).subscribe_live(rs, rave_scene::InterestSet::everything());
        let pdir = tmp_dir(&format!("{tag}-p"));
        let sdir = tmp_dir(&format!("{tag}-s"));
        // Small segments force rotations; huge checkpoint interval keeps
        // the whole WAL around for shipping.
        let store_cfg = StoreConfig {
            segment_max_bytes: 512,
            checkpoint_every: u64::MAX / 2,
            sync_writes: false,
        };
        sim.world.data_mut(primary).attach_store(&pdir, store_cfg).unwrap();
        establish_standby(&mut sim, primary, standby, &pdir, &sdir).unwrap();
        (sim, primary, standby, rs, pdir, sdir)
    }

    #[test]
    fn shipping_keeps_standby_in_lockstep() {
        let (mut sim, primary, standby, _, pdir, sdir) = warm_world("lockstep", 0);
        let horizon = sim.now() + SimTime::from_secs(30.0);
        run_log_shipping(&mut sim, primary, horizon);
        for i in 0..40 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.run();
        let p = sim.world.data(primary);
        let s = sim.world.data(standby);
        assert_eq!(s.audit.last_seq(), p.audit.last_seq(), "{}", sim.world.trace.render());
        assert_eq!(s.scene, p.scene);
        assert!(sim.world.trace.count(TraceKind::LogShip) > 1);
        // The standby's directory recovers to the same state.
        let rec = rave_store::recover(&sdir).unwrap();
        assert_eq!(rec.last_seq, p.audit.last_seq());
        assert_eq!(rec.tree, p.scene);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn lag_bound_limits_unshipped_tail() {
        let (mut sim, primary, standby, _, pdir, sdir) = warm_world("lag", 8);
        let horizon = sim.now() + SimTime::from_secs(30.0);
        run_log_shipping(&mut sim, primary, horizon);
        for i in 0..30 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.run();
        let p_last = sim.world.data(primary).audit.last_seq();
        let s_last = sim.world.data(standby).audit.last_seq();
        assert!(p_last - s_last <= 8, "lag {} exceeds bound", p_last - s_last);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn data_failure_event_promotes_the_standby_with_zero_loss() {
        let (mut sim, primary, standby, rs, pdir, sdir) = warm_world("promote", 0);
        let horizon = sim.now() + SimTime::from_secs(60.0);
        run_log_shipping(&mut sim, primary, horizon);
        for i in 0..25 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.run();
        let committed = sim.world.data(primary).audit.last_seq();

        let outcome =
            process_events(&mut sim, primary, &[SchedEvent::DataFailure { service: primary }]);
        assert_eq!(outcome.promotions.len(), 1, "{}", sim.world.trace.render());
        let report = &outcome.promotions[0];
        assert!(report.warm);
        assert_eq!(report.promoted, standby);
        assert_eq!(report.lost_updates, 0, "zero committed updates lost at lag 0");
        assert_eq!(report.subscribers_moved, 1);
        sim.run();

        // The primary is gone; the standby owns the session and the
        // subscriber, and sequence numbers continue.
        assert!(!sim.world.data_services.contains_key(&primary));
        assert_eq!(sim.world.data(standby).audit.last_seq(), committed);
        assert!(sim.world.data(standby).subscribers.contains_key(&rs));
        let id = add(&mut sim, standby, "post-promotion");
        sim.run();
        assert!(sim.world.render(rs).scene.contains(id), "subscriber keeps receiving updates");
        let seq = sim.world.data(standby).audit.last_seq();
        assert_eq!(seq, committed + 1, "sequence continues past the primary's");
        // And the promoted service logs durably to the shipped store.
        assert_eq!(sim.world.data(standby).store_dir.as_deref(), Some(sdir.as_path()));
        sim.world.data_mut(standby).sync_persistence().unwrap();
        assert_eq!(rave_store::recover(&sdir).unwrap().last_seq, seq);
        assert_eq!(sim.world.trace.count(TraceKind::Promote), 1);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn promotion_loss_is_bounded_by_the_lag() {
        let (mut sim, primary, _standby, _, pdir, sdir) = warm_world("lagloss", 8);
        let horizon = sim.now() + SimTime::from_secs(60.0);
        run_log_shipping(&mut sim, primary, horizon);
        for i in 0..30 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.run();
        let outcome =
            process_events(&mut sim, primary, &[SchedEvent::DataFailure { service: primary }]);
        let report = &outcome.promotions[0];
        assert!(report.lost_updates <= 8, "lost {} > lag bound", report.lost_updates);
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }

    #[test]
    fn data_failure_without_standby_falls_back_to_cold_recovery() {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 7));
        let primary = sim.world.spawn_data_service("adrenochrome", "sess");
        let rs = sim.world.spawn_render_service("laptop");
        sim.world.data_mut(primary).subscribe_live(rs, rave_scene::InterestSet::everything());
        let pdir = tmp_dir("cold-p");
        sim.world.data_mut(primary).attach_store(&pdir, StoreConfig::default()).unwrap();
        for i in 0..10 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.world.data_mut(primary).sync_persistence().unwrap();
        sim.run();
        let outcome =
            process_events(&mut sim, primary, &[SchedEvent::DataFailure { service: primary }]);
        sim.run();
        assert_eq!(outcome.promotions.len(), 1);
        let report = &outcome.promotions[0];
        assert!(!report.warm, "no link: cold recovery path");
        assert!(!sim.world.data_services.contains_key(&primary));
        let new_ds = report.promoted;
        assert_eq!(sim.world.data(new_ds).audit.last_seq(), 10);
        assert!(sim.world.data(new_ds).subscribers.contains_key(&rs));
        assert_eq!(sim.world.trace.count(TraceKind::Recovery), 1);
        let _ = std::fs::remove_dir_all(&pdir);
    }

    #[test]
    fn data_failure_with_nothing_durable_is_refused() {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 7));
        let primary = sim.world.spawn_data_service("adrenochrome", "sess");
        add(&mut sim, primary, "n");
        let outcome =
            process_events(&mut sim, primary, &[SchedEvent::DataFailure { service: primary }]);
        assert!(outcome.promotions.is_empty());
        assert!(outcome.refused);
        assert_eq!(sim.world.trace.count(TraceKind::Refusal), 1);
    }

    #[test]
    fn standby_restart_resumes_from_its_durable_prefix() {
        let (mut sim, primary, standby, _, pdir, sdir) = warm_world("restart", 0);
        let horizon = sim.now() + SimTime::from_secs(30.0);
        run_log_shipping(&mut sim, primary, horizon);
        for i in 0..20 {
            add(&mut sim, primary, &format!("n{i}"));
        }
        sim.run();
        let shipped_before = sim.world.replicas.get(&primary).unwrap().shipped_bytes;
        // "Restart" the standby process: tear the link down and
        // re-establish over the same directories.
        sim.world.replicas.remove(&primary);
        let resumed_from = establish_standby(&mut sim, primary, standby, &pdir, &sdir).unwrap();
        assert_eq!(resumed_from, 20, "resume cursor is the durable prefix, not zero");
        // Nothing new to ship: the re-established link stays quiet.
        let shipped = ship_tick(&mut sim, primary).unwrap();
        assert_eq!(shipped, 0, "no re-shipping of held history");
        let _ = shipped_before;
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&sdir);
    }
}
