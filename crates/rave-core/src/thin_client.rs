//! The thin client (§3.1.3): a PDA-class device that "has no or very
//! modest local rendering resources" and receives rendered frames from a
//! render service.

use crate::config::CompressionMode;
use crate::frame_stream;
use crate::ids::{ClientId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_compress::adaptive::EndpointSpeed;
use rave_math::Viewport;
use rave_render::machine::PdaProfile;
use rave_render::OffscreenMode;
use rave_scene::CameraParams;
use rave_sim::{Histogram, SimTime};

/// How the client converts received bytes into a displayable image —
/// §5.1's J2ME-vs-C++ finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportMode {
    /// J2ME per-pixel "manual" conversion (over two minutes per frame).
    J2me,
    /// C/C++ pointer cast (minimal overhead) — what the Zaurus client
    /// actually shipped with.
    NativeCast,
}

/// Per-frame timing breakdown, mirroring Table 2's columns.
#[derive(Debug, Clone, Default)]
pub struct FrameStats {
    pub frames: u64,
    /// Inter-display period (1/fps).
    pub periods: Histogram,
    /// Request → displayed (Table 2 "Total Latency").
    pub total_latency: Histogram,
    /// Wire time of the image (Table 2 "Image Receipt Time").
    pub receipt: Histogram,
    /// Render-service render time (Table 2 "Render").
    pub render: Histogram,
    /// Decode + import + blit + GUI (Table 2 "Other Overheads").
    pub other_overheads: Histogram,
    pub last_display: Option<SimTime>,
    /// Raw 24 bpp bytes the received frames represent.
    pub logical_bytes: u64,
    /// Bytes that actually crossed the wire (== logical in Raw mode).
    pub encoded_bytes: u64,
}

impl FrameStats {
    pub fn fps(&mut self) -> f64 {
        let p = self.periods.mean();
        if p <= 0.0 {
            0.0
        } else {
            1.0 / p
        }
    }

    /// Achieved wire/logical compression ratio (1.0 with no frames or an
    /// uncompressed stream).
    pub fn compression_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// A thin client instance.
#[derive(Debug, Clone)]
pub struct ThinClient {
    pub id: ClientId,
    pub host: String,
    pub pda: PdaProfile,
    pub import_mode: ImportMode,
    pub render_service: Option<RenderServiceId>,
    pub viewport: Viewport,
    pub camera: CameraParams,
    pub stats: FrameStats,
}

impl ThinClient {
    pub fn new(id: ClientId, host: &str) -> Self {
        Self {
            id,
            host: host.into(),
            pda: PdaProfile::zaurus(),
            import_mode: ImportMode::NativeCast,
            render_service: None,
            viewport: Viewport::new(200, 200),
            camera: CameraParams::default(),
            stats: FrameStats::default(),
        }
    }

    /// Image import time under the configured mode.
    pub fn import_time(&self, bytes: u64) -> f64 {
        match self.import_mode {
            ImportMode::J2me => self.pda.import_j2me(bytes),
            ImportMode::NativeCast => self.pda.import_cast(bytes),
        }
    }
}

/// Connect a thin client to a render service (opens an off-screen session
/// sized to the client's viewport).
pub fn connect(sim: &mut RaveSim, client_id: ClientId, rs_id: RenderServiceId) {
    let (viewport, camera) = {
        let c = sim.world.client_mut(client_id);
        c.render_service = Some(rs_id);
        (c.viewport, c.camera)
    };
    sim.world.render_mut(rs_id).open_session(
        client_id,
        viewport,
        camera,
        OffscreenMode::Sequential,
    );
}

/// Stream `frames` frames to the client: the §5.1 measurement loop.
/// Each cycle: interaction request → off-screen render → image transfer →
/// import/blit → display → next request ("local and remote simply
/// rendering best effort and continuously stream images to the user").
pub fn stream_frames(sim: &mut RaveSim, client_id: ClientId, frames: u64) {
    if frames == 0 {
        return;
    }
    frame_cycle(sim, client_id, frames);
}

fn frame_cycle(sim: &mut RaveSim, client_id: ClientId, remaining: u64) {
    let t0 = sim.now();
    let Some(rs_id) = sim.world.client(client_id).render_service else { return };
    let client_host = sim.world.client(client_id).host.clone();
    let rs_host = sim.world.render(rs_id).host.clone();

    // 1. Interaction/camera request (small control message).
    let t_request_arrives = sim.world.send_bytes(t0, &client_host, &rs_host, 64);

    // 2. Off-screen render at the service.
    let render_cost = sim
        .world
        .render(rs_id)
        .offscreen_render_cost(client_id)
        .expect("thin client session must be off-screen capable");
    let t_rendered = t_request_arrives + SimTime::from_secs(render_cost.total());

    // 3. Image transfer back: uncompressed 24 bpp (the paper's baseline)
    // or the adaptive compressed stream, per config.
    let frame_bytes = {
        let c = sim.world.client(client_id);
        c.viewport.pixel_count() as u64 * 3
    };
    let (t_image_arrives, decode_secs, encoded_bytes) = match sim.world.config.frame_compression {
        CompressionMode::Raw => {
            let t = sim.world.send_bytes(t_rendered, &rs_host, &client_host, frame_bytes);
            (t, 0.0, frame_bytes)
        }
        CompressionMode::Adaptive => {
            let (vp, seq) = {
                let c = sim.world.client(client_id);
                (c.viewport, c.stats.frames)
            };
            // Real pixels when the world renders them, else a synthetic
            // render-shaped frame so timing runs still exercise the codec
            // path with representative content.
            let rgb = if sim.world.config.produce_images {
                sim.world
                    .render_mut(rs_id)
                    .rasterize(client_id)
                    .map(|fb| fb.to_rgb_bytes())
                    .unwrap_or_else(|| frame_stream::synthesize_frame(vp.width, vp.height, seq))
            } else {
                frame_stream::synthesize_frame(vp.width, vp.height, seq)
            };
            let allow_lossy = sim.world.config.allow_lossy_frames;
            let out = frame_stream::send_frame(
                &mut sim.world,
                t_rendered,
                rs_id,
                client_id,
                &rs_host,
                &client_host,
                &rgb,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                allow_lossy,
            );
            (out.arrival, out.decode_secs, out.encoded_bytes)
        }
    };
    let receipt = t_image_arrives - t_rendered;

    // 4. Decode (adaptive mode) + import + blit + GUI overhead at the
    // client, then display.
    let (import, overhead) = {
        let c = sim.world.client(client_id);
        (c.import_time(frame_bytes), c.pda.frame_overhead)
    };
    let client_cpu = decode_secs + import + overhead;
    let t_displayed = t_image_arrives + SimTime::from_secs(client_cpu);

    let window = sim.world.config.fps_window;
    sim.schedule_at(t_displayed, move |sim| {
        let now = sim.now();
        {
            let rs = sim.world.render_mut(rs_id);
            rs.record_frame(now, window);
        }
        {
            let c = sim.world.client_mut(client_id);
            c.stats.frames += 1;
            c.stats.total_latency.record((now - t0).as_secs());
            c.stats.receipt.record(receipt.as_secs());
            c.stats.render.record(render_cost.total());
            c.stats.other_overheads.record(client_cpu);
            c.stats.logical_bytes += frame_bytes;
            c.stats.encoded_bytes += encoded_bytes;
            if let Some(last) = c.stats.last_display {
                c.stats.periods.record((now - last).as_secs());
            }
            c.stats.last_display = Some(now);
        }
        sim.world.trace.record(
            now,
            TraceKind::FrameDelivered,
            format!("{client_id} frame via {rs_id}"),
        );
        if remaining > 1 {
            frame_cycle(sim, client_id, remaining - 1);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{RaveSim, RaveWorld};
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeKind};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn world_with_model(polys: usize) -> (RaveSim, ClientId, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 7));
        let rs = sim.world.spawn_render_service("laptop");
        let mesh = MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; polys],
            texture_bytes: 0,
        };
        let scene = &mut sim.world.render_mut(rs).scene;
        let root = scene.root();
        scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        let cl = sim.world.spawn_thin_client("zaurus");
        connect(&mut sim, cl, rs);
        (sim, cl, rs)
    }

    #[test]
    fn hand_streaming_matches_table2_shape() {
        // 0.83M polygons at 200x200 over wireless: paper reports 2.9 fps,
        // 0.339s total latency, 0.201s receipt, 0.091s render.
        let (mut sim, cl, _) = world_with_model(830_000);
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &mut sim.world.client_mut(cl).stats;
        assert_eq!(stats.frames, 12);
        let fps = stats.fps();
        assert!((2.2..3.6).contains(&fps), "hand fps {fps} (paper 2.9)");
        let lat = stats.total_latency.mean();
        assert!((0.28..0.42).contains(&lat), "latency {lat} (paper 0.339)");
        let receipt = stats.receipt.mean();
        assert!((0.17..0.24).contains(&receipt), "receipt {receipt} (paper 0.201)");
    }

    #[test]
    fn skeleton_slower_than_hand() {
        let (mut sim, cl, _) = world_with_model(2_800_000);
        stream_frames(&mut sim, cl, 8);
        sim.run();
        let fps = sim.world.client_mut(cl).stats.fps();
        assert!((1.2..2.1).contains(&fps), "skeleton fps {fps} (paper 1.6)");
    }

    #[test]
    fn j2me_import_destroys_frame_rate() {
        let (mut sim, cl, _) = world_with_model(10_000);
        sim.world.client_mut(cl).import_mode = ImportMode::J2me;
        stream_frames(&mut sim, cl, 3);
        sim.run();
        let stats = &mut sim.world.client_mut(cl).stats;
        assert!(
            stats.total_latency.mean() > 100.0,
            "J2ME frame takes minutes: {}",
            stats.total_latency.mean()
        );
    }

    #[test]
    fn bigger_viewport_lowers_fps() {
        // §5.1: 640x480 would fall to ~0.6 fps.
        let (mut sim, cl, rs) = world_with_model(10_000);
        sim.world.client_mut(cl).viewport = Viewport::new(640, 480);
        // Reconnect with the larger viewport.
        connect(&mut sim, cl, rs);
        stream_frames(&mut sim, cl, 5);
        sim.run();
        let fps = sim.world.client_mut(cl).stats.fps();
        assert!((0.4..0.8).contains(&fps), "640x480 fps {fps} (paper ~0.6)");
    }

    #[test]
    fn render_service_load_tracked() {
        let (mut sim, cl, rs) = world_with_model(830_000);
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let fps = sim.world.render(rs).rolling_fps().unwrap();
        assert!(fps < 5.0, "render service sees its own low fps: {fps}");
        assert_eq!(sim.world.trace.count(TraceKind::FrameDelivered), 12);
    }

    #[test]
    fn adaptive_compression_raises_wireless_fps() {
        // The same §5.1 hand scenario as hand_streaming_matches_table2_shape
        // (0.83M polys, 200x200, wireless), with the raw 24 bpp transfer
        // replaced by the adaptive compressed stream.
        let (mut sim_raw, cl_raw, _) = world_with_model(830_000);
        stream_frames(&mut sim_raw, cl_raw, 12);
        sim_raw.run();
        let fps_raw = sim_raw.world.client_mut(cl_raw).stats.fps();

        let (mut sim, cl, _) = world_with_model(830_000);
        sim.world.config.frame_compression = crate::config::CompressionMode::Adaptive;
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &mut sim.world.client_mut(cl).stats;
        assert_eq!(stats.frames, 12);
        let fps = stats.fps();
        assert!(fps > fps_raw * 1.2, "adaptive stream beats the raw baseline: {fps} vs {fps_raw}");
        assert!(
            stats.compression_ratio() < 0.5,
            "wire traffic shrank: ratio {}",
            stats.compression_ratio()
        );
        assert!(stats.encoded_bytes < stats.logical_bytes);
    }

    #[test]
    fn raw_mode_books_equal_logical_and_encoded_bytes() {
        let (mut sim, cl, _) = world_with_model(10_000);
        stream_frames(&mut sim, cl, 3);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.logical_bytes, stats.encoded_bytes);
        assert_eq!(stats.logical_bytes, 3 * 200 * 200 * 3);
        assert_eq!(stats.compression_ratio(), 1.0);
    }

    #[test]
    fn stream_zero_frames_is_noop() {
        let (mut sim, cl, _) = world_with_model(100);
        stream_frames(&mut sim, cl, 0);
        sim.run();
        assert_eq!(sim.world.client_mut(cl).stats.frames, 0);
    }
}
