//! The thin client (§3.1.3): a PDA-class device that "has no or very
//! modest local rendering resources" and receives rendered frames from a
//! render service.
//!
//! Frame delivery runs through an explicit staged pipeline
//! ([`FramePipeline`]): request → render (service GPU) → encode (service
//! CPU) → transmit (wire) → decode/import/blit (client CPU) → display.
//! Each stage is a separate occupancy timeline, so with
//! `pipeline_depth ≥ 2` the render of frame N+1 overlaps the
//! encode/transmit of frame N and the decode/import of frame N−1 — the
//! stream's rate collapses to the bottleneck stage instead of the sum of
//! all stages. Depth 1 keeps every stage idle when its frame arrives and
//! reproduces the paper's strictly serial §5.1 cycle (and Table 2's
//! timings) bit-identically.

use crate::config::CompressionMode;
use crate::frame_stream;
use crate::ids::{ClientId, RenderServiceId};
use crate::trace::TraceKind;
use crate::world::RaveSim;
use rave_compress::adaptive::EndpointSpeed;
use rave_math::Viewport;
use rave_render::machine::PdaProfile;
use rave_render::OffscreenMode;
use rave_scene::CameraParams;
use rave_sim::{Histogram, Occupancy, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// How the client converts received bytes into a displayable image —
/// §5.1's J2ME-vs-C++ finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportMode {
    /// J2ME per-pixel "manual" conversion (over two minutes per frame).
    J2me,
    /// C/C++ pointer cast (minimal overhead) — what the Zaurus client
    /// actually shipped with.
    NativeCast,
}

/// Per-frame counts of which resource bound each displayed frame: the
/// stage the frame stalled on (waited for a previous in-flight frame to
/// release), or — stall-free — the stage that consumed the largest share
/// of its life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundCounts {
    /// Frames bound by the render service's GPU.
    pub render: u64,
    /// Frames bound by transport: encode CPU + wire occupancy.
    pub wire: u64,
    /// Frames bound by the client's decode/import/blit CPU.
    pub client: u64,
}

impl BoundCounts {
    /// The most common binding resource ("render", "wire", or "client";
    /// ties resolve in that order).
    pub fn dominant(&self) -> &'static str {
        if self.render >= self.wire && self.render >= self.client {
            "render"
        } else if self.wire >= self.client {
            "wire"
        } else {
            "client"
        }
    }
}

/// The binding resource of one frame (internal; aggregated into
/// [`BoundCounts`] at display time).
#[derive(Debug, Clone, Copy)]
enum Bound {
    Render,
    Wire,
    Client,
}

impl Bound {
    fn name(self) -> &'static str {
        match self {
            Bound::Render => "render",
            Bound::Wire => "wire",
            Bound::Client => "client",
        }
    }
}

/// Per-frame timing breakdown, mirroring Table 2's columns, plus the
/// pipeline's per-stage occupancy and binding-resource books.
#[derive(Debug, Clone, Default)]
pub struct FrameStats {
    pub frames: u64,
    /// Inter-display period (1/fps).
    pub periods: Histogram,
    /// Request → displayed (Table 2 "Total Latency").
    pub total_latency: Histogram,
    /// Wire time of the image (Table 2 "Image Receipt Time").
    pub receipt: Histogram,
    /// Render-service render time (Table 2 "Render").
    pub render: Histogram,
    /// Decode + import + blit + GUI (Table 2 "Other Overheads").
    pub other_overheads: Histogram,
    pub last_display: Option<SimTime>,
    /// Raw 24 bpp bytes the received frames represent.
    pub logical_bytes: u64,
    /// Bytes that actually crossed the wire (== logical in Raw mode).
    pub encoded_bytes: u64,
    /// Cumulative busy seconds per pipeline stage over the displayed
    /// frames: service GPU, encoder CPU, wire (tx only), client CPU.
    pub render_busy: f64,
    pub encode_busy: f64,
    pub wire_busy: f64,
    pub client_busy: f64,
    /// Which resource bound each displayed frame.
    pub bound_by: BoundCounts,
    /// Frames that waited on a busy stage, and total seconds waited.
    /// Always zero at `pipeline_depth = 1` (no overlap, nothing to wait
    /// on).
    pub stalled_frames: u64,
    pub stall_secs: f64,
}

impl FrameStats {
    pub fn fps(&self) -> f64 {
        let p = self.periods.mean();
        if p <= 0.0 {
            0.0
        } else {
            1.0 / p
        }
    }

    /// Achieved wire/logical compression ratio (1.0 with no frames or an
    /// uncompressed stream).
    pub fn compression_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Fraction of `span` the render service's GPU spent on this stream.
    pub fn render_utilization(&self, span: SimTime) -> f64 {
        frac(self.render_busy, span)
    }

    /// Fraction of `span` the wire carried this stream's frames (tx time
    /// only — the serial baseline leaves it idle during render/display).
    pub fn wire_utilization(&self, span: SimTime) -> f64 {
        frac(self.wire_busy, span)
    }

    /// Fraction of `span` the client CPU spent decoding/importing.
    pub fn client_utilization(&self, span: SimTime) -> f64 {
        frac(self.client_busy, span)
    }
}

fn frac(busy: f64, span: SimTime) -> f64 {
    let s = span.as_secs();
    if s <= 0.0 {
        0.0
    } else {
        busy / s
    }
}

/// A thin client instance.
#[derive(Debug, Clone)]
pub struct ThinClient {
    pub id: ClientId,
    pub host: String,
    pub pda: PdaProfile,
    pub import_mode: ImportMode,
    pub render_service: Option<RenderServiceId>,
    pub viewport: Viewport,
    pub camera: CameraParams,
    pub stats: FrameStats,
    /// The client CPU's occupancy timeline (decode + import + blit): a
    /// pipelined stream queues frame N+1's import behind frame N's here.
    pub cpu: Occupancy,
}

impl ThinClient {
    pub fn new(id: ClientId, host: &str) -> Self {
        Self {
            id,
            host: host.into(),
            pda: PdaProfile::zaurus(),
            import_mode: ImportMode::NativeCast,
            render_service: None,
            viewport: Viewport::new(200, 200),
            camera: CameraParams::default(),
            stats: FrameStats::default(),
            cpu: Occupancy::new(),
        }
    }

    /// Image import time under the configured mode.
    pub fn import_time(&self, bytes: u64) -> f64 {
        match self.import_mode {
            ImportMode::J2me => self.pda.import_j2me(bytes),
            ImportMode::NativeCast => self.pda.import_cast(bytes),
        }
    }
}

/// Connect a thin client to a render service (opens an off-screen session
/// sized to the client's viewport).
pub fn connect(sim: &mut RaveSim, client_id: ClientId, rs_id: RenderServiceId) {
    let (viewport, camera) = {
        let c = sim.world.client_mut(client_id);
        c.render_service = Some(rs_id);
        (c.viewport, c.camera)
    };
    sim.world.render_mut(rs_id).open_session(
        client_id,
        viewport,
        camera,
        OffscreenMode::Sequential,
    );
}

/// One stream's issue/display bookkeeping: at most `depth` frames are
/// ever in flight (requested but not displayed). The hosts are resolved
/// once here — per-frame issue borrows them instead of re-cloning
/// `String`s out of the world.
#[derive(Debug)]
struct FramePipeline {
    client: ClientId,
    rs: RenderServiceId,
    client_host: String,
    rs_host: String,
    depth: u64,
    total: u64,
    issued: u64,
    displayed: u64,
}

/// Stream `frames` frames to the client: the §5.1 measurement loop.
/// Each cycle: interaction request → off-screen render → image transfer →
/// import/blit → display ("local and remote simply rendering best effort
/// and continuously stream images to the user"). `pipeline_depth`
/// controls how many cycles may overlap: 1 is the paper's serial loop
/// (the next request leaves only after the previous display); ≥ 2 keeps
/// that many frames in flight across the staged resources.
pub fn stream_frames(sim: &mut RaveSim, client_id: ClientId, frames: u64) {
    if frames == 0 {
        return;
    }
    let Some(rs_id) = sim.world.client(client_id).render_service else { return };
    let pipe = Rc::new(RefCell::new(FramePipeline {
        client: client_id,
        rs: rs_id,
        client_host: sim.world.client(client_id).host.clone(),
        rs_host: sim.world.render(rs_id).host.clone(),
        depth: sim.world.config.pipeline_depth.max(1) as u64,
        total: frames,
        issued: 0,
        displayed: 0,
    }));
    pump(sim, &pipe);
}

/// Issue frames while the stream has frames left and in-flight budget.
/// Runs at stream start (fills the pipeline to `depth`) and after every
/// display (each display frees one slot).
fn pump(sim: &mut RaveSim, pipe: &Rc<RefCell<FramePipeline>>) {
    loop {
        {
            let p = pipe.borrow();
            if p.issued >= p.total || p.issued - p.displayed >= p.depth {
                return;
            }
        }
        issue_frame(sim, pipe);
    }
}

/// Issue one frame: book its request, render, encode/transmit, and
/// client-import onto the respective occupancy timelines (each stage
/// starting no earlier than the previous stage's completion *and* the
/// resource's release by earlier in-flight frames), then schedule its
/// display event. All stage timings are computed analytically at issue
/// time — the display event only does the accounting.
fn issue_frame(sim: &mut RaveSim, pipe: &Rc<RefCell<FramePipeline>>) {
    let t0 = sim.now();
    let (client_id, rs_id, index) = {
        let mut p = pipe.borrow_mut();
        let i = p.issued;
        p.issued += 1;
        (p.client, p.rs, i)
    };

    // 1. Interaction/camera request (small control message).
    let t_request_arrives = {
        let p = pipe.borrow();
        sim.world.send_bytes(t0, &p.client_host, &p.rs_host, 64)
    };

    // 2. Off-screen render, queued on the service's GPU timeline. At
    // depth 1 the GPU is always idle when the request arrives and this
    // degenerates to exactly `t_request_arrives + render_secs`.
    let render_cost = sim
        .world
        .render(rs_id)
        .offscreen_render_cost(client_id)
        .expect("thin client session must be off-screen capable");
    let render_secs = render_cost.total();
    let (render_start, t_rendered) =
        sim.world.render_mut(rs_id).queue_render(t_request_arrives, render_secs);

    // 3. Image transfer back: uncompressed 24 bpp (the paper's baseline)
    // or the adaptive compressed stream, per config. Either way the
    // encoder/wire occupancies serialize in-flight frames in order.
    let frame_bytes = sim.world.client(client_id).viewport.pixel_count() as u64 * 3;
    let (t_image_arrives, decode_secs, encoded_bytes, encode_secs, wire_secs, transport_stall) =
        match sim.world.config.frame_compression {
            CompressionMode::Raw => {
                let p = pipe.borrow();
                let (wire_start, wire_secs) = {
                    let ch = sim.world.channel(&p.rs_host, &p.client_host);
                    (t_rendered.max(ch.busy_until()), ch.link().tx_time(frame_bytes).as_secs())
                };
                let t = sim.world.send_bytes(t_rendered, &p.rs_host, &p.client_host, frame_bytes);
                (t, 0.0, frame_bytes, 0.0, wire_secs, (wire_start - t_rendered).as_secs())
            }
            CompressionMode::Adaptive => {
                let vp = sim.world.client(client_id).viewport;
                // Real pixels when the world renders them, else a
                // synthetic render-shaped frame so timing runs still
                // exercise the codec path with representative content.
                let rgb = if sim.world.config.produce_images {
                    sim.world
                        .render_mut(rs_id)
                        .rasterize(client_id)
                        .map(|fb| fb.to_rgb_bytes())
                        .unwrap_or_else(|| {
                            frame_stream::synthesize_frame(vp.width, vp.height, index)
                        })
                } else {
                    frame_stream::synthesize_frame(vp.width, vp.height, index)
                };
                let allow_lossy = sim.world.config.allow_lossy_frames;
                let encoder_free = sim.world.render(rs_id).encoder.busy_until();
                let out = {
                    let p = pipe.borrow();
                    frame_stream::send_frame_after(
                        &mut sim.world,
                        t_rendered,
                        encoder_free,
                        rs_id,
                        client_id,
                        &p.rs_host,
                        &p.client_host,
                        &rgb,
                        EndpointSpeed::workstation(),
                        EndpointSpeed::pda(),
                        allow_lossy,
                    )
                };
                sim.world.render_mut(rs_id).encoder.acquire(out.encode_start, out.encode_secs);
                let t_sent = out.encode_start + SimTime::from_secs(out.encode_secs);
                let stall =
                    (out.encode_start - t_rendered).as_secs() + (out.wire_start - t_sent).as_secs();
                (
                    out.arrival,
                    out.decode_secs,
                    out.encoded_bytes,
                    out.encode_secs,
                    out.wire_secs,
                    stall,
                )
            }
        };
    let receipt = t_image_arrives - t_rendered;

    // 4. Decode (adaptive mode) + import + blit + GUI overhead, queued on
    // the client CPU's timeline, then display.
    let (import, overhead) = {
        let c = sim.world.client(client_id);
        (c.import_time(frame_bytes), c.pda.frame_overhead)
    };
    let client_cpu = decode_secs + import + overhead;
    let (client_start, t_displayed) =
        sim.world.client_mut(client_id).cpu.acquire(t_image_arrives, client_cpu);

    // Which resource bound this frame: the stage it stalled on the
    // longest, or — stall-free — the stage with the largest service time.
    let stall_render = (render_start - t_request_arrives).as_secs();
    let stall_client = (client_start - t_image_arrives).as_secs();
    let stall = stall_render + transport_stall + stall_client;
    let bound = if stall > 0.0 {
        if stall_render >= transport_stall && stall_render >= stall_client {
            Bound::Render
        } else if transport_stall >= stall_client {
            Bound::Wire
        } else {
            Bound::Client
        }
    } else {
        let transport = encode_secs + wire_secs;
        if render_secs >= transport && render_secs >= client_cpu {
            Bound::Render
        } else if transport >= client_cpu {
            Bound::Wire
        } else {
            Bound::Client
        }
    };

    let window = sim.world.config.fps_window;
    let pipe = Rc::clone(pipe);
    sim.schedule_at(t_displayed, move |sim| {
        let now = sim.now();
        {
            let rs = sim.world.render_mut(rs_id);
            rs.record_frame(now, window);
        }
        {
            let c = sim.world.client_mut(client_id);
            c.stats.frames += 1;
            c.stats.total_latency.record((now - t0).as_secs());
            c.stats.receipt.record(receipt.as_secs());
            c.stats.render.record(render_secs);
            c.stats.other_overheads.record(client_cpu);
            c.stats.logical_bytes += frame_bytes;
            c.stats.encoded_bytes += encoded_bytes;
            if let Some(last) = c.stats.last_display {
                c.stats.periods.record((now - last).as_secs());
            }
            c.stats.last_display = Some(now);
            c.stats.render_busy += render_secs;
            c.stats.encode_busy += encode_secs;
            c.stats.wire_busy += wire_secs;
            c.stats.client_busy += client_cpu;
            match bound {
                Bound::Render => c.stats.bound_by.render += 1,
                Bound::Wire => c.stats.bound_by.wire += 1,
                Bound::Client => c.stats.bound_by.client += 1,
            }
            if stall > 0.0 {
                c.stats.stalled_frames += 1;
                c.stats.stall_secs += stall;
            }
        }
        sim.world.trace.record(
            now,
            TraceKind::FrameDelivered,
            format!("{client_id} frame via {rs_id}"),
        );
        if stall > 0.0 {
            sim.world.trace.record(
                now,
                TraceKind::PipelineStall,
                format!("{client_id} frame {index} waited {stall:.4}s ({})", bound.name()),
            );
        }
        pipe.borrow_mut().displayed += 1;
        pump(sim, &pipe);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{RaveSim, RaveWorld};
    use crate::RaveConfig;
    use rave_math::Vec3;
    use rave_scene::{MeshData, NodeKind};
    use rave_sim::Simulation;
    use std::sync::Arc;

    fn world_with_model(polys: usize) -> (RaveSim, ClientId, RenderServiceId) {
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 7));
        let rs = sim.world.spawn_render_service("laptop");
        let mesh = MeshData {
            positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            normals: vec![],
            colors: vec![],
            triangles: vec![[0, 1, 2]; polys],
            texture_bytes: 0,
        };
        let scene = &mut sim.world.render_mut(rs).scene;
        let root = scene.root();
        scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        let cl = sim.world.spawn_thin_client("zaurus");
        connect(&mut sim, cl, rs);
        (sim, cl, rs)
    }

    #[test]
    fn hand_streaming_matches_table2_shape() {
        // 0.83M polygons at 200x200 over wireless: paper reports 2.9 fps,
        // 0.339s total latency, 0.201s receipt, 0.091s render.
        let (mut sim, cl, _) = world_with_model(830_000);
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.frames, 12);
        let fps = stats.fps();
        assert!((2.2..3.6).contains(&fps), "hand fps {fps} (paper 2.9)");
        let lat = stats.total_latency.mean();
        assert!((0.28..0.42).contains(&lat), "latency {lat} (paper 0.339)");
        let receipt = stats.receipt.mean();
        assert!((0.17..0.24).contains(&receipt), "receipt {receipt} (paper 0.201)");
    }

    #[test]
    fn skeleton_slower_than_hand() {
        let (mut sim, cl, _) = world_with_model(2_800_000);
        stream_frames(&mut sim, cl, 8);
        sim.run();
        let fps = sim.world.client(cl).stats.fps();
        assert!((1.2..2.1).contains(&fps), "skeleton fps {fps} (paper 1.6)");
    }

    #[test]
    fn j2me_import_destroys_frame_rate() {
        let (mut sim, cl, _) = world_with_model(10_000);
        sim.world.client_mut(cl).import_mode = ImportMode::J2me;
        stream_frames(&mut sim, cl, 3);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert!(
            stats.total_latency.mean() > 100.0,
            "J2ME frame takes minutes: {}",
            stats.total_latency.mean()
        );
    }

    #[test]
    fn bigger_viewport_lowers_fps() {
        // §5.1: 640x480 would fall to ~0.6 fps.
        let (mut sim, cl, rs) = world_with_model(10_000);
        sim.world.client_mut(cl).viewport = Viewport::new(640, 480);
        // Reconnect with the larger viewport.
        connect(&mut sim, cl, rs);
        stream_frames(&mut sim, cl, 5);
        sim.run();
        let fps = sim.world.client(cl).stats.fps();
        assert!((0.4..0.8).contains(&fps), "640x480 fps {fps} (paper ~0.6)");
    }

    #[test]
    fn render_service_load_tracked() {
        let (mut sim, cl, rs) = world_with_model(830_000);
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let fps = sim.world.render(rs).rolling_fps().unwrap();
        assert!(fps < 5.0, "render service sees its own low fps: {fps}");
        assert_eq!(sim.world.trace.count(TraceKind::FrameDelivered), 12);
    }

    #[test]
    fn adaptive_compression_raises_wireless_fps() {
        // The same §5.1 hand scenario as hand_streaming_matches_table2_shape
        // (0.83M polys, 200x200, wireless), with the raw 24 bpp transfer
        // replaced by the adaptive compressed stream.
        let (mut sim_raw, cl_raw, _) = world_with_model(830_000);
        stream_frames(&mut sim_raw, cl_raw, 12);
        sim_raw.run();
        let fps_raw = sim_raw.world.client(cl_raw).stats.fps();

        let (mut sim, cl, _) = world_with_model(830_000);
        sim.world.config.frame_compression = crate::config::CompressionMode::Adaptive;
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.frames, 12);
        let fps = stats.fps();
        assert!(fps > fps_raw * 1.2, "adaptive stream beats the raw baseline: {fps} vs {fps_raw}");
        assert!(
            stats.compression_ratio() < 0.5,
            "wire traffic shrank: ratio {}",
            stats.compression_ratio()
        );
        assert!(stats.encoded_bytes < stats.logical_bytes);
    }

    #[test]
    fn raw_mode_books_equal_logical_and_encoded_bytes() {
        let (mut sim, cl, _) = world_with_model(10_000);
        stream_frames(&mut sim, cl, 3);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.logical_bytes, stats.encoded_bytes);
        assert_eq!(stats.logical_bytes, 3 * 200 * 200 * 3);
        assert_eq!(stats.compression_ratio(), 1.0);
    }

    #[test]
    fn stream_zero_frames_is_noop() {
        let (mut sim, cl, _) = world_with_model(100);
        stream_frames(&mut sim, cl, 0);
        sim.run();
        assert_eq!(sim.world.client(cl).stats.frames, 0);
    }

    #[test]
    fn depth_one_never_stalls() {
        // The serial cycle has no overlap: every stage is idle when its
        // frame arrives, so nothing ever waits and no stall is traced.
        let (mut sim, cl, _) = world_with_model(830_000);
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.stalled_frames, 0);
        assert_eq!(stats.stall_secs, 0.0);
        assert_eq!(sim.world.trace.count(TraceKind::PipelineStall), 0);
        // Every frame still gets a binding-resource verdict.
        let b = stats.bound_by;
        assert_eq!(b.render + b.wire + b.client, 12);
        // The wireless raw hand stream spends most of each frame on the
        // wire (0.208s tx vs 0.091s render).
        assert_eq!(b.dominant(), "wire");
    }

    #[test]
    fn deeper_pipeline_overlaps_and_raises_fps() {
        let (mut sim1, cl1, _) = world_with_model(830_000);
        stream_frames(&mut sim1, cl1, 12);
        sim1.run();
        let serial = sim1.world.client(cl1).stats.clone();

        let (mut sim3, cl3, _) = world_with_model(830_000);
        sim3.world.config.pipeline_depth = 3;
        stream_frames(&mut sim3, cl3, 12);
        sim3.run();
        let piped = sim3.world.client(cl3).stats.clone();

        assert_eq!(piped.frames, 12);
        let (f1, f3) = (serial.fps(), piped.fps());
        assert!(f3 > f1 * 1.4, "overlap raises fps: {f3} vs serial {f1}");
        // Same frames crossed the wire either way.
        assert_eq!(piped.encoded_bytes, serial.encoded_bytes);
        assert_eq!(piped.logical_bytes, serial.logical_bytes);
        // Steady-state frames queue on the bottleneck (the wireless
        // wire), so stalls exist and are traced.
        assert!(piped.stalled_frames > 0);
        assert!(piped.stall_secs > 0.0);
        assert_eq!(sim3.world.trace.count(TraceKind::PipelineStall), piped.stalled_frames as usize);
        assert!(piped.bound_by.wire > piped.bound_by.render);
        // Same wire-busy seconds squeezed into a shorter run: the wire
        // runs nearly continuously once the pipeline fills.
        let u_serial = serial.wire_utilization(serial.last_display.unwrap());
        let u_piped = piped.wire_utilization(piped.last_display.unwrap());
        assert!(
            u_piped > u_serial * 1.3,
            "overlap lifts wire utilization: {u_piped} vs {u_serial}"
        );
    }

    #[test]
    fn pipeline_depth_bounds_frames_in_flight() {
        // With depth 2 the third frame's request may only leave after the
        // first display; its issue time must be >= frame 1's display.
        let (mut sim, cl, _) = world_with_model(830_000);
        sim.world.config.pipeline_depth = 2;
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.frames, 12);
        // Depth 2 on a wire-dominated stream already approaches the wire
        // ceiling: strictly faster than serial.
        let fps = stats.fps();
        assert!(fps > 3.6, "depth-2 wireless hand fps {fps}");
    }

    #[test]
    fn adaptive_pipeline_is_render_bound() {
        // Compressed frames shrink the wire stage below the 0.091s render,
        // so the pipelined adaptive stream binds on the GPU instead.
        let (mut sim, cl, _) = world_with_model(830_000);
        sim.world.config.frame_compression = crate::config::CompressionMode::Adaptive;
        sim.world.config.pipeline_depth = 3;
        stream_frames(&mut sim, cl, 12);
        sim.run();
        let stats = &sim.world.client(cl).stats;
        assert_eq!(stats.frames, 12);
        assert_eq!(stats.bound_by.dominant(), "render");
        let span = stats.last_display.unwrap();
        assert!(stats.render_utilization(span) > 0.7, "GPU nearly saturated");
    }
}
