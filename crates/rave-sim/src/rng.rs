//! Deterministic pseudo-randomness for experiments.
//!
//! SplitMix64: tiny, fast, and good enough for workload jitter, wireless
//! signal-quality variation, and procedural model generation. Implemented
//! here rather than pulling in `rand` so the simulation kernel stays
//! dependency-free and seed-stable across toolchain updates.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child stream (per-service RNGs from one
    /// experiment seed).
    pub fn fork(&mut self, tag: u64) -> Self {
        Self::new(self.next_u64() ^ tag.wrapping_mul(0x9E3779B97F4A7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` as f32.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free bounded sampling (Lemire); the tiny
        // modulo bias is irrelevant for workload jitter.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (for timing jitter models).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut r = SimRng::new(1234);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SimRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
