//! Discrete-event simulation kernel.
//!
//! The paper's evaluation reports wall-clock timings measured on 2004
//! hardware (SGI Onyx, Sun V880z, a Zaurus PDA) and physical networks
//! (11 Mbit/s 802.11b, 100 Mbit ethernet). None of that hardware exists
//! here, so every experiment that reports *time* runs on this kernel's
//! virtual clock instead: services charge model-derived durations for
//! compute (rendering, SOAP marshalling) and transfers, and the event queue
//! advances time deterministically.
//!
//! Design notes:
//! - Events are `FnOnce(&mut Simulation<W>)` closures over a user world `W`,
//!   so handlers can both mutate the world and schedule follow-up events.
//! - Ties at the same timestamp are broken by insertion order (a strictly
//!   monotone sequence number), which makes runs bit-reproducible.
//! - Randomness comes from [`rng::SimRng`], a SplitMix64 generator seeded
//!   per experiment; no global or OS entropy is ever consulted.

pub mod engine;
pub mod metrics;
pub mod rng;
pub mod time;

pub use engine::{EventId, Simulation};
pub use metrics::{Counter, Histogram, Occupancy, TimeSeries};
pub use rng::SimRng;
pub use time::SimTime;
