//! The event loop.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a scheduled event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Handler<W> = Box<dyn FnOnce(&mut Simulation<W>)>;

/// A discrete-event simulation over a user-supplied world `W`.
///
/// ```
/// use rave_sim::{Simulation, SimTime};
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimTime::from_secs(1.0), |sim| {
///     sim.world += 1;
///     sim.schedule_in(SimTime::from_secs(1.0), |sim| sim.world += 10);
/// });
/// sim.run();
/// assert_eq!(sim.world, 11);
/// assert_eq!(sim.now().as_secs(), 2.0);
/// ```
pub struct Simulation<W> {
    pub world: W,
    now: SimTime,
    next_id: u64,
    // Two structures: an ordered heap of (time, id) keys and a map of the
    // boxed handlers, so cancellation is O(1) removal without touching the
    // heap (the stale heap key is skipped when popped).
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    handlers: HashMap<u64, Handler<W>>,
    executed: u64,
}

impl<W> Simulation<W> {
    pub fn new(world: W) -> Self {
        Self {
            world,
            now: SimTime::ZERO,
            next_id: 0,
            heap: BinaryHeap::new(),
            handlers: HashMap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones not
    /// yet drained).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `handler` to run at absolute time `at`. Scheduling in the
    /// past is a logic error and panics — silently reordering time would
    /// invalidate every measurement downstream.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Simulation<W>) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: now={} at={}", self.now, at);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.handlers.insert(id.0, Box::new(handler));
        self.heap.push(Reverse((at, id.0)));
        id
    }

    /// Schedule `handler` to run `delay` after now.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        handler: impl FnOnce(&mut Simulation<W>) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, handler)
    }

    /// Cancel a pending event. Returns `true` if the event existed and had
    /// not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.handlers.remove(&id.0).is_some()
    }

    /// Run the next event, if any. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(Reverse((at, raw_id))) = self.heap.pop() {
            let Some(handler) = self.handlers.remove(&raw_id) else {
                continue; // cancelled: stale heap key
            };
            self.now = at;
            self.executed += 1;
            handler(self);
            return true;
        }
        false
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or virtual time would exceed `until`.
    /// Events at exactly `until` still execute; later events stay queued.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse((at, _))) = self.heap.peek() {
            if *at > until {
                break;
            }
            if !self.step() {
                break;
            }
        }
        // Time advances to the horizon even if nothing fired exactly there,
        // so periodic samplers observe a consistent clock.
        self.now = self.now.max(until);
    }

    /// Run until `predicate` over the world becomes true or the queue
    /// drains. Returns whether the predicate held on exit.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&W) -> bool) -> bool {
        while keep_going(&self.world) {
            if !self.step() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_in(SimTime::from_secs(3.0), |s| s.world.push(3));
        sim.schedule_in(SimTime::from_secs(1.0), |s| s.world.push(1));
        sim.schedule_in(SimTime::from_secs(2.0), |s| s.world.push(2));
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now().as_secs(), 3.0);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            sim.schedule_in(t, move |s| s.world.push(i));
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more() {
        let mut sim = Simulation::new(0u64);
        fn tick(sim: &mut Simulation<u64>) {
            sim.world += 1;
            if sim.world < 5 {
                sim.schedule_in(SimTime::from_secs(1.0), tick);
            }
        }
        sim.schedule_in(SimTime::ZERO, tick);
        sim.run();
        assert_eq!(sim.world, 5);
        assert_eq!(sim.now().as_secs(), 4.0);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulation::new(0u32);
        let id = sim.schedule_in(SimTime::from_secs(1.0), |s| s.world = 99);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run();
        assert_eq!(sim.world, 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_in(SimTime::from_secs(1.0), |s| s.world.push(1));
        sim.schedule_in(SimTime::from_secs(5.0), |s| s.world.push(5));
        sim.run_until(SimTime::from_secs(2.0));
        assert_eq!(sim.world, vec![1]);
        assert_eq!(sim.now().as_secs(), 2.0);
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world, vec![1, 5]);
    }

    #[test]
    fn run_until_inclusive_of_horizon_events() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimTime::from_secs(2.0), |s| s.world = 1);
        sim.run_until(SimTime::from_secs(2.0));
        assert_eq!(sim.world, 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_in(SimTime::from_secs(1.0), |s| {
            s.schedule_at(SimTime::from_secs(0.5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Simulation::new(0u32);
        for _ in 0..10 {
            sim.schedule_in(SimTime::from_secs(1.0), |s| s.world += 1);
        }
        let held = sim.run_while(|w| *w < 3);
        assert!(held);
        assert_eq!(sim.world, 3);
    }

    #[test]
    fn executed_counts_only_fired() {
        let mut sim = Simulation::new(());
        let id = sim.schedule_in(SimTime::from_secs(1.0), |_| {});
        sim.schedule_in(SimTime::from_secs(1.0), |_| {});
        sim.cancel(id);
        sim.run();
        assert_eq!(sim.executed(), 1);
    }
}
