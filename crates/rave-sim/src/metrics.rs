//! Lightweight measurement primitives shared by every experiment harness.

use crate::time::SimTime;

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    count: u64,
    total: f64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn incr(&mut self) {
        self.add(1.0);
    }

    pub fn add(&mut self, amount: f64) {
        self.count += 1;
        self.total += amount;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }
}

/// A (time, value) series; used for load traces (fps over time, queue
/// depths) that the migration experiments plot.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some((last, _)) = self.points.last() {
            debug_assert!(at >= *last, "time series must be appended in order");
        }
        self.points.push((at, value));
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Time-weighted mean over the recorded span (each value holds until the
    /// next sample).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, v)| v);
        }
        let mut acc = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs();
            acc += w[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            self.points[0].1
        } else {
            acc / span
        }
    }

    /// Minimum and maximum values, or `None` when empty.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        self.points.iter().fold(None, |acc, &(_, v)| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
    }
}

/// A single-server resource timeline: a busy-until cursor plus busy-time
/// accounting.
///
/// This is the primitive behind pipelined stage occupancy — a render
/// GPU, a serializing wire, a client CPU — each modelled as a resource
/// that serves one job at a time. [`Occupancy::acquire`] queues a job
/// behind whatever the resource is already committed to and returns the
/// `(start, end)` window it occupies, so overlapped stages charge
/// virtual time correctly instead of magically parallelizing.
///
/// The accumulated busy seconds make utilization over a span a one-line
/// query, which is how per-stage utilization and "which resource bound
/// this frame" diagnostics are computed.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    busy_until: SimTime,
    busy_secs: f64,
    jobs: u64,
}

impl Default for Occupancy {
    fn default() -> Self {
        Self { busy_until: SimTime::ZERO, busy_secs: 0.0, jobs: 0 }
    }
}

impl Occupancy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a job that becomes eligible at `ready` and needs `secs` of
    /// exclusive service. Returns its `(start, end)` window: the job
    /// starts at `max(ready, busy_until)` and the cursor advances to its
    /// end.
    pub fn acquire(&mut self, ready: SimTime, secs: f64) -> (SimTime, SimTime) {
        let start = ready.max(self.busy_until);
        let end = start + SimTime::from_secs(secs);
        self.busy_until = end;
        self.busy_secs += secs;
        self.jobs += 1;
        (start, end)
    }

    /// When the resource finishes its last queued job.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// How long a job ready at `ready` would wait before starting.
    pub fn wait(&self, ready: SimTime) -> SimTime {
        if self.busy_until > ready {
            self.busy_until - ready
        } else {
            SimTime::ZERO
        }
    }

    /// Total service seconds accumulated across all jobs.
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `span` the resource spent busy (0.0 for an empty span).
    pub fn utilization(&self, span: SimTime) -> f64 {
        if span <= SimTime::ZERO {
            0.0
        } else {
            self.busy_secs / span.as_secs()
        }
    }
}

/// A fixed set of summary statistics over raw samples: the experiment
/// tables report means; the spread columns use p50/p95.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Quantile by nearest-rank; `q` in `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx =
            ((q * (self.samples.len() - 1) as f64).round() as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(3.0);
        assert_eq!(c.count(), 2);
        assert_eq!(c.total(), 4.0);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    fn empty_counter_mean_zero() {
        assert_eq!(Counter::new().mean(), 0.0);
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0.0), 10.0);
        ts.record(SimTime::from_secs(1.0), 20.0); // 10 held for 1s
        ts.record(SimTime::from_secs(3.0), 0.0); // 20 held for 2s
                                                 // (10*1 + 20*2) / 3 = 50/3
        assert!((ts.time_weighted_mean() - 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_min_max() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.min_max(), None);
        ts.record(SimTime::from_secs(0.0), 5.0);
        ts.record(SimTime::from_secs(1.0), -1.0);
        ts.record(SimTime::from_secs(2.0), 3.0);
        assert_eq!(ts.min_max(), Some((-1.0, 5.0)));
        assert_eq!(ts.last_value(), Some(3.0));
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert!((h.stddev() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.stddev(), 0.0);
    }

    #[test]
    fn histogram_quantile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.max(), 5.0);
        h.record(10.0); // invalidates sort
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn occupancy_queues_back_to_back() {
        let mut o = Occupancy::new();
        let (s1, e1) = o.acquire(SimTime::from_secs(1.0), 2.0);
        assert_eq!(s1, SimTime::from_secs(1.0));
        assert_eq!(e1, SimTime::from_secs(3.0));
        // Ready before the cursor frees: queues behind the first job.
        let (s2, e2) = o.acquire(SimTime::from_secs(2.0), 1.0);
        assert_eq!(s2, SimTime::from_secs(3.0));
        assert_eq!(e2, SimTime::from_secs(4.0));
        assert_eq!(o.busy_until(), e2);
        assert_eq!(o.jobs(), 2);
        assert_eq!(o.busy_secs(), 3.0);
    }

    #[test]
    fn occupancy_idle_gap_resets() {
        let mut o = Occupancy::new();
        o.acquire(SimTime::ZERO, 1.0);
        assert_eq!(o.wait(SimTime::from_secs(0.5)), SimTime::from_secs(0.5));
        assert_eq!(o.wait(SimTime::from_secs(5.0)), SimTime::ZERO);
        let (s, _) = o.acquire(SimTime::from_secs(5.0), 1.0);
        assert_eq!(s, SimTime::from_secs(5.0));
    }

    #[test]
    fn occupancy_utilization_over_span() {
        let mut o = Occupancy::new();
        o.acquire(SimTime::ZERO, 1.0);
        o.acquire(SimTime::from_secs(3.0), 1.0);
        assert!((o.utilization(SimTime::from_secs(4.0)) - 0.5).abs() < 1e-12);
        assert_eq!(Occupancy::new().utilization(SimTime::ZERO), 0.0);
    }
}
