//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in seconds. `SimTime` is used for
/// both instants and durations; the arithmetic keeps the distinction clear
/// enough in practice and avoids a second newtype at every call site.
///
/// `SimTime` is totally ordered (`NaN` is rejected at construction), so it
/// can key the event queue directly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(f64);

impl SimTime {
    pub const ZERO: Self = Self(0.0);

    /// Construct from seconds. Panics on NaN — a NaN timestamp would
    /// corrupt the event-queue ordering silently.
    pub fn from_secs(s: f64) -> Self {
        assert!(!s.is_nan(), "SimTime cannot be NaN");
        Self(s)
    }

    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    pub fn max(self, o: Self) -> Self {
        if self >= o {
            self
        } else {
            o
        }
    }

    pub fn min(self, o: Self) -> Self {
        if self <= o {
            self
        } else {
            o
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self(self.0 + o.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, o: Self) {
        self.0 += o.0;
    }
}

impl Sub for SimTime {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Self(self.0 - o.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = Self;
    fn mul(self, s: f64) -> Self {
        Self::from_secs(self.0 * s)
    }
}

impl Div<f64> for SimTime {
    type Output = Self;
    fn div(self, s: f64) -> Self {
        Self::from_secs(self.0 / s)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else {
            write!(f, "{:.3}ms", self.0 * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(250.0).as_millis(), 0.25);
    }

    #[test]
    fn ordering_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2.0) + SimTime::from_secs(0.5);
        assert_eq!(t.as_secs(), 2.5);
        assert_eq!((t - SimTime::from_secs(1.0)).as_secs(), 1.5);
        assert_eq!((t * 2.0).as_secs(), 5.0);
        assert_eq!((t / 2.0).as_secs(), 1.25);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::from_millis(2.5)), "2.500ms");
    }
}
