//! Table 5: "Timings of UDDI recruitment and subsequent service
//! bootstrap".
//!
//! Paper values:
//!
//! | Model | data file | UDDI scan (full) | Service bootstrap |
//! |---|---|---|---|
//! | Galleon | 0.3 MB | 0.73 s (4.8 s) | 10.5 s |
//! | Skeletal Hand | 20 MB | 0.70 s (4.2 s) | 68.2 s |
//!
//! The service bootstrap includes the Axis factory call, the SOAP
//! subscribe, the introspective marshal of the scene (the §5.5
//! bottleneck) and the 100 Mbit transfer.

use crate::RunOpts;
use rave_core::bootstrap::connect_render_service;
use rave_core::world::RaveWorld;
use rave_core::RaveConfig;
use rave_grid::TechnicalModel;
use rave_models::{build_with_budget, PaperModel};
use rave_scene::{InterestSet, NodeKind};
use rave_sim::Simulation;
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct Row {
    pub model: PaperModel,
    pub data_bytes: u64,
    pub uddi_scan_s: f64,
    pub uddi_full_s: f64,
    pub bootstrap_s: f64,
    pub paper_scan_s: f64,
    pub paper_full_s: f64,
    pub paper_bootstrap_s: f64,
}

pub fn run(opts: &RunOpts) -> Vec<Row> {
    [(PaperModel::Galleon, 0.73, 4.8, 10.5), (PaperModel::SkeletalHand, 0.70, 4.2, 68.2)]
        .into_iter()
        .map(|(model, paper_scan, paper_full, paper_boot)| {
            // Use full polygon counts (the marshal bottleneck IS the point);
            // --quick scales down for CI.
            let budget = opts.budget(model);
            let mesh = build_with_budget(model, budget);

            let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 55));
            let ds = sim.world.spawn_data_service("adrenochrome", model.name());
            let data_bytes = mesh.wire_size();
            {
                let scene = &mut sim.world.data_mut(ds).scene;
                let root = scene.root();
                scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
            }
            // Publish a few render services so the scan has realistic result
            // counts.
            for host in ["tower", "desktop", "onyx"] {
                sim.world.spawn_render_service(host);
            }

            // UDDI timings from the cost model + live registry.
            let results =
                sim.world.registry.scan_access_points("RAVE", TechnicalModel::RenderService).len();
            let uddi_scan = sim.world.uddi_cost.scan_cost(results).as_secs();
            let uddi_full = sim.world.uddi_cost.full_bootstrap_cost(results).as_secs();

            // Service bootstrap: container instance creation + scene
            // bootstrap (SOAP + introspective marshal + transfer).
            let (_, create_cost) = sim
                .world
                .containers
                .get_mut("tower")
                .unwrap()
                .create_instance("render-factory", "bench", "adrenochrome")
                .unwrap();
            let rs = sim.world.spawn_render_service("tower");
            let t0 = sim.now();
            let timing = connect_render_service(&mut sim, rs, ds, InterestSet::everything());
            sim.run();
            let bootstrap = create_cost.as_secs() + (timing.ready_at - t0).as_secs();

            Row {
                model,
                data_bytes,
                uddi_scan_s: uddi_scan,
                uddi_full_s: uddi_full,
                bootstrap_s: bootstrap,
                paper_scan_s: paper_scan,
                paper_full_s: paper_full,
                paper_bootstrap_s: paper_boot,
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.name().to_string(),
                format!("{:.1} MB", r.data_bytes as f64 / 1e6),
                format!(
                    "{:.2}s ({:.2}) full {:.1}s ({:.1})",
                    r.uddi_scan_s, r.paper_scan_s, r.uddi_full_s, r.paper_full_s
                ),
                format!("{:.1}s ({:.1})", r.bootstrap_s, r.paper_bootstrap_s),
            ]
        })
        .collect();
    crate::render_table(
        "Table 5: UDDI recruitment + service bootstrap — measured (paper)",
        &["Model", "Data size", "UDDI scan (full bootstrap)", "Service bootstrap"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let rows = run(&RunOpts { quick: true, out_dir: "out" });
        assert_eq!(rows.len(), 2);
        // UDDI times are size-independent.
        assert!((rows[0].uddi_scan_s - rows[1].uddi_scan_s).abs() < 0.05);
        assert!((0.6..0.85).contains(&rows[0].uddi_scan_s));
        assert!((4.0..5.0).contains(&rows[0].uddi_full_s));
        // Bootstrap grows with the model.
        assert!(rows[1].bootstrap_s > rows[0].bootstrap_s);
    }
}
