//! Table 4: off-screen render timings, 200×200, sequential vs interleaved
//! (4 images rendered simultaneously, round-robin completion polling —
//! §5.4's experiment).
//!
//! Paper values (% of on-screen speed):
//!
//! |            | GF2 420 Go | GF2 GTS     | XVR-4000   |
//! |------------|------------|-------------|------------|
//! | Elle 50k   | seq55 int90| seq51 int90 | seq3 int4  |
//! | Galleon 5.5k | seq9 int33 | seq11 int41 | seq30 int48 |

use crate::table3::{datasets, machines};
use crate::RunOpts;
use rave_render::OffscreenMode;

pub const PX_200: u64 = 200 * 200;
pub const IN_FLIGHT: u32 = 4;

#[derive(Debug, Clone)]
pub struct Cell {
    pub dataset: &'static str,
    pub machine: &'static str,
    pub seq_pct: f64,
    pub int_pct: f64,
    pub paper_seq: f64,
    pub paper_int: f64,
}

pub fn paper_value(dataset: &str, machine: &str) -> (f64, f64) {
    match (dataset, machine) {
        ("Elle", "laptop") => (55.0, 90.0),
        ("Elle", "desktop") => (51.0, 90.0),
        ("Elle", "v880z") => (3.0, 4.0),
        ("Galleon", "laptop") => (9.0, 33.0),
        ("Galleon", "desktop") => (11.0, 41.0),
        ("Galleon", "v880z") => (30.0, 48.0),
        _ => (f64::NAN, f64::NAN),
    }
}

pub fn run(_opts: &RunOpts) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (dataset, polys) in datasets() {
        for m in machines() {
            let (paper_seq, paper_int) = paper_value(dataset, m.name);
            cells.push(Cell {
                dataset,
                machine: m.name,
                seq_pct: m.offscreen_percent(polys, PX_200, OffscreenMode::Sequential),
                int_pct: m.offscreen_percent(
                    polys,
                    PX_200,
                    OffscreenMode::Interleaved { in_flight: IN_FLIGHT },
                ),
                paper_seq,
                paper_int,
            });
        }
    }
    cells
}

pub fn render(cells: &[Cell]) -> String {
    let rows: Vec<Vec<String>> = datasets()
        .iter()
        .map(|(dataset, polys)| {
            let mut row = vec![format!("{dataset} ({}k)", polys / 1000)];
            for m in machines() {
                let c = cells
                    .iter()
                    .find(|c| c.dataset == *dataset && c.machine == m.name)
                    .expect("cell");
                row.push(format!(
                    "seq:{:.0}%({:.0}) int:{:.0}%({:.0})",
                    c.seq_pct, c.paper_seq, c.int_pct, c.paper_int
                ));
            }
            row
        })
        .collect();
    crate::render_table(
        "Table 4: Off-screen %, 200x200, sequential vs 4-way interleaved — measured (paper)",
        &["Dataset", "GeForce2 420 Go", "GeForce2 GTS", "XVR-4000 V880z"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_recovers_throughput_except_software_fallback() {
        let cells = run(&RunOpts::default());
        for c in &cells {
            assert!(c.int_pct > c.seq_pct, "{c:?}");
            if c.machine == "v880z" && c.dataset == "Elle" {
                // Software fallback: interleaving barely helps (paper: 3->4).
                assert!(c.int_pct < 12.0, "{c:?}");
            }
            if c.machine != "v880z" && c.dataset == "Elle" {
                // Hardware path: interleaving recovers most of the loss
                // (paper: ->90).
                assert!(c.int_pct > 60.0, "{c:?}");
            }
        }
    }
}
