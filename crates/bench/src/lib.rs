//! Experiment harness: one module per paper table/figure, each returning
//! printable rows so the `tables` binary, tests and EXPERIMENTS.md all
//! draw from the same code.
//!
//! Experiment ↔ module map (see DESIGN.md §4):
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Table 1 (models) | [`table1`] |
//! | Table 2 (PDA timings) | [`table2`] |
//! | Table 3 (off-screen, 400×400) | [`table3`] |
//! | Table 4 (off-screen seq/int, 200×200) | [`table4`] |
//! | Table 5 (UDDI + bootstrap) | [`table5`] |
//! | Fig 2 (PDA screenshots) | [`figures::fig2`] |
//! | Fig 3 (collaboration view) | [`figures::fig3`] |
//! | Fig 4 (registry GUI) | [`figures::fig4`] |
//! | Fig 5 (tile tearing) | [`figures::fig5`] |
//! | §5.1 PDA import + bandwidth | [`extras::pda_ablation`] |
//! | §5.5 tile-update latency | [`extras::tile_latency`] |
//! | Parallel pipeline readout | [`extras::parallel_render`] |
//! | Design-choice ablations | [`ablations`] |

pub mod ablations;
pub mod extras;
pub mod figures;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

/// Shared run options.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Scale model sizes down (quick CI-style run) instead of the paper's
    /// full polygon counts.
    pub quick: bool,
    /// Where figure PPMs are written.
    pub out_dir: &'static str,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self { quick: false, out_dir: "out" }
    }
}

impl RunOpts {
    /// Budget for a paper model under these options.
    pub fn budget(&self, model: rave_models::PaperModel) -> u64 {
        if self.quick {
            (model.target_polygons() / 50).max(2_000)
        } else {
            model.target_polygons()
        }
    }
}

/// Render a simple aligned text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let line = |out: &mut String, cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    line(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(&mut out, row);
    }
    out
}
