//! Text-level measurements from §5.1 and §5.5 that have no table number,
//! plus the parallel-pipeline readout (engine speedup + cost-feedback
//! tile planning).

use crate::RunOpts;
use rave_core::capacity::CapacityReport;
use rave_core::tiles::{plan_tiles, plan_tiles_with_feedback, render_tiled_frame, TileCostTracker};
use rave_core::world::RaveWorld;
use rave_core::{ClientId, RaveConfig, RenderServiceId};
use rave_math::{Vec3, Viewport};
use rave_models::{build_with_budget, PaperModel};
use rave_render::machine::PdaProfile;
use rave_render::{Framebuffer, OffscreenMode, Renderer};
use rave_scene::{CameraParams, MeshData, NodeCost, NodeKind, SceneTree};
use rave_sim::Simulation;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// §5.1's PDA import ablation and bandwidth arithmetic.
#[derive(Debug, Clone)]
pub struct PdaAblation {
    /// J2ME per-pixel import of one 200×200 frame (paper: "over two
    /// minutes").
    pub j2me_import_s: f64,
    /// C/C++ cast import of the same frame (paper: part of the ~0.2 s
    /// receive+blit, i.e. negligible next to the wire).
    pub cast_import_s: f64,
    /// Measured streaming fps at 200×200 (paper: ~5 fps ceiling).
    pub fps_200: f64,
    /// Measured streaming fps at 640×480 (paper: ~0.6 fps).
    pub fps_640: f64,
    /// Effective wireless goodput implied (paper: ≈580 kB/s).
    pub goodput_bytes_s: f64,
}

pub fn pda_ablation(_opts: &RunOpts) -> PdaAblation {
    let pda = PdaProfile::zaurus();
    let frame_200 = 200 * 200 * 3u64;
    let frame_640 = 640 * 480 * 3u64;
    let link = rave_net::LinkSpec::wireless_11mb(1.0);
    PdaAblation {
        j2me_import_s: pda.import_j2me(frame_200),
        cast_import_s: pda.import_cast(frame_200),
        fps_200: link.sustained_rate(frame_200),
        fps_640: link.sustained_rate(frame_640),
        goodput_bytes_s: link.goodput_bytes_per_sec(),
    }
}

pub fn render_pda(a: &PdaAblation) -> String {
    crate::render_table(
        "§5.1: PDA image import + wireless bandwidth — measured (paper)",
        &["Quantity", "Measured", "Paper"],
        &[
            vec![
                "J2ME per-pixel import, 200x200".into(),
                format!("{:.0} s", a.j2me_import_s),
                "over 2 minutes".into(),
            ],
            vec![
                "C/C++ cast import, 200x200".into(),
                format!("{:.4} s", a.cast_import_s),
                "~0 (receive-bound)".into(),
            ],
            vec![
                "wire-limited fps at 200x200".into(),
                format!("{:.1} fps", a.fps_200),
                "5 fps".into(),
            ],
            vec![
                "wire-limited fps at 640x480".into(),
                format!("{:.2} fps", a.fps_640),
                "0.6 fps".into(),
            ],
            vec![
                "wireless goodput".into(),
                format!("{:.0} kB/s", a.goodput_bytes_s / 1e3),
                "~580 kB/s".into(),
            ],
        ],
    )
}

/// §5.5's tile-update latency: time from a mouse drag (camera move) to
/// the remote tile arriving, on 100 Mbit ethernet.
#[derive(Debug, Clone)]
pub struct TileLatencyRow {
    pub model: PaperModel,
    pub polygons: u64,
    pub latency_s: f64,
    pub paper_s: Option<f64>,
}

pub fn tile_latency(_opts: &RunOpts) -> Vec<TileLatencyRow> {
    [
        (PaperModel::Galleon, Some(0.05)),
        (PaperModel::SkeletalHand, Some(0.3)),
        (PaperModel::Skeleton, None),
    ]
    .into_iter()
    .map(|(model, paper)| {
        let polygons = model.target_polygons();
        let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 56));
        let owner = sim.world.spawn_render_service("laptop");
        let helper = sim.world.spawn_render_service("desktop");
        // Capacity interrogation happens at session setup, before the
        // scene is replicated out — afterwards the big models leave the
        // helper no nominal headroom and `plan_tiles` would drop it.
        let cfg = sim.world.config.clone();
        let report = sim.world.render(helper).capacity_report(&cfg);
        // Count-exact placeholder content on both replicas.
        for rs in [owner, helper] {
            let mesh = MeshData {
                positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
                normals: vec![],
                colors: vec![],
                triangles: vec![[0, 1, 2]; polygons as usize],
                texture_bytes: 0,
            };
            let scene = &mut sim.world.render_mut(rs).scene;
            let root = scene.root();
            scene.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        }
        let viewport = Viewport::new(400, 300);
        let client = ClientId(1);
        let cam = CameraParams::default();
        sim.world.render_mut(owner).open_session(client, viewport, cam, OffscreenMode::Sequential);
        let plan = plan_tiles(&viewport, owner, &[report]);
        // The drag: a camera move followed by the remote tile round trip.
        let mut cam2 = cam;
        cam2.orbit(Vec3::ZERO, 0.1, 0.0);
        let t0 = sim.now();
        let result = render_tiled_frame(&mut sim, owner, client, &plan, cam2, &BTreeSet::new());
        TileLatencyRow {
            model,
            polygons,
            latency_s: (result.completed_at - t0).as_secs(),
            paper_s: paper,
        }
    })
    .collect()
}

pub fn render_tile_latency(rows: &[TileLatencyRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.name().to_string(),
                format!("{:.2} M", r.polygons as f64 / 1e6),
                format!("{:.3} s", r.latency_s),
                r.paper_s.map_or("-".into(), |p| format!("~{p} s")),
            ]
        })
        .collect();
    crate::render_table(
        "§5.5: mouse-drag -> remote-tile latency on 100Mb ethernet — measured (paper)",
        &["Model", "Polygons", "Drag->tile latency", "Paper"],
        &table_rows,
    )
}

/// The parallel-pipeline readout: binned-engine speedup over the serial
/// reference at several rayon thread counts, and how the cost-feedback
/// planner reshapes tile widths once per-tile throughput is observed.
#[derive(Debug, Clone)]
pub struct ParallelRenderReport {
    pub budget: u64,
    /// Serial immediate-mode reference, full 200x200 frame.
    pub baseline_secs: f64,
    /// (threads, binned-engine seconds) per thread count.
    pub engine: Vec<(usize, f64)>,
    /// (service label, cold-plan width, feedback-plan width).
    pub feedback_widths: Vec<(String, u32, u32)>,
}

pub fn parallel_render(opts: &RunOpts) -> ParallelRenderReport {
    let budget = if opts.quick { 5_500 } else { 50_000 };
    let mesh = build_with_budget(PaperModel::Galleon, budget);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.2 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    let renderer = Renderer::default();
    let mut fb = Framebuffer::new(200, 200);

    let best_of = |n: usize, f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let baseline_secs = best_of(3, &mut || {
        renderer.render_reference(&tree, &cam, &mut fb);
    });
    let engine = [1usize, 2, 4, 8]
        .into_iter()
        .map(|t| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap();
            let secs = best_of(3, &mut || {
                pool.install(|| renderer.render(&tree, &cam, &mut fb));
            });
            (t, secs)
        })
        .collect();

    // Cost-feedback demo: one helper observed rendering 4x faster than
    // the owner; the warm plan should hand it the wider strip.
    let vp = Viewport::new(200, 200);
    let owner = RenderServiceId(1);
    let helper = RenderServiceId(2);
    let report = CapacityReport {
        service: helper,
        host: "desktop".into(),
        polys_per_sec: 1e7,
        poly_headroom: 1 << 20,
        texture_headroom: 1 << 30,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    };
    let cold = plan_tiles(&vp, owner, std::slice::from_ref(&report));
    let mut tracker = TileCostTracker::new();
    tracker.record(owner, 100_000, 1.0);
    tracker.record(helper, 400_000, 1.0);
    let warm = plan_tiles_with_feedback(&vp, owner, std::slice::from_ref(&report), &tracker);
    let width_of = |plan: &rave_core::tiles::TilePlan, svc: RenderServiceId| {
        plan.tiles.iter().find(|(_, s)| *s == svc).map_or(0, |(t, _)| t.width)
    };
    let feedback_widths = vec![
        ("owner (1x observed)".into(), width_of(&cold, owner), width_of(&warm, owner)),
        ("helper (4x observed)".into(), width_of(&cold, helper), width_of(&warm, helper)),
    ];

    ParallelRenderReport { budget, baseline_secs, engine, feedback_widths }
}

pub fn render_parallel_render(r: &ParallelRenderReport) -> String {
    let mut rows = vec![vec![
        "serial reference".into(),
        format!("{:.1} ms", r.baseline_secs * 1e3),
        "1.00x".into(),
    ]];
    for &(t, secs) in &r.engine {
        rows.push(vec![
            format!("binned engine, {t} thread{}", if t == 1 { "" } else { "s" }),
            format!("{:.1} ms", secs * 1e3),
            format!("{:.2}x", r.baseline_secs / secs),
        ]);
    }
    let mut out = crate::render_table(
        &format!("Parallel pipeline: 200x200 Galleon frame, {} triangles", r.budget),
        &["Engine", "Frame time", "Speedup"],
        &rows,
    );
    let feedback_rows: Vec<Vec<String>> = r
        .feedback_widths
        .iter()
        .map(|(label, cold, warm)| vec![label.clone(), format!("{cold} px"), format!("{warm} px")])
        .collect();
    out.push_str(&crate::render_table(
        "Cost-feedback tile planning: strip widths before/after observation",
        &["Service", "Cold plan", "Feedback plan"],
        &feedback_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pda_ablation_matches_paper_magnitudes() {
        let a = pda_ablation(&RunOpts::default());
        assert!(a.j2me_import_s > 120.0);
        assert!(a.cast_import_s < 0.05);
        assert!((4.0..6.0).contains(&a.fps_200));
        assert!((0.5..0.75).contains(&a.fps_640));
        assert!((500e3..650e3).contains(&a.goodput_bytes_s));
    }

    #[test]
    fn parallel_render_report_is_coherent() {
        let r = parallel_render(&RunOpts { quick: true, out_dir: "out" });
        assert_eq!(r.engine.len(), 4);
        assert!(r.baseline_secs > 0.0);
        for &(_, secs) in &r.engine {
            assert!(secs > 0.0);
        }
        // The binned engine (vertex cache, alloc-free clipping) beats the
        // immediate-mode reference even on one thread.
        assert!(
            r.engine[0].1 < r.baseline_secs,
            "binned 1t {} vs serial {}",
            r.engine[0].1,
            r.baseline_secs
        );
        // Feedback hands the 4x-observed helper a wider strip.
        let owner = &r.feedback_widths[0];
        let helper = &r.feedback_widths[1];
        assert!(helper.2 > helper.1, "helper widened: {helper:?}");
        assert!(owner.2 < owner.1, "owner narrowed: {owner:?}");
        assert_eq!(owner.2 + helper.2, 200, "feedback plan still covers the frame");
    }

    #[test]
    fn tile_latency_ordering_matches_paper() {
        let rows = tile_latency(&RunOpts::default());
        // Galleon fast (~tens of ms), hand slower (~0.2-0.4 s), skeleton
        // slowest.
        assert!(rows[0].latency_s < 0.1, "galleon {}", rows[0].latency_s);
        assert!((0.1..0.5).contains(&rows[1].latency_s), "hand {}", rows[1].latency_s);
        assert!(rows[2].latency_s > rows[1].latency_s);
    }
}
