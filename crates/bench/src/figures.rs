//! Figure regeneration: real pixels for Figs 2/3/5, registry text for
//! Fig 4.

use crate::RunOpts;
use rave_core::tiles::{plan_tiles, render_tiled_frame};
use rave_core::world::RaveWorld;
use rave_core::{ClientId, RaveConfig};
use rave_math::{Vec3, Viewport};
use rave_models::{build_with_budget, PaperModel};
use rave_render::composite::seam_discontinuity;
use rave_render::{Framebuffer, OffscreenMode, Renderer};
use rave_scene::{AvatarInfo, CameraParams, InterestSet, NodeKind, SceneTree};
use rave_sim::Simulation;
use std::collections::BTreeSet;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

fn save(fb: &Framebuffer, out_dir: &str, name: &str) -> String {
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let path = Path::new(out_dir).join(name);
    fb.write_ppm(&mut File::create(&path).expect("create ppm")).expect("write ppm");
    path.display().to_string()
}

/// A scene containing one paper model, framed by a camera that maximizes
/// visible polygons ("the views were arranged to have the maximum
/// possible number of visible polygons", §5.1).
fn staged_scene(model: PaperModel, budget: u64) -> (SceneTree, CameraParams) {
    let mesh = build_with_budget(model, budget);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam = CameraParams::look_at(
        b.center() + Vec3::new(0.15 * b.radius(), 0.1 * b.radius(), 2.1 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    (tree, cam)
}

/// Fig 2: the two PDA screenshots (skeletal hand, skeleton) at 200×200.
/// Returns (path, coverage fraction) per model.
pub fn fig2(opts: &RunOpts) -> Vec<(String, f64)> {
    // Rasterizing the full 2.8M-triangle skeleton is feasible but slow in
    // the harness; the figure uses a 150k ceiling unless running full.
    let cap = if opts.quick { 30_000 } else { 150_000 };
    [PaperModel::SkeletalHand, PaperModel::Skeleton]
        .into_iter()
        .map(|model| {
            let budget = opts.budget(model).min(cap);
            let (tree, cam) = staged_scene(model, budget);
            let renderer = Renderer::default();
            let mut fb = Framebuffer::new(200, 200);
            renderer.render(&tree, &cam, &mut fb);
            let coverage = fb.coverage(renderer.background) as f64 / fb.pixel_count() as f64;
            let name = format!("fig2_{}.ppm", model.name().to_lowercase().replace(' ', "_"));
            (save(&fb, opts.out_dir, &name), coverage)
        })
        .collect()
}

/// Fig 3: two users visualising the skeletal-hand scene; the rendered
/// view shows the remote user's cone avatar + name tag. Returns the image
/// path and whether avatar pixels are present.
pub fn fig3(opts: &RunOpts) -> (String, bool) {
    let budget = if opts.quick { 10_000 } else { 60_000 };
    let (mut tree, cam_local) = staged_scene(PaperModel::SkeletalHand, budget);
    // Remote user "Desktop" orbits to the side, inside the local user's
    // view.
    let b = tree.world_bounds(tree.root());
    // Positioned between the local camera and the model, slightly off
    // axis, so the cone reads clearly in the local view.
    let remote_cam = CameraParams::look_at(
        b.center() + Vec3::new(0.45 * b.radius(), 0.2 * b.radius(), 1.25 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    let root = tree.root();
    let avatar = tree
        .add_node(
            root,
            "avatar-Desktop",
            NodeKind::Avatar(AvatarInfo {
                label: "Desktop".into(),
                color: Vec3::new(0.95, 0.45, 0.1),
                camera: remote_cam,
            }),
        )
        .unwrap();
    // Pose the avatar at its camera.
    rave_scene::SceneUpdate::CameraMoved { id: avatar, camera: remote_cam }
        .apply(&mut tree)
        .unwrap();

    let renderer = Renderer::default();
    // Image without the avatar, for a pixel diff proving it is visible.
    let mut with_avatar = Framebuffer::new(400, 400);
    renderer.render(&tree, &cam_local, &mut with_avatar);
    let mut skipping = renderer.clone();
    skipping.skip_subtree = Some(avatar);
    let mut without = Framebuffer::new(400, 400);
    skipping.render(&tree, &cam_local, &mut without);
    let avatar_visible = with_avatar.diff_fraction(&without, 0.0) > 0.0005;
    (save(&with_avatar, opts.out_dir, "fig3_collaboration.ppm"), avatar_visible)
}

/// Fig 4: the UDDI registry GUI tree — two machines, data service
/// "Skull" on adrenochrome, render service "Skull-internal" on tower
/// (the cross-machine case the paper screenshots).
pub fn fig4(_opts: &RunOpts) -> String {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 44));
    let ds = sim.world.spawn_data_service("adrenochrome", "Skull");
    let _local_renders = (
        sim.world.spawn_render_service("adrenochrome"),
        sim.world.spawn_render_service("adrenochrome"),
    );
    let remote = sim.world.spawn_render_service("tower");
    // Name the remote instance the way the paper's screenshot shows.
    {
        let host_binding = sim
            .world
            .registry
            .find_services("RAVE", rave_grid::TechnicalModel::RenderService)
            .iter()
            .find(|b| b.host == "tower")
            .map(|b| b.service_name.clone());
        if let Some(old) = host_binding {
            sim.world.registry.unpublish("RAVE", "tower", &old);
            sim.world
                .registry
                .publish(rave_grid::uddi::ServiceBinding {
                    business: "RAVE".into(),
                    service_name: "Skull-internal".into(),
                    host: "tower".into(),
                    tmodel: rave_grid::TechnicalModel::RenderService,
                    access_point: "tower:4411".into(),
                    wsdl: rave_grid::wsdl::WsdlDocument::conforming(
                        "Skull-internal",
                        rave_grid::TechnicalModel::RenderService,
                        "tower:4411",
                    ),
                })
                .unwrap();
        }
    }
    let _ = (ds, remote);
    sim.world.registry.render_tree()
}

/// Fig 5: the tearing artifact between two tiles. Renders three frames of
/// the galleon (clean / torn with a stalled assistant / healed) and
/// returns `(path, seam_discontinuity)` for each.
pub fn fig5(opts: &RunOpts) -> Vec<(String, f32)> {
    let config = RaveConfig { produce_images: true, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 45));
    let ds = sim.world.spawn_data_service("adrenochrome", "galleon");
    let galleon = build_with_budget(PaperModel::Galleon, opts.budget(PaperModel::Galleon));
    {
        let scene = &mut sim.world.data_mut(ds).scene;
        let root = scene.root();
        scene.add_node(root, "galleon", NodeKind::Mesh(Arc::new(galleon))).unwrap();
    }
    let owner = sim.world.spawn_render_service("laptop");
    let helper = sim.world.spawn_render_service("tower");
    for rs in [owner, helper] {
        rave_core::bootstrap::connect_render_service(&mut sim, rs, ds, InterestSet::everything());
    }
    sim.run();

    let b = sim.world.render(owner).scene.world_bounds(rave_scene::NodeId(0));
    let cam0 = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.3 * b.radius(), 1.9 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    let viewport = Viewport::new(400, 300);
    let client = ClientId(1);
    sim.world.render_mut(owner).open_session(client, viewport, cam0, OffscreenMode::Sequential);
    let cfg = sim.world.config.clone();
    let helper_report = sim.world.render(helper).capacity_report(&cfg);
    let plan = plan_tiles(&viewport, owner, &[helper_report]);
    let seam_x = plan.tiles[1].0.x;

    let mut results = Vec::new();
    // Clean.
    let clean =
        render_tiled_frame(&mut sim, owner, client, &plan, cam0, &BTreeSet::new()).image.unwrap();
    results
        .push((save(&clean, opts.out_dir, "fig5_clean.ppm"), seam_discontinuity(&clean, seam_x)));
    // Torn: camera dragged (the mid-mast seam of the paper's screenshot),
    // helper stalled.
    let mut cam1 = cam0;
    cam1.orbit(b.center(), 0.25, 0.0);
    let stalled: BTreeSet<_> = [helper].into_iter().collect();
    let torn = render_tiled_frame(&mut sim, owner, client, &plan, cam1, &stalled).image.unwrap();
    results.push((save(&torn, opts.out_dir, "fig5_torn.ppm"), seam_discontinuity(&torn, seam_x)));
    // Healed.
    let healed =
        render_tiled_frame(&mut sim, owner, client, &plan, cam1, &BTreeSet::new()).image.unwrap();
    results.push((
        save(&healed, opts.out_dir, "fig5_healed.ppm"),
        seam_discontinuity(&healed, seam_x),
    ));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOpts {
        RunOpts { quick: true, out_dir: "target/bench-test-out" }
    }

    #[test]
    fn fig2_renders_models() {
        let rows = fig2(&opts());
        assert_eq!(rows.len(), 2);
        for (path, coverage) in &rows {
            assert!(std::path::Path::new(path).exists());
            assert!(*coverage > 0.05, "model visible: {coverage} in {path}");
        }
    }

    #[test]
    fn fig3_avatar_visible() {
        let (path, visible) = fig3(&opts());
        assert!(std::path::Path::new(&path).exists());
        assert!(visible, "avatar must be visible in the local user's view");
    }

    #[test]
    fn fig4_tree_structure() {
        let tree = fig4(&opts());
        assert!(tree.contains("adrenochrome"));
        assert!(tree.contains("tower"));
        assert!(tree.contains("Skull-internal"));
        assert!(tree.contains("Skull"));
        assert!(tree.contains("[Create new instance]"));
    }

    #[test]
    fn fig5_tear_detected_then_heals() {
        let results = fig5(&opts());
        assert_eq!(results.len(), 3);
        let (clean, torn, healed) = (results[0].1, results[1].1, results[2].1);
        // The tear is localized (the paper's mid-mast seam), so the
        // row-averaged metric is small in absolute terms but an order of
        // magnitude above the synchronized baseline.
        assert!(
            torn > clean.abs().max(0.01) * 10.0,
            "stalled-helper frame tears: clean={clean} torn={torn}"
        );
        assert!(healed < torn, "tear heals once the helper catches up");
    }
}
