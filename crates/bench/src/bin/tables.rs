//! Regenerate every table and figure from the paper.
//!
//! ```text
//! cargo run --release -p bench --bin tables -- all
//! cargo run --release -p bench --bin tables -- table2 fig5
//! cargo run --release -p bench --bin tables -- all --quick   # scaled models
//! ```

use bench::{ablations, extras, figures, table1, table2, table3, table4, table5, RunOpts};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "pda_ablation",
    "tile_latency",
    "parallel_render",
    "ablations",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if selected.is_empty() || selected.contains(&"all") {
        selected = EXPERIMENTS.to_vec();
    }
    let opts = RunOpts { quick, out_dir: "out" };
    if quick {
        println!(
            "(--quick: models scaled to 1/50 of paper sizes; timing-model tables are unaffected)"
        );
    }

    for exp in selected {
        match exp {
            "table1" => print!("{}", table1::render(&table1::run(&opts))),
            "table2" => print!("{}", table2::render(&table2::run(&opts))),
            "table3" => print!("{}", table3::render(&table3::run(&opts))),
            "table4" => print!("{}", table4::render(&table4::run(&opts))),
            "table5" => print!("{}", table5::render(&table5::run(&opts))),
            "fig2" => {
                println!("\n== Fig 2: PDA screenshots ==");
                for (path, coverage) in figures::fig2(&opts) {
                    println!("  {path} (model covers {:.0}% of frame)", coverage * 100.0);
                }
            }
            "fig3" => {
                let (path, visible) = figures::fig3(&opts);
                println!("\n== Fig 3: collaborative view ==");
                println!("  {path} (remote avatar visible: {visible})");
            }
            "fig4" => {
                println!("\n== Fig 4: UDDI registry GUI ==");
                for line in figures::fig4(&opts).lines() {
                    println!("  {line}");
                }
            }
            "fig5" => {
                println!("\n== Fig 5: tile tearing ==");
                let rows = figures::fig5(&opts);
                for (label, (path, seam)) in
                    ["clean", "torn (helper stalled)", "healed"].iter().zip(&rows)
                {
                    println!("  {label:<22} {path} seam discontinuity {seam:.2}");
                }
            }
            "pda_ablation" => print!("{}", extras::render_pda(&extras::pda_ablation(&opts))),
            "tile_latency" => {
                print!("{}", extras::render_tile_latency(&extras::tile_latency(&opts)))
            }
            "parallel_render" => {
                print!("{}", extras::render_parallel_render(&extras::parallel_render(&opts)))
            }
            "ablations" => {
                print!("{}", ablations::render_soap(&ablations::soap_vs_binary(&opts)));
                print!("{}", ablations::render_marshalling(&ablations::marshalling(&opts)));
                print!("{}", ablations::render_tile_sweep(&ablations::tile_sweep(&opts)));
                print!("{}", ablations::render_compression(&ablations::compression(&opts)));
            }
            other => {
                eprintln!("unknown experiment {other:?}; available: {EXPERIMENTS:?} or 'all'");
                std::process::exit(2);
            }
        }
    }
}
