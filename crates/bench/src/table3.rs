//! Table 3: off-screen render timings as a percentage of on-screen speed,
//! 400×400 image.
//!
//! Paper values (%):
//!
//! |            | GF2 420 Go | GF2 GTS | XVR-4000 |
//! |------------|-----------|---------|----------|
//! | Elle 50k   | 35        | 40      | 3        |
//! | Galleon 5.5k | 9       | 9       | 16       |

use crate::RunOpts;
use rave_render::{MachineProfile, OffscreenMode};

pub const PX_400: u64 = 400 * 400;

#[derive(Debug, Clone)]
pub struct Cell {
    pub dataset: &'static str,
    pub polygons: u64,
    pub machine: &'static str,
    pub measured_pct: f64,
    pub paper_pct: f64,
}

pub fn machines() -> Vec<MachineProfile> {
    vec![
        MachineProfile::centrino_laptop(),
        MachineProfile::athlon_desktop(),
        MachineProfile::sun_v880z(),
    ]
}

pub fn datasets() -> [(&'static str, u64); 2] {
    [("Elle", 50_000), ("Galleon", 5_500)]
}

pub fn paper_value(dataset: &str, machine: &str) -> f64 {
    match (dataset, machine) {
        ("Elle", "laptop") => 35.0,
        ("Elle", "desktop") => 40.0,
        ("Elle", "v880z") => 3.0,
        ("Galleon", "laptop") => 9.0,
        ("Galleon", "desktop") => 9.0,
        ("Galleon", "v880z") => 16.0,
        _ => f64::NAN,
    }
}

pub fn run(_opts: &RunOpts) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (dataset, polys) in datasets() {
        for m in machines() {
            cells.push(Cell {
                dataset,
                polygons: polys,
                machine: m.name,
                measured_pct: m.offscreen_percent(polys, PX_400, OffscreenMode::Sequential),
                paper_pct: paper_value(dataset, m.name),
            });
        }
    }
    cells
}

pub fn render(cells: &[Cell]) -> String {
    let rows: Vec<Vec<String>> = datasets()
        .iter()
        .map(|(dataset, polys)| {
            let mut row = vec![format!("{dataset} ({}k)", polys / 1000)];
            for m in machines() {
                let c = cells
                    .iter()
                    .find(|c| c.dataset == *dataset && c.machine == m.name)
                    .expect("cell");
                row.push(format!("{:.0}% ({:.0}%)", c.measured_pct, c.paper_pct));
            }
            row
        })
        .collect();
    crate::render_table(
        "Table 3: Off-screen render speed as % of on-screen, 400x400 — measured (paper)",
        &["Dataset", "GeForce2 420 Go", "GeForce2 GTS", "XVR-4000 V880z"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let cells = run(&RunOpts::default());
        let get = |d: &str, m: &str| {
            cells.iter().find(|c| c.dataset == d && c.machine == m).unwrap().measured_pct
        };
        // NV cards: Elle suffers less than Galleon (fixed overhead
        // dominates small frames).
        assert!(get("Elle", "laptop") > get("Galleon", "laptop"));
        assert!(get("Elle", "desktop") > get("Galleon", "desktop"));
        // XVR-4000: reversed (software off-screen murders the big model).
        assert!(get("Galleon", "v880z") > get("Elle", "v880z"));
        assert!(get("Elle", "v880z") < 8.0);
        // Everything below 100%.
        for c in &cells {
            assert!(c.measured_pct < 100.0, "{c:?}");
        }
    }
}
