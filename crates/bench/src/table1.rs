//! Table 1: "Models used in benchmarks" — polygon counts and data-file
//! sizes.
//!
//! Paper values: Skeletal Hand 0.83 M polygons / 20 MB; Skeleton 2.8 M /
//! 75 MB. We rebuild the models procedurally at the exact polygon counts
//! and measure the *actual* file size of their binary-PLY encoding (the
//! archive format both originals shipped in).

use crate::RunOpts;
use rave_models::{build_with_budget, obj, ply, PaperModel};

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub model: PaperModel,
    pub polygons: u64,
    pub ply_bytes: u64,
    pub obj_bytes: u64,
    pub paper_mb: Option<f64>,
}

pub fn run(opts: &RunOpts) -> Vec<Row> {
    [PaperModel::SkeletalHand, PaperModel::Skeleton]
        .into_iter()
        .map(|model| {
            let budget = opts.budget(model);
            let mesh = build_with_budget(model, budget);
            Row {
                model,
                polygons: mesh.triangle_count(),
                ply_bytes: ply::binary_file_size(&mesh),
                obj_bytes: obj::file_size(&mesh),
                paper_mb: model.paper_file_size_mb(),
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.name().to_string(),
                format!("{:.2} million", r.polygons as f64 / 1e6),
                format!("{:.1} MB", r.ply_bytes as f64 / 1e6),
                format!("{:.1} MB", r.obj_bytes as f64 / 1e6),
                r.paper_mb.map_or("-".into(), |m| format!("{m:.0} MB")),
            ]
        })
        .collect();
    crate::render_table(
        "Table 1: Models used in benchmarks",
        &["Model", "Polygons", "PLY size (measured)", "OBJ size (measured)", "Paper file size"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_rows() {
        let rows = run(&RunOpts { quick: true, out_dir: "out" });
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ply_bytes > 0 && r.obj_bytes > 0);
        }
        // Quick budgets preserve the hand:skeleton polygon ratio.
        assert!(rows[1].polygons > rows[0].polygons * 3);
        let text = render(&rows);
        assert!(text.contains("Skeletal Hand"));
    }
}
