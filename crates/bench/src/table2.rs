//! Table 2: "Visualization Timings Using a PDA".
//!
//! Paper setup: Zaurus thin client, 200×200 uncompressed frames over
//! 11 Mbit/s wireless, render service = Centrino laptop with GeForce2
//! 420 Go. Paper values:
//!
//! | Model | fps | Total latency | Image receipt | Render | Other |
//! |---|---|---|---|---|---|
//! | Skeletal Hand (0.83 M) | 2.9 | 0.339 s | 0.201 s | 0.091 s | 0.047 s |
//! | Skeleton (2.8 M)       | 1.6 | 0.598 s | 0.194 s | 0.355 s | 0.049 s |

use crate::RunOpts;
use rave_core::thin_client::{connect, stream_frames};
use rave_core::world::RaveWorld;
use rave_core::RaveConfig;
use rave_math::Vec3;
use rave_models::PaperModel;
use rave_scene::{MeshData, NodeKind};
use rave_sim::Simulation;
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct Row {
    pub model: PaperModel,
    pub polygons: u64,
    pub fps: f64,
    pub total_latency: f64,
    pub receipt: f64,
    pub render: f64,
    pub overheads: f64,
}

/// Paper reference values for the comparison column.
pub fn paper_row(model: PaperModel) -> (f64, f64, f64, f64, f64) {
    match model {
        PaperModel::SkeletalHand => (2.9, 0.339, 0.201, 0.091, 0.047),
        PaperModel::Skeleton => (1.6, 0.598, 0.194, 0.355, 0.049),
        _ => (0.0, 0.0, 0.0, 0.0, 0.0),
    }
}

/// A polygon-count-exact placeholder mesh: the timing model only consumes
/// counts, so Table 2 runs at full 2.8 M polygons without building real
/// geometry.
fn counting_mesh(polygons: u64) -> MeshData {
    MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; polygons as usize],
        texture_bytes: 0,
    }
}

pub fn run(_opts: &RunOpts) -> Vec<Row> {
    [PaperModel::SkeletalHand, PaperModel::Skeleton]
        .into_iter()
        .map(|model| {
            // Timing is count-driven: always run at the paper's full
            // polygon counts regardless of --quick.
            let polygons = model.target_polygons();
            let mut sim = Simulation::new(RaveWorld::paper_testbed(RaveConfig::default(), 2));
            let rs = sim.world.spawn_render_service("laptop");
            {
                let scene = &mut sim.world.render_mut(rs).scene;
                let root = scene.root();
                scene
                    .add_node(root, "model", NodeKind::Mesh(Arc::new(counting_mesh(polygons))))
                    .unwrap();
            }
            let pda = sim.world.spawn_thin_client("zaurus");
            connect(&mut sim, pda, rs);
            stream_frames(&mut sim, pda, 20);
            sim.run();
            let stats = &sim.world.client(pda).stats;
            Row {
                model,
                polygons,
                fps: stats.fps(),
                total_latency: stats.total_latency.mean(),
                receipt: stats.receipt.mean(),
                render: stats.render.mean(),
                overheads: stats.other_overheads.mean(),
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let p = paper_row(r.model);
            vec![
                r.model.name().to_string(),
                format!("{:.2} M", r.polygons as f64 / 1e6),
                format!("{:.1} ({:.1})", r.fps, p.0),
                format!("{:.3}s ({:.3})", r.total_latency, p.1),
                format!("{:.3}s ({:.3})", r.receipt, p.2),
                format!("{:.3}s ({:.3})", r.render, p.3),
                format!("{:.3}s ({:.3})", r.overheads, p.4),
            ]
        })
        .collect();
    crate::render_table(
        "Table 2: PDA visualization timings — measured (paper)",
        &[
            "Model",
            "Polygons",
            "fps",
            "Total latency",
            "Image receipt",
            "Render",
            "Other overheads",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_within_tolerance() {
        let rows = run(&RunOpts::default());
        for r in &rows {
            let (fps, lat, receipt, render, over) = paper_row(r.model);
            let close = |a: f64, b: f64, tol: f64| (a - b).abs() / b < tol;
            assert!(close(r.fps, fps, 0.30), "{:?} fps {} vs {fps}", r.model, r.fps);
            assert!(close(r.total_latency, lat, 0.30), "{:?} latency", r.model);
            assert!(close(r.receipt, receipt, 0.15), "{:?} receipt", r.model);
            assert!(close(r.render, render, 0.25), "{:?} render", r.model);
            assert!(close(r.overheads, over, 0.40), "{:?} overheads", r.model);
        }
        // Ordering: skeleton strictly slower.
        assert!(rows[0].fps > rows[1].fps);
    }
}
