//! Ablation studies of the design choices DESIGN.md calls out.

use crate::RunOpts;
use rave_compress::adaptive::{select, EndpointSpeed};
use rave_core::bootstrap::marshal_comparison;
use rave_core::RaveConfig;
use rave_grid::{SoapCodec, SoapEnvelope, SoapValue};
use rave_math::{Vec3, Viewport};
use rave_models::{build_with_budget, PaperModel};
use rave_net::LinkSpec;
use rave_render::{Framebuffer, Renderer};
use rave_scene::{CameraParams, NodeKind, SceneTree};
use std::sync::Arc;

/// Ablation 1 (§4.3): SOAP vs raw binary sockets for bulk scene data —
/// the reason RAVE "backs off from SOAP" after discovery.
#[derive(Debug, Clone)]
pub struct SoapVsBinaryRow {
    pub payload_bytes: u64,
    pub soap_wire_bytes: u64,
    pub soap_total_s: f64,
    pub binary_total_s: f64,
    pub soap_penalty: f64,
}

pub fn soap_vs_binary(_opts: &RunOpts) -> Vec<SoapVsBinaryRow> {
    let codec = SoapCodec::default();
    let link = LinkSpec::ethernet_100mb();
    [1_000u64, 100_000, 1_000_000, 20_000_000]
        .into_iter()
        .map(|n| {
            let payload = vec![0u8; n as usize];
            let env = SoapEnvelope::new("data", "put").arg("blob", SoapValue::Bytes(payload));
            let soap_bytes = codec.wire_size(&env);
            // marshal + wire + demarshal.
            let soap_total =
                codec.marshal_time(&env).as_secs() * 2.0 + link.transfer_time(soap_bytes).as_secs();
            let binary_total = link.transfer_time(n + 7).as_secs();
            SoapVsBinaryRow {
                payload_bytes: n,
                soap_wire_bytes: soap_bytes,
                soap_total_s: soap_total,
                binary_total_s: binary_total,
                soap_penalty: soap_total / binary_total,
            }
        })
        .collect()
}

pub fn render_soap(rows: &[SoapVsBinaryRow]) -> String {
    let table_rows = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.3} MB", r.payload_bytes as f64 / 1e6),
                format!("{:.3} MB", r.soap_wire_bytes as f64 / 1e6),
                format!("{:.3} s", r.soap_total_s),
                format!("{:.4} s", r.binary_total_s),
                format!("{:.1}x", r.soap_penalty),
            ]
        })
        .collect::<Vec<_>>();
    crate::render_table(
        "Ablation: SOAP vs binary sockets for bulk transfer (100Mb ethernet)",
        &["Payload", "SOAP wire size", "SOAP total", "Binary total", "SOAP penalty"],
        &table_rows,
    )
}

/// Ablation 2 (§5.5): introspective vs direct scene marshalling — the
/// measured bootstrap bottleneck.
#[derive(Debug, Clone)]
pub struct MarshalRow {
    pub model: PaperModel,
    pub bytes: u64,
    pub introspective_s: f64,
    pub direct_s: f64,
    pub speedup: f64,
}

pub fn marshalling(opts: &RunOpts) -> Vec<MarshalRow> {
    let cfg = RaveConfig::default();
    [PaperModel::Galleon, PaperModel::Elle, PaperModel::SkeletalHand]
        .into_iter()
        .map(|model| {
            let mesh = build_with_budget(model, opts.budget(model));
            let mut scene = SceneTree::new();
            let root = scene.root();
            scene.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
            let (intro, direct, stats) = marshal_comparison(&scene, &cfg);
            MarshalRow {
                model,
                bytes: stats.bytes,
                introspective_s: intro.as_secs(),
                direct_s: direct.as_secs(),
                speedup: intro.as_secs() / direct.as_secs().max(1e-12),
            }
        })
        .collect()
}

pub fn render_marshalling(rows: &[MarshalRow]) -> String {
    let table_rows = rows
        .iter()
        .map(|r| {
            vec![
                r.model.name().to_string(),
                format!("{:.1} MB", r.bytes as f64 / 1e6),
                format!("{:.2} s", r.introspective_s),
                format!("{:.3} s", r.direct_s),
                format!("{:.0}x", r.speedup),
            ]
        })
        .collect::<Vec<_>>();
    crate::render_table(
        "Ablation: introspective vs direct scene marshalling (the §5.5 bottleneck)",
        &["Model", "Payload", "Introspective", "Direct", "Direct speedup"],
        &table_rows,
    )
}

/// Ablation 3: tile-count sweep — how splitting the framebuffer across
/// more assistants trades render parallelism against per-tile transfer
/// overhead (owner on the laptop, helpers on clones of the tower).
#[derive(Debug, Clone)]
pub struct TileSweepRow {
    pub tiles: u32,
    pub frame_time_s: f64,
}

pub fn tile_sweep(_opts: &RunOpts) -> Vec<TileSweepRow> {
    use rave_render::{MachineProfile, OffscreenMode};
    let owner = MachineProfile::centrino_laptop();
    let helper = MachineProfile::xeon_tower();
    let link = LinkSpec::ethernet_100mb();
    let polygons = 2_800_000u64; // the skeleton
    let viewport = Viewport::new(400, 400);
    (1..=8)
        .map(|tiles| {
            let tile_px = (viewport.pixel_count() as u64) / tiles as u64;
            // Per-tile polygon work: every service still transforms all
            // vertices, but triangles outside its tile are rejected by the
            // (cheap) screen-bounds test before rasterization — modelled
            // as ~30% of full per-triangle cost for rejected triangles,
            // assuming roughly uniform screen distribution.
            let tile_polys = (polygons as f64 * (0.3 + 0.7 / tiles as f64)) as u64;
            // Owner renders its tile on-screen; helpers render theirs
            // off-screen and ship them; frame completes at the max.
            let owner_t = owner.onscreen_cost(tile_polys, tile_px).total();
            let helper_t = if tiles > 1 {
                helper.offscreen_cost(tile_polys, tile_px, OffscreenMode::Sequential).total()
                    + link.transfer_time(tile_px * 3).as_secs()
                    + link.transfer_time(128).as_secs()
            } else {
                0.0
            };
            TileSweepRow { tiles, frame_time_s: owner_t.max(helper_t) }
        })
        .collect()
}

pub fn render_tile_sweep(rows: &[TileSweepRow]) -> String {
    let table_rows = rows
        .iter()
        .map(|r| {
            vec![
                r.tiles.to_string(),
                format!("{:.1} ms", r.frame_time_s * 1e3),
                format!("{:.1} fps", 1.0 / r.frame_time_s),
            ]
        })
        .collect::<Vec<_>>();
    crate::render_table(
        "Ablation: tile-count sweep, 2.8M polygons at 400x400 (laptop owner + tower helpers)",
        &["Tiles", "Frame time", "fps"],
        &table_rows,
    )
}

/// Ablation 4 (§6 future work): compression codec selection across
/// signal qualities, on a real rendered frame.
#[derive(Debug, Clone)]
pub struct CompressionRow {
    pub signal: f64,
    pub codec: &'static str,
    pub bytes: u64,
    pub frame_time_s: f64,
    pub raw_time_s: f64,
}

pub fn compression(opts: &RunOpts) -> Vec<CompressionRow> {
    // A real frame pair from the galleon.
    let mesh = build_with_budget(PaperModel::Galleon, opts.budget(PaperModel::Galleon));
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam0 = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.2 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    let mut cam1 = cam0;
    cam1.orbit(b.center(), 0.05, 0.0);
    let renderer = Renderer::default();
    let mut f0 = Framebuffer::new(200, 200);
    renderer.render(&tree, &cam0, &mut f0);
    let mut f1 = Framebuffer::new(200, 200);
    renderer.render(&tree, &cam1, &mut f1);
    let prev = f0.to_rgb_bytes();
    let cur = f1.to_rgb_bytes();

    [1.0, 0.5, 0.25, 0.1]
        .into_iter()
        .map(|signal| {
            let link = LinkSpec::wireless_11mb(signal);
            let choice = select(
                &cur,
                Some(&prev),
                &link,
                EndpointSpeed::workstation(),
                EndpointSpeed::pda(),
                true,
            );
            CompressionRow {
                signal,
                codec: choice.codec.name(),
                bytes: choice.encoded_bytes,
                frame_time_s: choice.total_time.as_secs(),
                raw_time_s: link.transfer_time(cur.len() as u64).as_secs(),
            }
        })
        .collect()
}

pub fn render_compression(rows: &[CompressionRow]) -> String {
    let table_rows = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.signal * 100.0),
                r.codec.to_string(),
                format!("{} B", r.bytes),
                format!("{:.0} ms", r.frame_time_s * 1e3),
                format!("{:.0} ms", r.raw_time_s * 1e3),
                format!("{:.1}x", r.raw_time_s / r.frame_time_s),
            ]
        })
        .collect::<Vec<_>>();
    crate::render_table(
        "Ablation (§6): adaptive compression under degrading wireless signal",
        &["Signal", "Chosen codec", "Frame bytes", "Frame time", "Raw time", "Gain"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOpts {
        RunOpts { quick: true, out_dir: "target/bench-test-out" }
    }

    #[test]
    fn soap_penalty_grows_with_payload() {
        let rows = soap_vs_binary(&opts());
        assert!(rows.last().unwrap().soap_penalty > rows[0].soap_penalty);
        assert!(rows.last().unwrap().soap_penalty > 2.0, "SOAP loses big for bulk");
        // Base64 blow-up visible on the wire.
        for r in &rows {
            assert!(r.soap_wire_bytes as f64 > r.payload_bytes as f64 * 4.0 / 3.0);
        }
    }

    #[test]
    fn direct_marshalling_wins_by_orders_of_magnitude() {
        let rows = marshalling(&opts());
        for r in &rows {
            assert!(r.speedup > 20.0, "{:?}", r);
        }
    }

    #[test]
    fn tile_sweep_has_sweet_spot() {
        let rows = tile_sweep(&opts());
        // More tiles help initially...
        assert!(rows[1].frame_time_s < rows[0].frame_time_s);
        // ...monotone non-increasing until transfer overheads flatten it.
        let best = rows.iter().map(|r| r.frame_time_s).fold(f64::INFINITY, f64::min);
        assert!(best < rows[0].frame_time_s * 0.7);
    }

    #[test]
    fn compression_gain_rises_as_signal_falls() {
        let rows = compression(&opts());
        let first_gain = rows[0].raw_time_s / rows[0].frame_time_s;
        let last_gain = rows.last().unwrap().raw_time_s / rows.last().unwrap().frame_time_s;
        assert!(last_gain >= first_gain);
        assert!(last_gain > 2.0, "weak signal must benefit from compression");
    }
}
