//! Criterion micro-benches for the software renderer: full-frame
//! rasterization, tile rendering, and the two compositors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rave_math::{Vec3, Viewport};
use rave_models::{build_with_budget, PaperModel};
use rave_render::composite::{depth_composite, stitch_tiles};
use rave_render::{Framebuffer, Renderer};
use rave_scene::{CameraParams, NodeKind, SceneTree};
use std::sync::Arc;

fn staged(model: PaperModel, budget: u64) -> (SceneTree, CameraParams) {
    let mesh = build_with_budget(model, budget);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.2 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    (tree, cam)
}

fn bench_fullframe(c: &mut Criterion) {
    let mut g = c.benchmark_group("rasterize_full_frame_200x200");
    for budget in [5_500u64, 50_000] {
        let (tree, cam) = staged(PaperModel::Galleon, budget);
        let renderer = Renderer::default();
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            let mut fb = Framebuffer::new(200, 200);
            b.iter(|| {
                renderer.render(&tree, &cam, &mut fb);
                std::hint::black_box(fb.get(100, 100));
            });
        });
    }
    g.finish();
}

fn bench_tiles(c: &mut Criterion) {
    let (tree, cam) = staged(PaperModel::Galleon, 5_500);
    let renderer = Renderer::default();
    let vp = Viewport::new(200, 200);
    let mut g = c.benchmark_group("rasterize_one_tile_of_4");
    let tile = vp.split_tiles(2, 2)[0];
    g.bench_function("tile_100x100", |b| {
        let mut fb = Framebuffer::new(tile.width, tile.height);
        b.iter(|| {
            renderer.render_tile(&tree, &cam, &vp, &tile, &mut fb);
            std::hint::black_box(fb.get(10, 10));
        });
    });
    g.finish();
}

fn bench_compositors(c: &mut Criterion) {
    let (tree, cam) = staged(PaperModel::Galleon, 5_500);
    let renderer = Renderer::default();
    let mut a = Framebuffer::new(400, 400);
    renderer.render(&tree, &cam, &mut a);
    let b_buf = a.clone();

    c.bench_function("depth_composite_400x400_x2", |b| {
        b.iter(|| {
            let mut dst = Framebuffer::new(400, 400);
            depth_composite(&mut dst, &[&a, &b_buf]);
            std::hint::black_box(dst.get(0, 0));
        });
    });

    let vp = Viewport::new(400, 400);
    let tiles: Vec<_> = vp.split_tiles(2, 2).into_iter().map(|t| (t, a.crop(t))).collect();
    c.bench_function("stitch_tiles_400x400_x4", |b| {
        b.iter(|| {
            let mut dst = Framebuffer::new(400, 400);
            let refs: Vec<_> = tiles.iter().map(|(v, f)| (*v, f)).collect();
            stitch_tiles(&mut dst, &refs);
            std::hint::black_box(dst.get(0, 0));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fullframe, bench_tiles, bench_compositors
}
criterion_main!(benches);
