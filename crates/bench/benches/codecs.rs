//! Criterion benches for every wire codec: image compression, SOAP,
//! binary frames, and scene marshalling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rave_compress::Codec;
use rave_grid::{SoapCodec, SoapEnvelope, SoapValue};
use rave_net::{Frame, FrameKind};
use rave_scene::introspect::{marshal_direct, marshal_introspective};
use rave_scene::{NodeKind, SceneTree};
use std::sync::Arc;

fn synthetic_frame(px: usize) -> Vec<u8> {
    (0..px * 3).map(|i| if (i / 600) % 2 == 0 { 40 } else { ((i * 7) % 251) as u8 }).collect()
}

fn bench_image_codecs(c: &mut Criterion) {
    let frame = synthetic_frame(200 * 200);
    let prev = synthetic_frame(200 * 200);
    let mut g = c.benchmark_group("image_codec_encode_200x200");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    for codec in Codec::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| std::hint::black_box(codec.encode(&frame, Some(&prev))));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("image_codec_decode_200x200");
    for codec in Codec::ALL {
        let enc = codec.encode(&frame, Some(&prev));
        g.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| std::hint::black_box(codec.decode(&enc, Some(&prev)).unwrap()));
        });
    }
    g.finish();
}

fn bench_soap(c: &mut Criterion) {
    let codec = SoapCodec::default();
    let env = SoapEnvelope::new("render-service", "createInstance")
        .arg("dataUrl", SoapValue::Str("rave://adrenochrome/Skull".into()))
        .arg("width", SoapValue::Int(200))
        .arg("blob", SoapValue::Bytes(vec![7u8; 4096]));
    let xml = codec.encode(&env);
    c.bench_function("soap_encode_4k_blob", |b| {
        b.iter(|| std::hint::black_box(codec.encode(&env)));
    });
    c.bench_function("soap_decode_4k_blob", |b| {
        b.iter(|| std::hint::black_box(codec.decode(&xml).unwrap()));
    });
}

fn bench_frames(c: &mut Criterion) {
    let f = Frame::new(FrameKind::FrameBuffer, vec![3u8; 120_000]);
    let enc = f.encode();
    c.bench_function("binary_frame_encode_120k", |b| {
        b.iter(|| std::hint::black_box(f.encode()));
    });
    c.bench_function("binary_frame_decode_120k", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::from(&enc[..]);
            std::hint::black_box(Frame::decode(&mut buf).unwrap())
        });
    });
}

fn bench_marshalling(c: &mut Criterion) {
    let mesh = rave_models::build_with_budget(rave_models::PaperModel::Galleon, 5_500);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    c.bench_function("marshal_introspective_galleon", |b| {
        b.iter(|| std::hint::black_box(marshal_introspective(&tree)));
    });
    c.bench_function("marshal_direct_galleon", |b| {
        b.iter(|| std::hint::black_box(marshal_direct(&tree)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_image_codecs, bench_soap, bench_frames, bench_marshalling
}
criterion_main!(benches);
