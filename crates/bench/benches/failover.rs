//! Data-service failover head to head: warm promotion of a log-shipped
//! standby (`rave_core::replica`) versus standing up a cold mirror at
//! failure time (`MirrorPair::establish`, which bulk-ships the whole
//! audit trail), across scene sizes and lag settings. Both paths run in
//! the same simulated testbed, so "recovery time" is virtual wall time:
//! every byte of replication and every control round trip is charged
//! through the network model. Emits `BENCH_failover.json` at the repo
//! root. Set `FAILOVER_QUICK=1` for a tiny CI smoke run (smaller
//! sessions, same JSON shape, same asserts).

use rave_core::mirror::MirrorPair;
use rave_core::replica::{establish_standby, run_log_shipping};
use rave_core::sched::rebalance::process_events;
use rave_core::sched::SchedEvent;
use rave_core::trace::TraceKind;
use rave_core::world::{publish_update, RaveWorld};
use rave_core::{DataServiceId, RaveConfig, RaveSim};
use rave_scene::{InterestSet, NodeKind, SceneUpdate};
use rave_sim::{SimTime, Simulation};
use rave_store::StoreConfig;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rave-bench-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn add(sim: &mut RaveSim, ds: DataServiceId, seq_hint: u64) {
    let id = sim.world.data_mut(ds).scene.allocate_id();
    publish_update(
        sim,
        ds,
        "bench",
        SceneUpdate::AddNode {
            id,
            parent: rave_scene::NodeId(0),
            name: format!("n{seq_hint}"),
            kind: NodeKind::Group,
        },
    )
    .unwrap();
}

/// Session world: primary on adrenochrome, a subscriber on the laptop,
/// `updates` committed entries, fully quiesced.
fn session_world(updates: u64, cfg: RaveConfig) -> (RaveSim, DataServiceId) {
    let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 42));
    let primary = sim.world.spawn_data_service("adrenochrome", "sess");
    let rs = sim.world.spawn_render_service("laptop");
    sim.world.data_mut(primary).subscribe_live(rs, InterestSet::everything());
    for i in 0..updates {
        add(&mut sim, primary, i);
    }
    sim.run();
    (sim, primary)
}

struct ConfigResult {
    updates: u64,
    max_lag: u64,
    warm_secs: f64,
    cold_secs: f64,
    warm_replayed: u64,
    cold_replayed: u64,
    lost_updates: u64,
}

/// Warm path: standby kept in lockstep by log shipping; failure is a
/// `SchedEvent::DataFailure` and recovery is the promotion.
fn run_warm(updates: u64, max_lag: u64) -> (f64, u64, u64) {
    let cfg = RaveConfig { ship_max_lag: max_lag, ..Default::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(cfg, 42));
    let primary = sim.world.spawn_data_service("adrenochrome", "sess");
    let standby = sim.world.spawn_data_service("tower", "sess-standby");
    let rs = sim.world.spawn_render_service("laptop");
    sim.world.data_mut(primary).subscribe_live(rs, InterestSet::everything());
    let pdir = tmp_dir(&format!("warm-p-{updates}-{max_lag}"));
    let sdir = tmp_dir(&format!("warm-s-{updates}-{max_lag}"));
    // Small segments force rotations (sealed-segment shipping); a huge
    // checkpoint interval keeps the whole WAL shippable.
    let store_cfg =
        StoreConfig { segment_max_bytes: 4096, checkpoint_every: u64::MAX / 2, sync_writes: false };
    sim.world.data_mut(primary).attach_store(&pdir, store_cfg).unwrap();
    establish_standby(&mut sim, primary, standby, &pdir, &sdir).unwrap();
    let horizon = sim.now() + SimTime::from_secs(600.0);
    run_log_shipping(&mut sim, primary, horizon);
    for i in 0..updates {
        add(&mut sim, primary, i);
    }
    sim.run();

    let t0 = sim.now();
    let outcome =
        process_events(&mut sim, primary, &[SchedEvent::DataFailure { service: primary }]);
    assert_eq!(outcome.promotions.len(), 1, "warm world must promote");
    let report = outcome.promotions[0].clone();
    assert!(report.warm, "a linked standby promotes warm");
    assert_eq!(report.promoted, standby);
    if max_lag == 0 {
        assert_eq!(
            report.lost_updates, 0,
            "zero committed updates lost at lag 0 ({updates} updates)"
        );
    }
    sim.run();
    // The promoted service owns the session: the subscriber still
    // receives updates and sequence numbers continue.
    let before = sim.world.data(standby).audit.last_seq();
    add(&mut sim, standby, before + 1);
    sim.run();
    assert_eq!(sim.world.data(standby).audit.last_seq(), before + 1);

    let recovery = (report.completed_at - t0).as_secs();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
    (recovery, report.replayed_bytes, report.lost_updates)
}

/// Cold path: no standby exists at failure time; a fresh mirror is
/// established (the whole trail crosses the wire) and subscribers are
/// flipped to it once the bulk copy lands.
fn run_cold(updates: u64) -> (f64, u64) {
    let (mut sim, primary) = session_world(updates, RaveConfig::default());
    let spare = sim.world.spawn_data_service("tower", "sess-spare");
    let replayed: u64 = {
        let p = sim.world.data(primary);
        p.audit.entries().iter().map(|e| e.stamped.wire_size()).sum::<u64>() + 64
    };
    let t0 = sim.now();
    let pair = MirrorPair::establish(&mut sim, primary, spare);
    sim.run();
    let established_at = sim
        .world
        .trace
        .last_of(TraceKind::Bootstrap)
        .expect("mirror establish traces Bootstrap")
        .at;
    let moved = pair.failover(&mut sim);
    assert_eq!(moved, 1);
    assert_eq!(sim.world.data(spare).audit.last_seq(), updates, "cold mirror holds the full trail");
    ((established_at - t0).as_secs(), replayed)
}

fn main() {
    let quick = std::env::var("FAILOVER_QUICK").is_ok_and(|v| v == "1");
    let configs: Vec<(u64, u64)> = if quick {
        vec![(200, 0), (600, 16)]
    } else {
        vec![(500, 0), (2000, 0), (2000, 16), (2000, 64), (8000, 0)]
    };

    let mut results: Vec<ConfigResult> = Vec::new();
    for &(updates, max_lag) in &configs {
        let (warm_secs, warm_replayed, lost) = run_warm(updates, max_lag);
        let (cold_secs, cold_replayed) = run_cold(updates);
        println!(
            "updates={updates} lag={max_lag}: warm {:.3} ms vs cold {:.3} ms \
             ({} vs {} bytes replayed, {lost} lost)",
            warm_secs * 1e3,
            cold_secs * 1e3,
            warm_replayed,
            cold_replayed,
        );
        results.push(ConfigResult {
            updates,
            max_lag,
            warm_secs,
            cold_secs,
            warm_replayed,
            cold_replayed,
            lost_updates: lost,
        });
    }

    let min_speedup =
        results.iter().map(|r| r.cold_secs / r.warm_secs).fold(f64::INFINITY, f64::min);

    let lines: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{ \"updates\": {}, \"max_lag\": {}, \
                 \"recovery_time\": {{ \"warm_secs\": {:.6}, \"cold_secs\": {:.6} }}, \
                 \"replayed_bytes\": {{ \"warm\": {}, \"cold\": {} }}, \
                 \"lost_updates\": {}, \"speedup\": {:.1} }}",
                r.updates,
                r.max_lag,
                r.warm_secs,
                r.cold_secs,
                r.warm_replayed,
                r.cold_replayed,
                r.lost_updates,
                r.cold_secs / r.warm_secs,
            )
        })
        .collect();

    let out = format!(
        "{{\n  \"bench\": \"failover\",\n  \"quick\": {quick},\n  \"configs\": [\n    {}\n  ],\n  \
         \"warm_vs_cold_speedup\": {min_speedup:.1}\n}}\n",
        lines.join(",\n    "),
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_failover.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    for r in &results {
        assert!(
            r.warm_secs < r.cold_secs,
            "warm promotion ({:.4}s) must beat cold mirror establishment ({:.4}s) \
             at {} updates, lag {}",
            r.warm_secs,
            r.cold_secs,
            r.updates,
            r.max_lag,
        );
        assert!(
            r.warm_replayed < r.cold_replayed,
            "warm promotion replays less than the full trail"
        );
        if r.max_lag == 0 {
            assert_eq!(r.lost_updates, 0, "lag 0 loses nothing");
        }
        assert!(
            r.lost_updates <= r.max_lag,
            "loss bounded by the configured lag ({} > {})",
            r.lost_updates,
            r.max_lag
        );
    }
}
