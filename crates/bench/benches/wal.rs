//! Durable-log formats head to head: the rave-store binary WAL versus
//! the JSON-lines audit trail, on a 10k-update session — append (write
//! the whole session to disk) and replay (read it back and rebuild the
//! scene). Emits `BENCH_wal.json` at the repo root with the measured
//! times, alongside the usual criterion lines.

use criterion::Criterion;
use rave_scene::{AuditEntry, AuditTrail, NodeKind, SceneTree, SceneUpdate, StampedUpdate};
use rave_store::wal::Wal;
use std::path::PathBuf;
use std::time::Instant;

const UPDATES: u64 = 10_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rave-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A session of `n` updates: node adds followed by transform churn, the
/// shape a collaborative editing session actually has.
fn session(n: u64) -> (SceneTree, Vec<AuditEntry>) {
    let mut tree = SceneTree::new();
    let mut entries = Vec::with_capacity(n as usize);
    let mut nodes = Vec::new();
    for seq in 1..=n {
        let update = if seq <= n / 4 || nodes.is_empty() {
            let id = tree.allocate_id();
            nodes.push(id);
            SceneUpdate::AddNode {
                id,
                parent: tree.root(),
                name: format!("n{seq}"),
                kind: NodeKind::Group,
            }
        } else {
            let id = nodes[(seq as usize * 7919) % nodes.len()];
            SceneUpdate::SetTransform {
                id,
                transform: rave_scene::Transform::from_translation(rave_math::Vec3::new(
                    seq as f32, 0.0, 0.0,
                )),
            }
        };
        update.apply(&mut tree).unwrap();
        entries.push(AuditEntry {
            at_secs: seq as f64 * 0.1,
            stamped: StampedUpdate { seq, origin: "bench".into(), update },
        });
    }
    (tree, entries)
}

fn wal_write(dir: &PathBuf, entries: &[AuditEntry]) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let (mut wal, _) = Wal::open(dir, 8 << 20, false).unwrap();
    for e in entries {
        wal.append(e).unwrap();
    }
    wal.sync().unwrap();
}

fn wal_replay(dir: &PathBuf) -> SceneTree {
    let rec = rave_store::recover(dir).unwrap();
    assert_eq!(rec.last_seq, UPDATES);
    rec.tree
}

fn jsonl_write(path: &PathBuf, trail: &AuditTrail) {
    let f = std::fs::File::create(path).unwrap();
    trail.save(std::io::BufWriter::new(f)).unwrap();
}

fn jsonl_replay(path: &PathBuf) -> SceneTree {
    let f = std::fs::File::open(path).unwrap();
    let trail = AuditTrail::load(std::io::BufReader::new(f)).unwrap();
    trail.replay_all().unwrap()
}

/// Best-of-`n` wall time of `f`, in seconds.
fn time_best<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir).unwrap().map(|d| d.unwrap().metadata().unwrap().len()).sum()
}

fn main() {
    let (live, entries) = session(UPDATES);
    let mut trail = AuditTrail::new();
    for e in &entries {
        trail.record(e.at_secs, e.stamped.clone()).unwrap();
    }
    let wal_dir = tmp_dir("wal");
    let jsonl_path = tmp_dir("jsonl").join("session.jsonl");

    // Criterion lines for the usual `cargo bench` readout.
    let mut c = Criterion::default().sample_size(10);
    c.bench_function("wal_append_10k", |b| b.iter(|| wal_write(&wal_dir, &entries)));
    c.bench_function("jsonl_save_10k", |b| b.iter(|| jsonl_write(&jsonl_path, &trail)));
    wal_write(&wal_dir, &entries);
    jsonl_write(&jsonl_path, &trail);
    c.bench_function("wal_replay_10k", |b| b.iter(|| wal_replay(&wal_dir)));
    c.bench_function("jsonl_replay_10k", |b| b.iter(|| jsonl_replay(&jsonl_path)));

    // Headline numbers for BENCH_wal.json: best-of-5, both paths ending
    // in an identical reconstructed scene.
    let wal_append = time_best(5, || wal_write(&wal_dir, &entries));
    let jsonl_save = time_best(5, || jsonl_write(&jsonl_path, &trail));
    let wal_rep = time_best(5, || wal_replay(&wal_dir));
    let jsonl_rep = time_best(5, || jsonl_replay(&jsonl_path));
    assert_eq!(wal_replay(&wal_dir), live);
    assert_eq!(jsonl_replay(&jsonl_path).len(), live.len());
    let wal_bytes = dir_bytes(&wal_dir);
    let jsonl_bytes = std::fs::metadata(&jsonl_path).unwrap().len();

    let out = format!(
        "{{\n  \"bench\": \"wal\",\n  \"updates\": {UPDATES},\n  \"wal\": {{ \"append_secs\": {wal_append:.6}, \"replay_secs\": {wal_rep:.6}, \"bytes\": {wal_bytes} }},\n  \"jsonl\": {{ \"save_secs\": {jsonl_save:.6}, \"replay_secs\": {jsonl_rep:.6}, \"bytes\": {jsonl_bytes} }},\n  \"replay_speedup\": {:.2},\n  \"size_ratio\": {:.2}\n}}\n",
        jsonl_rep / wal_rep,
        jsonl_bytes as f64 / wal_bytes as f64,
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wal.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());
    assert!(
        wal_rep < jsonl_rep,
        "binary WAL replay ({wal_rep:.4}s) should beat JSON-lines ({jsonl_rep:.4}s)"
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(jsonl_path.parent().unwrap());
}
