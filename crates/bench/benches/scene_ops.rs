//! Criterion benches for scene-tree operations on the replication hot
//! path: update application, subset extraction, audit replay, and model
//! generation/decimation.

use criterion::{criterion_group, criterion_main, Criterion};
use rave_math::Vec3;
use rave_models::decimate::decimate_to;
use rave_models::generators::sphere;
use rave_scene::{AuditTrail, NodeKind, SceneTree, SceneUpdate, StampedUpdate, Transform};

fn wide_tree(children: usize) -> SceneTree {
    let mut tree = SceneTree::new();
    let root = tree.root();
    for i in 0..children {
        let g = tree.add_node(root, format!("g{i}"), NodeKind::Group).unwrap();
        for j in 0..4 {
            tree.add_node(g, format!("c{j}"), NodeKind::Group).unwrap();
        }
    }
    tree
}

fn bench_updates(c: &mut Criterion) {
    let tree = wide_tree(200);
    let targets: Vec<_> = tree.descendants(tree.root());
    c.bench_function("apply_1000_transform_updates", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                for i in 0..1000 {
                    let id = targets[i % targets.len()];
                    SceneUpdate::SetTransform {
                        id,
                        transform: Transform::from_translation(Vec3::new(i as f32, 0.0, 0.0)),
                    }
                    .apply(&mut t)
                    .unwrap();
                }
                std::hint::black_box(t.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_subset(c: &mut Criterion) {
    let tree = wide_tree(500);
    let root = tree.root();
    let pick = tree.node(root).unwrap().children[250];
    c.bench_function("extract_subset_from_2500_nodes", |b| {
        b.iter(|| std::hint::black_box(tree.extract_subset(&[pick])));
    });
    c.bench_function("world_bounds_2500_nodes", |b| {
        b.iter(|| std::hint::black_box(tree.world_bounds(root)));
    });
}

fn bench_audit_replay(c: &mut Criterion) {
    let mut tree = SceneTree::new();
    let mut trail = AuditTrail::new();
    for i in 0..1000u64 {
        let id = tree.allocate_id();
        let update = SceneUpdate::AddNode {
            id,
            parent: tree.root(),
            name: format!("n{i}"),
            kind: NodeKind::Group,
        };
        update.apply(&mut tree).unwrap();
        trail.record(i as f64, StampedUpdate { seq: i + 1, origin: "b".into(), update }).unwrap();
    }
    c.bench_function("audit_replay_1000_updates", |b| {
        b.iter(|| std::hint::black_box(trail.replay_all().unwrap()));
    });
}

fn bench_model_pipeline(c: &mut Criterion) {
    c.bench_function("generate_sphere_10k", |b| {
        b.iter(|| std::hint::black_box(sphere(Vec3::ZERO, 1.0, 10_000)));
    });
    c.bench_function("decimate_10k_to_2k", |b| {
        b.iter_batched(
            || sphere(Vec3::ZERO, 1.0, 10_000),
            |mut m| {
                decimate_to(&mut m, 2_000);
                std::hint::black_box(m.triangle_count())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates, bench_subset, bench_audit_replay, bench_model_pipeline
}
criterion_main!(benches);
