//! Scene-storage scaling guardrail: the arena tree (hot/cold split, flat
//! pre-order cache, dense cost aggregates) versus a verbatim copy of the
//! pre-arena `BTreeMap<NodeId, Node>` tree, over 10k/100k/1M-node scenes.
//! Three hot paths are timed, best-of-N rounds each:
//!
//! - **traversal**: full pre-order walk touching only hot data (kind tag
//!   + translation) — the planner/interest/render walk;
//! - **costing**: an edit followed by subtree costs for every top-level
//!   group plus the total — the planner's cost refresh (both trees
//!   rebuild their invalidated cache inside the timed region);
//! - **lookup**: random id→node resolution — O(1) slot index vs B-tree
//!   descent.
//!
//! Emits `BENCH_scene.json` at the repo root with per-config speedups;
//! the asserts at the bottom hold the arena to the ISSUE's ≥5x floor for
//! traversal and costing at 100k nodes, and a 1M-node traversal budget.
//! Set `SCENE_QUICK=1` for a CI smoke run (fewer rounds, 1M config
//! retained, same JSON shape, same asserts).

use rave_math::Vec3;
use rave_scene::{KindTag, MeshData, Node, NodeCost, NodeId, NodeKind, SceneTree, Transform};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const NODE_COUNTS: [usize; 3] = [10_000, 100_000, 1_000_000];

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

// ---- legacy baseline -----------------------------------------------------
//
// A verbatim copy of the pre-arena `SceneTree` storage and the operations
// under test: `BTreeMap<NodeId, Node>` (the `Node` record still exists as
// the serde interchange struct, with the same `children`/`parent` fields
// the old tree stored), the stack-based `descendants_iter`, and the
// mutex-guarded `HashMap` cost index rebuilt bottom-up after every
// `node_mut`/structural invalidation.

struct LegacyTree {
    nodes: BTreeMap<NodeId, Node>,
    root: NodeId,
    next_id: u64,
    cost_index: std::sync::Mutex<LegacyCostState>,
}

#[derive(Default)]
struct LegacyCostState {
    valid: bool,
    subtree: HashMap<NodeId, NodeCost>,
}

impl LegacyTree {
    fn new() -> Self {
        let root = NodeId(0);
        let mut nodes = BTreeMap::new();
        nodes.insert(root, Node::new(root, "root", NodeKind::Group));
        Self { nodes, root, next_id: 1, cost_index: Default::default() }
    }

    fn add_node(&mut self, parent: NodeId, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let mut node = Node::new(id, name, kind);
        node.parent = Some(parent);
        self.nodes.insert(id, node);
        self.nodes.get_mut(&parent).expect("parent exists").children.push(id);
        self.cost_index.get_mut().unwrap().valid = false;
        id
    }

    fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.cost_index.get_mut().unwrap().valid = false;
        self.nodes.get_mut(&id)
    }

    fn descendants_iter(&self, start: NodeId) -> LegacyDescendants<'_> {
        LegacyDescendants { tree: self, stack: vec![start] }
    }

    fn subtree_cost(&self, id: NodeId) -> NodeCost {
        let mut state = self.cost_index.lock().unwrap();
        if !state.valid {
            state.subtree.clear();
            state.subtree.reserve(self.nodes.len());
            let order: Vec<NodeId> = self.descendants_iter(self.root).map(|n| n.id).collect();
            for &nid in order.iter().rev() {
                let node = &self.nodes[&nid];
                let mut agg = node.kind.cost();
                for c in &node.children {
                    if let Some(child) = state.subtree.get(c) {
                        agg += *child;
                    }
                }
                state.subtree.insert(nid, agg);
            }
            state.valid = true;
        }
        state.subtree.get(&id).copied().unwrap_or(NodeCost::ZERO)
    }
}

struct LegacyDescendants<'a> {
    tree: &'a LegacyTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for LegacyDescendants<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        while let Some(id) = self.stack.pop() {
            if let Some(node) = self.tree.nodes.get(&id) {
                self.stack.extend(node.children.iter().rev().copied());
                return Some(node);
            }
        }
        None
    }
}

// ---- scene construction --------------------------------------------------

fn small_mesh(tris: u32) -> MeshData {
    MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }
}

/// The shared build recipe: top-level groups under the root, leaf nodes
/// round-robined beneath them, every third leaf a mesh (payloads
/// `Arc`-shared from a small pool so a 1M-node scene fits in memory).
/// Deterministic, so both trees get identical ids and per-group cost
/// queries compare like for like.
struct Recipe {
    groups: usize,
    total: usize,
    meshes: Vec<Arc<MeshData>>,
    transforms: Vec<Transform>,
}

impl Recipe {
    fn for_nodes(n: usize) -> Self {
        let mut rng = Lcg(0xa7e0a ^ n as u64);
        let meshes: Vec<Arc<MeshData>> =
            (0..8).map(|_| Arc::new(small_mesh(rng.in_range(10, 200) as u32))).collect();
        let transforms: Vec<Transform> = (0..64)
            .map(|_| {
                Transform::from_translation(Vec3::new(
                    rng.in_range(0, 100) as f32,
                    rng.in_range(0, 100) as f32,
                    rng.in_range(0, 100) as f32,
                ))
            })
            .collect();
        Self { groups: (n / 1000).clamp(8, 1024), total: n, meshes, transforms }
    }

    fn kind(&self, i: usize) -> NodeKind {
        if i.is_multiple_of(3) {
            NodeKind::Mesh(Arc::clone(&self.meshes[i % self.meshes.len()]))
        } else {
            NodeKind::Group
        }
    }

    fn build_arena(&self) -> (SceneTree, Vec<NodeId>) {
        let mut t = SceneTree::with_capacity(self.total + self.groups + 1);
        let root = t.root();
        let groups: Vec<NodeId> = (0..self.groups)
            .map(|g| t.add_node(root, format!("g{g}"), NodeKind::Group).unwrap())
            .collect();
        for i in 0..self.total {
            let parent = groups[i % groups.len()];
            let id = t.add_node(parent, format!("n{i}"), self.kind(i)).unwrap();
            t.set_transform(id, self.transforms[i % self.transforms.len()]);
        }
        (t, groups)
    }

    fn build_legacy(&self) -> (LegacyTree, Vec<NodeId>) {
        let mut t = LegacyTree::new();
        let root = t.root;
        let groups: Vec<NodeId> =
            (0..self.groups).map(|g| t.add_node(root, format!("g{g}"), NodeKind::Group)).collect();
        for i in 0..self.total {
            let parent = groups[i % groups.len()];
            let id = t.add_node(parent, format!("n{i}"), self.kind(i));
            t.node_mut(id).unwrap().transform = self.transforms[i % self.transforms.len()];
        }
        (t, groups)
    }
}

// ---- measured operations -------------------------------------------------

/// Full-tree pre-order walk over hot data: count meshes and fold the
/// translations. Both sides compute the identical value (asserted), so
/// neither can cheat by skipping nodes.
fn walk_arena(t: &SceneTree) -> (u64, f32) {
    let mut meshes = 0u64;
    let mut acc = 0.0f32;
    for n in t.descendants_iter(t.root()) {
        if n.kind_tag() == KindTag::Mesh {
            meshes += 1;
        }
        acc += n.transform().translation.x;
    }
    (meshes, acc)
}

fn walk_legacy(t: &LegacyTree) -> (u64, f32) {
    let mut meshes = 0u64;
    let mut acc = 0.0f32;
    for n in t.descendants_iter(t.root) {
        if matches!(n.kind, NodeKind::Mesh(_)) {
            meshes += 1;
        }
        acc += n.transform.translation.x;
    }
    (meshes, acc)
}

/// The planner's cost refresh: one edit (invalidating the cost cache),
/// then subtree costs for every top-level group plus the total.
fn cost_arena(t: &mut SceneTree, groups: &[NodeId], probe: NodeId) -> u64 {
    t.node_mut(probe).unwrap().bump_version();
    let mut polys = 0u64;
    for &g in groups {
        polys += t.subtree_cost(g).polygons;
    }
    polys + t.total_cost().polygons
}

fn cost_legacy(t: &mut LegacyTree, groups: &[NodeId], probe: NodeId) -> u64 {
    t.node_mut(probe).unwrap().version += 1;
    let mut polys = 0u64;
    for &g in groups {
        polys += t.subtree_cost(g).polygons;
    }
    polys + t.subtree_cost(t.root).polygons
}

/// Random id lookups (seeded identically for both trees).
fn lookup_arena(t: &SceneTree, n: usize) -> u64 {
    let mut rng = Lcg(0x100c0);
    let mut hits = 0u64;
    for _ in 0..100_000 {
        let id = NodeId(rng.in_range(1, n as u64));
        if let Some(node) = t.node(id) {
            hits += node.child_count() as u64 + 1;
        }
    }
    hits
}

fn lookup_legacy(t: &LegacyTree, n: usize) -> u64 {
    let mut rng = Lcg(0x100c0);
    let mut hits = 0u64;
    for _ in 0..100_000 {
        let id = NodeId(rng.in_range(1, n as u64));
        if let Some(node) = t.node(id) {
            hits += node.children.len() as u64 + 1;
        }
    }
    hits
}

struct ConfigTiming {
    nodes: usize,
    traversal_old: f64,
    traversal_new: f64,
    costing_old: f64,
    costing_new: f64,
    lookup_old: f64,
    lookup_new: f64,
}

fn best_of<R>(rounds: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::var("SCENE_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 3 } else { 7 };

    let mut results: Vec<ConfigTiming> = Vec::new();
    for &nodes in &NODE_COUNTS {
        let recipe = Recipe::for_nodes(nodes);
        let (mut arena, groups_a) = recipe.build_arena();
        let (mut legacy, groups_l) = recipe.build_legacy();
        assert_eq!(groups_a, groups_l, "identical build recipe, identical ids");
        assert_eq!(arena.len(), legacy.nodes.len());

        // Both storages must agree on every measured result before any
        // timing is trusted.
        assert_eq!(walk_arena(&arena).0, walk_legacy(&legacy).0);
        let probe = groups_a[0];
        assert_eq!(
            cost_arena(&mut arena, &groups_a, probe),
            cost_legacy(&mut legacy, &groups_l, probe)
        );
        assert_eq!(lookup_arena(&arena, nodes), lookup_legacy(&legacy, nodes));

        let traversal_new = best_of(rounds, || walk_arena(&arena));
        let traversal_old = best_of(rounds, || walk_legacy(&legacy));
        let costing_new = best_of(rounds, || cost_arena(&mut arena, &groups_a, probe));
        let costing_old = best_of(rounds, || cost_legacy(&mut legacy, &groups_l, probe));
        let lookup_new = best_of(rounds, || lookup_arena(&arena, nodes));
        let lookup_old = best_of(rounds, || lookup_legacy(&legacy, nodes));

        results.push(ConfigTiming {
            nodes,
            traversal_old,
            traversal_new,
            costing_old,
            costing_new,
            lookup_old,
            lookup_new,
        });
    }

    let at = |n: usize| results.iter().find(|c| c.nodes == n).expect("config present");
    let traversal_speedup_100k = at(100_000).traversal_old / at(100_000).traversal_new;
    let costing_speedup_100k = at(100_000).costing_old / at(100_000).costing_new;
    let traversal_1m_ms = at(1_000_000).traversal_new * 1e3;

    let configs: Vec<String> = results
        .iter()
        .map(|c| {
            format!(
                "{{ \"nodes\": {}, \"traversal_old_ms\": {:.3}, \"traversal_ms\": {:.3}, \
                 \"traversal_speedup\": {:.1}, \"costing_old_ms\": {:.3}, \"costing_ms\": {:.3}, \
                 \"costing_speedup\": {:.1}, \"lookup_old_ms\": {:.3}, \"lookup_ms\": {:.3}, \
                 \"lookup_speedup\": {:.1} }}",
                c.nodes,
                c.traversal_old * 1e3,
                c.traversal_new * 1e3,
                c.traversal_old / c.traversal_new,
                c.costing_old * 1e3,
                c.costing_new * 1e3,
                c.costing_old / c.costing_new,
                c.lookup_old * 1e3,
                c.lookup_new * 1e3,
                c.lookup_old / c.lookup_new,
            )
        })
        .collect();

    let out = format!(
        "{{\n  \"bench\": \"scene\",\n  \"quick\": {quick},\n  \"configs\": [\n    {}\n  ],\n  \
         \"traversal_speedup_100k\": {traversal_speedup_100k:.1},\n  \
         \"costing_speedup_100k\": {costing_speedup_100k:.1},\n  \
         \"traversal_1m_ms\": {traversal_1m_ms:.3}\n}}\n",
        configs.join(",\n    "),
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scene.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    assert!(
        traversal_speedup_100k >= 5.0,
        "arena full-tree traversal must be ≥5x the BTreeMap walk at 100k nodes \
         (got {traversal_speedup_100k:.1}x)"
    );
    assert!(
        costing_speedup_100k >= 5.0,
        "arena subtree costing must be ≥5x the BTreeMap cost index at 100k nodes \
         (got {costing_speedup_100k:.1}x)"
    );
    assert!(
        traversal_1m_ms < 100.0,
        "a full 1M-node traversal must stay under 100 ms (got {traversal_1m_ms:.1} ms)"
    );
}
