//! Parallel renderer head to head: the binned rayon engine versus the
//! serial immediate-mode reference, on full 200x200 frames of the 5.5k-
//! and 50k-triangle Galleon, at 1/2/4/8 rayon threads, plus the two
//! band-parallel compositors. Emits `BENCH_render_parallel.json` at the
//! repo root with the measured times, alongside the usual criterion
//! lines. The headline claim — checked with an assert at the bottom —
//! is a >= 2x full-frame speedup at 4 threads on the 50k scene versus
//! the 1-thread serial baseline.

use criterion::Criterion;
use rave_math::Vec3;
use rave_models::{build_with_budget, PaperModel};
use rave_render::composite::{blend_volume_layers, depth_composite, VolumeLayer};
use rave_render::{Framebuffer, Renderer};
use rave_scene::{CameraParams, NodeKind, SceneTree};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const FRAME: (u32, u32) = (200, 200);
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn staged(model: PaperModel, budget: u64) -> (SceneTree, CameraParams) {
    let mesh = build_with_budget(model, budget);
    let mut tree = SceneTree::new();
    let root = tree.root();
    tree.add_node(root, "m", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let b = tree.world_bounds(root);
    let cam = CameraParams::look_at(
        b.center() + Vec3::new(0.0, 0.2 * b.radius(), 2.0 * b.radius()),
        b.center(),
        Vec3::Y,
    );
    (tree, cam)
}

/// Best-of-`n` wall time of `f`, in seconds.
fn time_best<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
}

/// `{"1": a, "2": b, ...}` from per-thread-count timings.
fn json_by_threads(times: &[(usize, f64)]) -> String {
    let fields: Vec<String> = times.iter().map(|(t, s)| format!("\"{t}\": {s:.6}")).collect();
    format!("{{ {} }}", fields.join(", "))
}

fn synthetic_layers(width: u32, height: u32, n: usize) -> Vec<VolumeLayer> {
    (0..n)
        .map(|i| {
            let color = (0..(width * height) as usize)
                .map(|p| {
                    let t = (p % 97) as f32 / 97.0;
                    [t, 1.0 - t, 0.5, 0.25 + 0.1 * i as f32]
                })
                .collect();
            VolumeLayer { color, view_distance: 10.0 - i as f32, width, height }
        })
        .collect()
}

fn main() {
    let renderer = Renderer::default();
    let (w, h) = FRAME;

    // Criterion lines for the usual `cargo bench` readout (5.5k scene
    // only; the JSON pass below covers both budgets).
    let mut c = Criterion::default().sample_size(10);
    {
        let (tree, cam) = staged(PaperModel::Galleon, 5_500);
        let mut fb = Framebuffer::new(w, h);
        c.bench_function("render_reference_5500", |b| {
            b.iter(|| {
                renderer.render_reference(&tree, &cam, &mut fb);
                std::hint::black_box(fb.get(100, 100));
            })
        });
        for t in THREADS {
            let p = pool(t);
            c.bench_function(&format!("render_binned_5500_{t}t"), |b| {
                b.iter(|| {
                    p.install(|| renderer.render(&tree, &cam, &mut fb));
                    std::hint::black_box(fb.get(100, 100));
                })
            });
        }
    }

    // Headline numbers for BENCH_render_parallel.json: the binned image
    // is checked bit-identical to the serial reference before any timing
    // is trusted, then baseline and parallel runs are timed in
    // *interleaved* rounds (min over 9) so background-load noise hits
    // every configuration equally instead of whichever ran last.
    let mut scene_json = Vec::new();
    let mut speedup_4t_50k = 0.0;
    for budget in [5_500u64, 50_000] {
        let (tree, cam) = staged(PaperModel::Galleon, budget);
        let mut reference = Framebuffer::new(w, h);
        renderer.render_reference(&tree, &cam, &mut reference);
        let pools: Vec<(usize, rayon::ThreadPool)> =
            THREADS.iter().map(|&t| (t, pool(t))).collect();
        let mut fb = Framebuffer::new(w, h);
        for (t, p) in &pools {
            p.install(|| renderer.render(&tree, &cam, &mut fb));
            assert_eq!(
                reference.diff_fraction(&fb, 0.0),
                0.0,
                "binned output differs from serial reference ({budget} tris, {t} threads)"
            );
        }
        let mut baseline = f64::INFINITY;
        let mut par: Vec<(usize, f64)> = THREADS.iter().map(|&t| (t, f64::INFINITY)).collect();
        for _ in 0..9 {
            let t0 = Instant::now();
            std::hint::black_box(renderer.render_reference(&tree, &cam, &mut reference));
            baseline = baseline.min(t0.elapsed().as_secs_f64());
            for (i, (_, p)) in pools.iter().enumerate() {
                let t0 = Instant::now();
                std::hint::black_box(p.install(|| renderer.render(&tree, &cam, &mut fb)));
                par[i].1 = par[i].1.min(t0.elapsed().as_secs_f64());
            }
        }
        if budget == 50_000 {
            let par4 = par.iter().find(|(t, _)| *t == 4).unwrap().1;
            speedup_4t_50k = baseline / par4;
        }
        scene_json.push(format!(
            "    {{ \"budget\": {budget}, \"baseline_serial_secs\": {baseline:.6}, \"parallel_secs\": {} }}",
            json_by_threads(&par)
        ));
    }

    // Band-parallel compositors, same thread sweep on 400x400 inputs.
    let (tree, cam) = staged(PaperModel::Galleon, 5_500);
    let mut a = Framebuffer::new(400, 400);
    renderer.render(&tree, &cam, &mut a);
    let b_buf = a.clone();
    let mut depth = Vec::new();
    let mut blend = Vec::new();
    for t in THREADS {
        let p = pool(t);
        depth.push((
            t,
            time_best(5, || {
                let mut dst = Framebuffer::new(400, 400);
                p.install(|| depth_composite(&mut dst, &[&a, &b_buf]));
                dst.get(0, 0)
            }),
        ));
        let mut layers = synthetic_layers(400, 400, 4);
        blend.push((
            t,
            time_best(5, || {
                let mut dst = Framebuffer::new(400, 400);
                p.install(|| blend_volume_layers(&mut dst, &mut layers));
                dst.get(0, 0)
            }),
        ));
    }

    let out = format!(
        "{{\n  \"bench\": \"parallel_render\",\n  \"frame\": \"{w}x{h}\",\n  \"threads\": [1, 2, 4, 8],\n  \"scenes\": [\n{}\n  ],\n  \"compositors\": {{\n    \"depth_composite_400x400_x2\": {},\n    \"blend_volume_layers_400x400_x4\": {}\n  }},\n  \"speedup_4t_50k\": {speedup_4t_50k:.2}\n}}\n",
        scene_json.join(",\n"),
        json_by_threads(&depth),
        json_by_threads(&blend),
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_render_parallel.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());
    assert!(
        speedup_4t_50k >= 2.0,
        "binned engine at 4 threads should be >= 2x the serial reference \
         on the 50k-triangle frame (got {speedup_4t_50k:.2}x)"
    );
}
