//! Collaboration scaling guardrail: routing and fan-out cost of one
//! session tick as the subscriber population grows 100 → 1k → 10k thin
//! clients. Two measurements, one artifact (`BENCH_collab.json`):
//!
//! 1. Routing: per-update decision latency of the inverted interest
//!    index (`DataService::route`) versus the embedded naive oracle
//!    (`route_naive`, one `InterestSet::relevant` closure probe per
//!    subscriber), over scoped `SetTransform` updates into a branchy
//!    scene with mostly-narrow subscribers. Every timed update is also
//!    parity-checked: the two paths must return identical decisions.
//!    Headline `routing_speedup_10k` is the speedup at the largest
//!    population (10k full, 1k quick) and is asserted ≥50x (quick: ≥5x).
//! 2. Delivery: full simulated ticks through `publish_batch` on a
//!    16-segment machine-room network — camera-move batches fanned out
//!    to every subscriber via `multicast_deliver`, one wire transmission
//!    per receiving segment — reporting wall-clock tick time and the
//!    multicast/unicast wire-byte ratio, plus the same on the paper's
//!    testbed (~24 clients across 6 LAN hosts + 1 wireless PDA), whose
//!    `testbed_wire_ratio` is asserted ≤0.2 (§3.1.2's "network
//!    bandwidth-saving techniques such as multicasting").
//!
//! Set `COLLAB_QUICK=1` for a CI smoke run: smaller populations, fewer
//! rounds, same JSON shape, relaxed routing floor.

use rave_core::collaboration::{join_session, session_tick, Participant};
use rave_core::data_service::DataService;
use rave_core::world::RaveWorld;
use rave_core::{DataServiceId, RaveConfig, RenderServiceId};
use rave_math::Vec3;
use rave_net::{LinkSpec, Network};
use rave_scene::{CameraParams, InterestSet, NodeId, NodeKind, SceneUpdate, Transform};
use rave_sim::Simulation;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const BRANCHES: usize = 256;
const LEAVES_PER_BRANCH: usize = 4;

/// A data service with a branchy scene: `BRANCHES` top-level groups of
/// `LEAVES_PER_BRANCH` leaves each — enough structure that narrow
/// interests are genuinely narrow and the interval stab does real work.
fn routing_service() -> (DataService, Vec<NodeId>, Vec<NodeId>) {
    let mut ds = DataService::new(DataServiceId(1), "hub", "bench");
    let root = ds.scene.root();
    let mut branches = Vec::with_capacity(BRANCHES);
    let mut leaves = Vec::new();
    for b in 0..BRANCHES {
        let branch = ds.scene.add_node(root, format!("b{b}"), NodeKind::Group).unwrap();
        branches.push(branch);
        for l in 0..LEAVES_PER_BRANCH {
            leaves.push(ds.scene.add_node(branch, format!("b{b}l{l}"), NodeKind::Group).unwrap());
        }
    }
    (ds, branches, leaves)
}

/// Subscribe `clients` services: 1 in 100 wants everything (a full
/// replica), the rest one or two branch subtrees — the 10k-thin-client
/// population shape.
fn subscribe_population(ds: &mut DataService, branches: &[NodeId], clients: usize, rng: &mut Lcg) {
    for i in 0..clients {
        let rs = RenderServiceId(i as u64 + 1);
        let interest = if i % 100 == 0 {
            InterestSet::everything()
        } else if i % 3 == 0 {
            InterestSet::subtrees([
                branches[rng.pick(branches.len())],
                branches[rng.pick(branches.len())],
            ])
        } else {
            InterestSet::subtrees([branches[rng.pick(branches.len())]])
        };
        ds.subscribe_live(rs, interest);
    }
}

struct RoutingTiming {
    clients: usize,
    probes: usize,
    indexed_us: f64,
    naive_us: f64,
    parity_checked: usize,
}

fn time_routing(clients: usize, rounds: usize, rng: &mut Lcg) -> RoutingTiming {
    let (mut ds, branches, leaves) = routing_service();
    subscribe_population(&mut ds, &branches, clients, rng);

    // A pool of scoped updates: transforms on random leaves, each
    // relevant to the everything-subscribers plus one branch's audience.
    let probes: Vec<Arc<rave_scene::StampedUpdate>> = (0..64)
        .map(|_| {
            let leaf = leaves[rng.pick(leaves.len())];
            let update = SceneUpdate::SetTransform {
                id: leaf,
                transform: Transform::from_translation(Vec3::X),
            };
            Arc::new(ds.stamp("bench", update))
        })
        .collect();

    // Parity gate before any timing is trusted: identical decisions,
    // update by update (both sides in ascending subscriber-id order).
    let mut parity_checked = 0usize;
    for p in &probes {
        assert_eq!(ds.route(p), ds.route_naive(p), "index diverged from naive scan");
        parity_checked += 1;
    }

    // Warm, then best-of-rounds over the whole pool per path.
    let mut indexed_best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for p in &probes {
            std::hint::black_box(ds.route(p));
        }
        indexed_best = indexed_best.min(t0.elapsed().as_secs_f64());
    }
    let mut naive_best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for p in &probes {
            std::hint::black_box(ds.route_naive(p));
        }
        naive_best = naive_best.min(t0.elapsed().as_secs_f64());
    }
    RoutingTiming {
        clients,
        probes: probes.len(),
        indexed_us: indexed_best * 1e6 / probes.len() as f64,
        naive_us: naive_best * 1e6 / probes.len() as f64,
        parity_checked,
    }
}

/// A 2004-vintage machine room scaled up: `segments` switched 100 Mbit
/// LANs, `hosts_per_segment` hosts each, full inter-segment bridging.
fn machine_room(segments: usize, hosts_per_segment: usize) -> Network {
    let mut net = Network::new();
    net.set_default_inter_link(LinkSpec::ethernet_100mb());
    for s in 0..segments {
        let seg = format!("seg{s}");
        net.add_segment(&seg, LinkSpec::ethernet_100mb());
        for h in 0..hosts_per_segment {
            net.add_host(&format!("host{s}x{h}"), &seg);
        }
    }
    net
}

struct TickTiming {
    clients: usize,
    moves_per_tick: usize,
    ticks: usize,
    tick_ms: f64,
    wire_bytes: u64,
    unicast_wire_bytes: u64,
    wire_ratio: f64,
}

/// Simulate `ticks` interactive ticks: `moves` participants re-pose
/// their cameras per tick, batched through `session_tick`, fanned out to
/// `clients` full-replica subscribers spread round-robin over the
/// machine-room hosts. Wall-clock per tick includes routing, multicast
/// arrival computation, event scheduling and replica application.
fn time_ticks(clients: usize, moves: usize, ticks: usize) -> TickTiming {
    let segments = 16;
    let hosts_per_segment = 4;
    let mut net = machine_room(segments, hosts_per_segment);
    net.add_host("hub", "seg0");
    let mut config = RaveConfig::default();
    // One presence update would otherwise allocate `clients` trace rows.
    config.update_delivery_trace = false;
    let mut sim = Simulation::new(RaveWorld::new(net, config, 4242));
    let ds = sim.world.spawn_data_service("hub", "bench");

    let participants: Vec<Participant> = (0..moves)
        .map(|i| {
            join_session(&mut sim, ds, &format!("u{i}"), Vec3::X, CameraParams::default()).unwrap()
        })
        .collect();
    sim.run();

    let replica = sim.world.data(ds).scene.clone();
    for i in 0..clients {
        let host = format!("host{}x{}", (i / hosts_per_segment) % segments, i % hosts_per_segment);
        let rs = sim.world.spawn_render_service(&host);
        sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        sim.world.render_mut(rs).scene = replica.clone();
    }
    let fanout_base = sim.world.data(ds).fanout;

    let labels: Vec<String> = (0..moves).map(|i| format!("u{i}")).collect();
    let t0 = Instant::now();
    for tick in 0..ticks {
        let moves_batch: Vec<(Participant, &str, CameraParams)> = participants
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut cam = CameraParams::default();
                cam.position = Vec3::new(tick as f32, i as f32, 0.0);
                (p, labels[i].as_str(), cam)
            })
            .collect();
        session_tick(&mut sim, ds, &moves_batch).unwrap();
        sim.run();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let fanout = sim.world.data(ds).fanout;
    let wire = fanout.wire_bytes - fanout_base.wire_bytes;
    let unicast = fanout.unicast_wire_bytes - fanout_base.unicast_wire_bytes;
    TickTiming {
        clients,
        moves_per_tick: moves,
        ticks,
        tick_ms: elapsed * 1e3 / ticks as f64,
        wire_bytes: wire,
        unicast_wire_bytes: unicast,
        wire_ratio: if unicast == 0 { 1.0 } else { wire as f64 / unicast as f64 },
    }
}

/// The paper's own testbed: ~24 clients on 6 LAN machines + the wireless
/// PDA, camera traffic multicast from the data service on adrenochrome.
fn testbed_wire_ratio() -> f64 {
    let mut config = RaveConfig::default();
    config.update_delivery_trace = false;
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 7));
    let ds = sim.world.spawn_data_service("adrenochrome", "bench");
    let hosts = ["onyx", "v880z", "laptop", "desktop", "tower", "adrenochrome", "zaurus"];
    let participants: Vec<Participant> = (0..4)
        .map(|i| {
            join_session(&mut sim, ds, &format!("u{i}"), Vec3::X, CameraParams::default()).unwrap()
        })
        .collect();
    sim.run();
    let replica = sim.world.data(ds).scene.clone();
    for i in 0..24 {
        let rs = sim.world.spawn_render_service(hosts[i % hosts.len()]);
        sim.world.data_mut(ds).subscribe_live(rs, InterestSet::everything());
        sim.world.render_mut(rs).scene = replica.clone();
    }
    let base = sim.world.data(ds).fanout;
    let labels: Vec<String> = (0..participants.len()).map(|i| format!("u{i}")).collect();
    for tick in 0..8 {
        let moves: Vec<(Participant, &str, CameraParams)> = participants
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut cam = CameraParams::default();
                cam.position = Vec3::new(tick as f32, i as f32, 1.0);
                (p, labels[i].as_str(), cam)
            })
            .collect();
        session_tick(&mut sim, ds, &moves).unwrap();
        sim.run();
    }
    let fanout = sim.world.data(ds).fanout;
    let wire = fanout.wire_bytes - base.wire_bytes;
    let unicast = fanout.unicast_wire_bytes - base.unicast_wire_bytes;
    wire as f64 / unicast as f64
}

fn main() {
    let quick = std::env::var("COLLAB_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 3 } else { 9 };
    let populations: &[usize] = if quick { &[100, 1_000] } else { &[100, 1_000, 10_000] };
    let moves_per_tick = if quick { 8 } else { 32 };
    let ticks = if quick { 2 } else { 4 };

    let mut rng = Lcg(0xc0_11ab);
    let routing: Vec<RoutingTiming> =
        populations.iter().map(|&c| time_routing(c, rounds, &mut rng)).collect();
    let delivery: Vec<TickTiming> =
        populations.iter().map(|&c| time_ticks(c, moves_per_tick, ticks)).collect();
    let testbed_ratio = testbed_wire_ratio();

    let headline = routing.last().expect("at least one population");
    let routing_speedup_10k = headline.naive_us / headline.indexed_us.max(1e-9);
    let parity_checked: usize = routing.iter().map(|r| r.parity_checked).sum();

    let configs: Vec<String> = routing
        .iter()
        .zip(&delivery)
        .map(|(r, d)| {
            format!(
                "{{ \"clients\": {}, \"probes\": {}, \"route_indexed_us\": {:.3}, \
                 \"route_naive_us\": {:.3}, \"routing_speedup\": {:.1}, \
                 \"moves_per_tick\": {}, \"ticks\": {}, \"tick_ms\": {:.2}, \
                 \"wire_bytes\": {}, \"unicast_wire_bytes\": {}, \"wire_ratio\": {:.4} }}",
                r.clients,
                r.probes,
                r.indexed_us,
                r.naive_us,
                r.naive_us / r.indexed_us.max(1e-9),
                d.moves_per_tick,
                d.ticks,
                d.tick_ms,
                d.wire_bytes,
                d.unicast_wire_bytes,
                d.wire_ratio,
            )
        })
        .collect();

    let ticks_per_sec_headline =
        1e3 / delivery.last().expect("at least one population").tick_ms.max(1e-9);
    let out = format!(
        "{{\n  \"bench\": \"collab\",\n  \"quick\": {quick},\n  \"configs\": [\n    {}\n  ],\n  \
         \"routing_speedup_10k\": {routing_speedup_10k:.1},\n  \
         \"parity_checked\": {parity_checked},\n  \
         \"ticks_per_sec_largest\": {ticks_per_sec_headline:.2},\n  \
         \"testbed_wire_ratio\": {testbed_ratio:.4}\n}}\n",
        configs.join(",\n    "),
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_collab.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    // Quick mode tops out at 1k subscribers on noisy CI runners; the
    // full run holds the 10k floor from the issue.
    let floor = if quick { 5.0 } else { 50.0 };
    assert!(
        routing_speedup_10k >= floor,
        "interest index must be ≥{floor}x over the naive per-subscriber scan at the \
         largest population (got {routing_speedup_10k:.1}x)"
    );
    assert!(
        testbed_ratio <= 0.2,
        "multicast fan-out on the paper testbed must put ≤0.2x of unicast bytes on \
         the wire (got {testbed_ratio:.4}x)"
    );
    for d in &delivery {
        assert!(
            d.wire_ratio < 1.0,
            "multicast must always beat unicast on a segmented network \
             (got {:.4}x at {} clients)",
            d.wire_ratio,
            d.clients
        );
    }
}
