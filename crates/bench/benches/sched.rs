//! Scheduler refactor guardrail: plan latency of the unified placement
//! engine (`sched::placement` behind `plan_distribution`) versus a
//! verbatim copy of the pre-refactor first-fit-decreasing planner, over
//! 100/1k/10k content nodes × 4/16/64 services. Emits `BENCH_sched.json`
//! at the repo root; the assert at the bottom holds the unified engine to
//! within 10% of the old planner in aggregate. Set `SCHED_QUICK=1` for a
//! tiny CI smoke run (fewer timing rounds, same JSON shape, same assert).

use rave_core::capacity::CapacityReport;
use rave_core::distribution::{plan_distribution, split_node, DistributionPlan, PlanError};
use rave_core::RenderServiceId;
use rave_math::Vec3;
use rave_scene::{MeshData, NodeCost, NodeId, NodeKind, SceneTree};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const NODE_COUNTS: [usize; 3] = [100, 1_000, 10_000];
const SERVICE_COUNTS: [u64; 3] = [4, 16, 64];

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn tiny_mesh(tris: u32) -> MeshData {
    MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }
}

/// `n` mesh nodes with varied (seeded) sizes, so the decreasing sort and
/// first-fit scan do non-degenerate work.
fn scene_with(n: usize) -> SceneTree {
    let mut rng = Lcg(0x5eed_bec4 ^ n as u64);
    let mut scene = SceneTree::new();
    let root = scene.root();
    for i in 0..n {
        let tris = rng.in_range(10, 400) as u32;
        scene.add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(tiny_mesh(tris)))).unwrap();
    }
    scene
}

fn report(id: u64, polys: u64) -> CapacityReport {
    CapacityReport {
        service: RenderServiceId(id),
        host: format!("h{id}"),
        polys_per_sec: 1e7,
        poly_headroom: polys,
        texture_headroom: 1 << 40,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    }
}

/// Verbatim copy of the pre-refactor `plan_distribution` (the inline FFD
/// loop `sched::placement::place_with_splitting` replaced).
fn old_plan(
    scene: &mut SceneTree,
    candidates: &[CapacityReport],
) -> Result<DistributionPlan, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::NoCandidates);
    }
    let demand = scene.total_cost();
    let total_polys = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.poly_headroom));
    let total_tex = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.texture_headroom));
    if demand.polygons > total_polys || demand.texture_bytes > total_tex {
        return Err(PlanError::InsufficientResources {
            required_polygons: demand.polygons,
            total_poly_headroom: total_polys,
            required_texture: demand.texture_bytes,
            total_texture_headroom: total_tex,
        });
    }
    let mut remaining: Vec<(RenderServiceId, u64, u64)> =
        candidates.iter().map(|c| (c.service, c.poly_headroom, c.texture_headroom)).collect();
    remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut queue: Vec<(NodeId, NodeCost)> = scene
        .find_all(|n| {
            !n.kind.cost().is_zero() && !matches!(n.kind, NodeKind::Avatar(_) | NodeKind::Camera(_))
        })
        .into_iter()
        .map(|id| (id, scene.node(id).expect("found").kind.cost()))
        .collect();
    queue.sort_by(|a, b| b.1.render_weight().cmp(&a.1.render_weight()).then(a.0.cmp(&b.0)));
    let mut assignments: std::collections::BTreeMap<RenderServiceId, (Vec<NodeId>, NodeCost)> =
        std::collections::BTreeMap::new();
    let mut splits = 0u32;
    while !queue.is_empty() {
        let (id, cost) = queue.remove(0);
        let slot = remaining
            .iter_mut()
            .find(|(_, polys, tex)| cost.polygons <= *polys && cost.texture_bytes <= *tex);
        match slot {
            Some((svc, polys, tex)) => {
                *polys -= cost.polygons;
                *tex -= cost.texture_bytes;
                let entry = assignments.entry(*svc).or_default();
                entry.0.push(id);
                entry.1 += cost;
                remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            None => match split_node(scene, id) {
                Some((a, b)) => {
                    splits += 1;
                    let ca = scene.node(a).expect("split child").kind.cost();
                    let cb = scene.node(b).expect("split child").kind.cost();
                    if ca.render_weight() >= cb.render_weight() {
                        queue.insert(0, (a, ca));
                        queue.insert(1, (b, cb));
                    } else {
                        queue.insert(0, (b, cb));
                        queue.insert(1, (a, ca));
                    }
                }
                None => {
                    return Err(PlanError::IndivisibleNode {
                        node: id,
                        polygons: cost.polygons,
                        largest_headroom: remaining.iter().map(|(_, p, _)| *p).max().unwrap_or(0),
                    });
                }
            },
        }
    }
    Ok(DistributionPlan {
        assignments: assignments
            .into_iter()
            .map(|(service, (nodes, cost))| rave_core::distribution::Assignment {
                service,
                nodes,
                cost,
            })
            .collect(),
        splits_performed: splits,
    })
}

fn main() {
    let quick = std::env::var("SCHED_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 3 } else { 9 };

    let mut configs = Vec::new();
    let mut old_total = 0.0f64;
    let mut new_total = 0.0f64;
    for &nodes in &NODE_COUNTS {
        let mut scene = scene_with(nodes);
        let total_polys = scene.total_cost().polygons;
        for &services in &SERVICE_COUNTS {
            // Generous headroom: plans complete without splits, so the
            // timing isolates the packing loop itself and the scene is
            // never mutated between rounds.
            let per_service = (total_polys / services) * 2 + 1_000;
            let reports: Vec<CapacityReport> =
                (1..=services).map(|i| report(i, per_service)).collect();

            // The engines must agree before any timing is trusted.
            let baseline = old_plan(&mut scene, &reports).unwrap();
            assert_eq!(plan_distribution(&mut scene, &reports).unwrap(), baseline);

            // Interleaved best-of-rounds so load noise hits both equally.
            let mut old_best = f64::INFINITY;
            let mut new_best = f64::INFINITY;
            for _ in 0..rounds {
                let t0 = Instant::now();
                std::hint::black_box(old_plan(&mut scene, &reports).unwrap());
                old_best = old_best.min(t0.elapsed().as_secs_f64());

                let t0 = Instant::now();
                std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap());
                new_best = new_best.min(t0.elapsed().as_secs_f64());
            }
            old_total += old_best;
            new_total += new_best;
            configs.push(format!(
                "{{ \"nodes\": {nodes}, \"services\": {services}, \"old_ms\": {:.3}, \
                 \"unified_ms\": {:.3}, \"ratio\": {:.3} }}",
                old_best * 1e3,
                new_best * 1e3,
                new_best / old_best,
            ));
        }
    }
    let aggregate_ratio = new_total / old_total;

    let out = format!(
        "{{\n  \"bench\": \"sched\",\n  \"quick\": {quick},\n  \"configs\": [\n    {}\n  ],\n  \
         \"old_total_ms\": {:.3},\n  \"unified_total_ms\": {:.3},\n  \
         \"aggregate_ratio\": {aggregate_ratio:.3}\n}}\n",
        configs.join(",\n    "),
        old_total * 1e3,
        new_total * 1e3,
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    assert!(
        aggregate_ratio <= 1.10,
        "unified planner must stay within 10% of the pre-refactor planner \
         (got {aggregate_ratio:.3}x aggregate)"
    );
}
