//! Scheduler scaling guardrail: plan latency of the unified placement
//! engine (`sched::placement` behind `plan_distribution`) versus a
//! verbatim copy of the pre-refactor first-fit-decreasing planner, over
//! 100/1k/10k/100k content nodes × 4/16/64 services. Emits
//! `BENCH_sched.json` at the repo root with per-config `speedup` factors
//! plus the headline scaling metrics; the asserts at the bottom hold the
//! unified engine to ≥10x over the old planner at 10k×4, sub-second
//! plans at 100k nodes, and near-linear 1k→10k scaling (the quadratic
//! regression guard). A second section storms the *incremental*
//! replanner (`plan_incremental` over a persistent `PlanState`) with
//! localized per-event edits against cold full plans per event, emitting
//! `incremental_speedup` (asserted ≥10x at 100k nodes in full mode) and
//! `plans_per_sec_100k`. Cold configs are timed best-of-N over
//! consecutive rounds, storms as the median per-event latency (both
//! steady-state, cache-warm, robust to one-off scheduler noise). Set
//! `SCHED_QUICK=1` for a tiny CI smoke run (fewer timing rounds, same
//! JSON shape, relaxed floors).

use rave_core::capacity::{CapacityReport, Headroom};
use rave_core::distribution::{
    plan_distribution, plan_incremental, split_node, DistributionPlan, PlanError,
};
use rave_core::sched::PlanState;
use rave_core::RenderServiceId;
use rave_math::Vec3;
use rave_scene::{MeshData, NodeCost, NodeId, NodeKind, SceneTree};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const NODE_COUNTS: [usize; 4] = [100, 1_000, 10_000, 100_000];
const SERVICE_COUNTS: [u64; 3] = [4, 16, 64];

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn tiny_mesh(tris: u32) -> MeshData {
    MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; tris as usize],
        texture_bytes: 0,
    }
}

/// `n` mesh nodes with varied (seeded) sizes, so the decreasing sort and
/// first-fit scan do non-degenerate work.
fn scene_with(n: usize) -> SceneTree {
    let mut rng = Lcg(0x5eed_bec4 ^ n as u64);
    let mut scene = SceneTree::new();
    let root = scene.root();
    for i in 0..n {
        let tris = rng.in_range(10, 400) as u32;
        scene.add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(tiny_mesh(tris)))).unwrap();
    }
    scene
}

fn report(id: u64, polys: u64) -> CapacityReport {
    CapacityReport {
        service: RenderServiceId(id),
        host: format!("h{id}"),
        polys_per_sec: 1e7,
        poly_headroom: polys,
        texture_headroom: 1 << 40,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    }
}

/// Verbatim copy of the pre-refactor `plan_distribution` (the inline FFD
/// loop `sched::placement::place_with_splitting` replaced).
fn old_plan(
    scene: &mut SceneTree,
    candidates: &[CapacityReport],
) -> Result<DistributionPlan, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::NoCandidates);
    }
    let demand = scene.total_cost();
    let total_polys = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.poly_headroom));
    let total_tex = candidates.iter().fold(0u64, |a, c| a.saturating_add(c.texture_headroom));
    if demand.polygons > total_polys || demand.texture_bytes > total_tex {
        return Err(PlanError::InsufficientResources {
            required_polygons: demand.polygons,
            total_poly_headroom: total_polys,
            required_texture: demand.texture_bytes,
            total_texture_headroom: total_tex,
        });
    }
    let mut remaining: Vec<(RenderServiceId, u64, u64)> =
        candidates.iter().map(|c| (c.service, c.poly_headroom, c.texture_headroom)).collect();
    remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut queue: Vec<(NodeId, NodeCost)> = scene
        .find_all(|n| {
            !n.own_cost().is_zero()
                && !matches!(n.kind(), NodeKind::Avatar(_) | NodeKind::Camera(_))
        })
        .into_iter()
        .map(|id| (id, scene.node(id).expect("found").own_cost()))
        .collect();
    queue.sort_by(|a, b| b.1.render_weight().cmp(&a.1.render_weight()).then(a.0.cmp(&b.0)));
    let mut assignments: std::collections::BTreeMap<RenderServiceId, (Vec<NodeId>, NodeCost)> =
        std::collections::BTreeMap::new();
    let mut splits = 0u32;
    while !queue.is_empty() {
        let (id, cost) = queue.remove(0);
        let slot = remaining
            .iter_mut()
            .find(|(_, polys, tex)| cost.polygons <= *polys && cost.texture_bytes <= *tex);
        match slot {
            Some((svc, polys, tex)) => {
                *polys -= cost.polygons;
                *tex -= cost.texture_bytes;
                let entry = assignments.entry(*svc).or_default();
                entry.0.push(id);
                entry.1 += cost;
                remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            None => match split_node(scene, id) {
                Some((a, b)) => {
                    splits += 1;
                    let ca = scene.node(a).expect("split child").own_cost();
                    let cb = scene.node(b).expect("split child").own_cost();
                    if ca.render_weight() >= cb.render_weight() {
                        queue.insert(0, (a, ca));
                        queue.insert(1, (b, cb));
                    } else {
                        queue.insert(0, (b, cb));
                        queue.insert(1, (a, ca));
                    }
                }
                None => {
                    return Err(PlanError::IndivisibleNode {
                        node: id,
                        polygons: cost.polygons,
                        largest_headroom: remaining.iter().map(|(_, p, _)| *p).max().unwrap_or(0),
                    });
                }
            },
        }
    }
    Ok(DistributionPlan {
        assignments: assignments
            .into_iter()
            .map(|(service, (nodes, cost))| rave_core::distribution::Assignment {
                service,
                nodes,
                cost,
            })
            .collect(),
        splits_performed: splits,
    })
}

struct ConfigTiming {
    nodes: usize,
    services: u64,
    old: f64,
    new: f64,
}

struct StormTiming {
    nodes: usize,
    services: u64,
    events: usize,
    /// Median seconds of one full `plan_distribution` call per event.
    cold: f64,
    /// Median seconds of one `plan_incremental` replay per event.
    incr: f64,
}

/// Median of per-event timings: a storm is a stream of equivalent
/// events, so the representative per-event cost is the middle one —
/// robust against a stray scheduler preemption or page-fault spike
/// landing on a single event (a mean would let one 50 ms hiccup bury a
/// 0.2 ms steady state).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One localized storm event: add a small mesh, or remove one a previous
/// event added. The churned nodes are *light* — lighter than nearly all
/// of the standing scene — so they live near the tail of the
/// weight-descending queue: the localized single-object drift shape,
/// where the replay touches only a short suffix. (Heavy churn degrades
/// gracefully to replaying from the edit's queue position.)
fn storm_edit(scene: &mut SceneTree, extras: &mut Vec<NodeId>, rng: &mut Lcg, step: usize) {
    let root = scene.root();
    if step % 2 == 1 && !extras.is_empty() {
        let victim = extras.swap_remove(rng.next() as usize % extras.len());
        scene.remove(victim).unwrap();
    } else {
        let tris = rng.in_range(2, 40) as u32;
        let name = format!("storm{}", rng.next());
        let id = scene.add_node(root, name, NodeKind::Mesh(Arc::new(tiny_mesh(tris)))).unwrap();
        extras.push(id);
    }
}

fn main() {
    let quick = std::env::var("SCHED_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 3 } else { 9 };

    let mut results: Vec<ConfigTiming> = Vec::new();
    for &nodes in &NODE_COUNTS {
        let mut scene = scene_with(nodes);
        let total_polys = scene.total_cost().polygons;
        for &services in &SERVICE_COUNTS {
            // Generous headroom: plans complete without splits, so the
            // timing isolates the packing loop itself and the scene is
            // never mutated between rounds.
            let per_service = (total_polys / services) * 2 + 1_000;
            let reports: Vec<CapacityReport> =
                (1..=services).map(|i| report(i, per_service)).collect();

            // The engines must agree before any timing is trusted. The
            // old planner is quadratic (~6s per 100k plan), so at 100k
            // the comparison runs for one service count; the embedded
            // reference in tests/sched_parity.rs pins the rest.
            if nodes < 100_000 || services == 4 {
                let baseline = old_plan(&mut scene, &reports).unwrap();
                assert_eq!(plan_distribution(&mut scene, &reports).unwrap(), baseline);
            }

            // Best-of-N consecutive rounds per engine: planning is a
            // steady-state service loop, so each engine is measured
            // cache-warm rather than right after the other engine has
            // swept the scene through memory. The quadratic old planner
            // gets a single round at 100k (~10s per plan).
            let old_rounds = if nodes >= 100_000 { 1 } else { rounds };
            let mut new_best = f64::INFINITY;
            for _ in 0..rounds {
                let t0 = Instant::now();
                std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap());
                new_best = new_best.min(t0.elapsed().as_secs_f64());
            }
            let mut old_best = f64::INFINITY;
            for _ in 0..old_rounds {
                let t0 = Instant::now();
                std::hint::black_box(old_plan(&mut scene, &reports).unwrap());
                old_best = old_best.min(t0.elapsed().as_secs_f64());
            }
            results.push(ConfigTiming { nodes, services, old: old_best, new: new_best });
        }
    }

    // ---- Event-storm replanning: incremental vs full-per-event ----
    // The steady state is not "plan once": overload, drift and
    // membership events arrive continuously. A non-incremental engine
    // cold-plans the whole scene on every event; the incremental engine
    // folds the dirt into its persistent state and replays only the
    // affected queue suffix. Same edits, same scenes, same basis.
    let storm_events = if quick { 10 } else { 40 };
    let mut storms: Vec<StormTiming> = Vec::new();
    for &nodes in &[1_000usize, 10_000, 100_000] {
        let services = 16u64;
        let mut scene = scene_with(nodes);
        let total_polys = scene.total_cost().polygons;
        let per_service = (total_polys / services) * 2 + 1_000_000;
        let reports: Vec<CapacityReport> = (1..=services).map(|i| report(i, per_service)).collect();
        let caps: Vec<(RenderServiceId, Headroom)> = (1..=services)
            .map(|i| {
                (RenderServiceId(i), Headroom { polygons: per_service, texture_bytes: 1 << 40 })
            })
            .collect();
        let mut rng = Lcg(0x5eed_5707 ^ nodes as u64);
        let mut extras: Vec<NodeId> = Vec::new();

        let mut cold_samples = Vec::with_capacity(storm_events);
        for step in 0..storm_events {
            storm_edit(&mut scene, &mut extras, &mut rng, step);
            let t0 = Instant::now();
            std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap());
            cold_samples.push(t0.elapsed().as_secs_f64());
        }

        // One untimed priming build, then per-event incremental replays.
        let mut state = PlanState::new();
        plan_incremental(&mut scene, &caps, &mut state, 0.0).unwrap().expect("priming build");
        let mut incr_samples = Vec::with_capacity(storm_events);
        for step in 0..storm_events {
            storm_edit(&mut scene, &mut extras, &mut rng, step);
            let t0 = Instant::now();
            let diff = plan_incremental(&mut scene, &caps, &mut state, 0.0)
                .unwrap()
                .expect("zero staleness replans on any dirt");
            incr_samples.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(diff);
        }

        // The storm must land exactly on the cold plan of the final
        // scene before its timings are trusted.
        let cold_final = plan_distribution(&mut scene, &reports).unwrap();
        let flat: Vec<_> =
            cold_final.assignments.iter().map(|a| (a.service, a.nodes.clone(), a.cost)).collect();
        assert_eq!(state.assignments(), flat, "incremental storm diverged at {nodes} nodes");

        storms.push(StormTiming {
            nodes,
            services,
            events: storm_events,
            cold: median(&mut cold_samples),
            incr: median(&mut incr_samples),
        });
    }

    let old_total: f64 = results.iter().map(|c| c.old).sum();
    let new_total: f64 = results.iter().map(|c| c.new).sum();
    let aggregate_ratio = new_total / old_total;
    let aggregate_speedup = old_total / new_total;
    let at = |n: usize, s: u64| {
        results.iter().find(|c| c.nodes == n && c.services == s).expect("config present")
    };
    let speedup_10k_x4 = at(10_000, 4).old / at(10_000, 4).new;
    let scaling_10k_over_1k = at(10_000, 4).new / at(1_000, 4).new;
    let storm_100k = storms.iter().find(|s| s.nodes == 100_000).expect("storm config present");
    let incremental_speedup = storm_100k.cold / storm_100k.incr.max(1e-12);
    let plans_per_sec_100k = 1.0 / storm_100k.incr.max(1e-12);

    let configs: Vec<String> = results
        .iter()
        .map(|c| {
            format!(
                "{{ \"nodes\": {}, \"services\": {}, \"old_ms\": {:.3}, \
                 \"unified_ms\": {:.3}, \"ratio\": {:.3}, \"speedup\": {:.1} }}",
                c.nodes,
                c.services,
                c.old * 1e3,
                c.new * 1e3,
                c.new / c.old,
                c.old / c.new,
            )
        })
        .collect();

    let storm_configs: Vec<String> = storms
        .iter()
        .map(|s| {
            format!(
                "{{ \"nodes\": {}, \"services\": {}, \"events\": {}, \
                 \"cold_ms_per_plan\": {:.3}, \"incremental_ms_per_plan\": {:.3}, \
                 \"speedup\": {:.1}, \"plans_per_sec\": {:.0} }}",
                s.nodes,
                s.services,
                s.events,
                s.cold * 1e3,
                s.incr * 1e3,
                s.cold / s.incr.max(1e-12),
                1.0 / s.incr.max(1e-12),
            )
        })
        .collect();

    let out = format!(
        "{{\n  \"bench\": \"sched\",\n  \"quick\": {quick},\n  \"configs\": [\n    {}\n  ],\n  \
         \"storm_configs\": [\n    {}\n  ],\n  \
         \"old_total_ms\": {:.3},\n  \"unified_total_ms\": {:.3},\n  \
         \"aggregate_ratio\": {aggregate_ratio:.3},\n  \
         \"aggregate_speedup\": {aggregate_speedup:.1},\n  \
         \"speedup_10k_x4\": {speedup_10k_x4:.1},\n  \
         \"scaling_10k_over_1k\": {scaling_10k_over_1k:.2},\n  \
         \"incremental_speedup\": {incremental_speedup:.1},\n  \
         \"plans_per_sec_100k\": {plans_per_sec_100k:.0}\n}}\n",
        configs.join(",\n    "),
        storm_configs.join(",\n    "),
        old_total * 1e3,
        new_total * 1e3,
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    assert!(
        aggregate_ratio <= 1.10,
        "unified planner must stay within 10% of the pre-refactor planner \
         (got {aggregate_ratio:.3}x aggregate)"
    );
    assert!(
        speedup_10k_x4 >= 10.0,
        "heap/ledger refactor must be ≥10x at 10k nodes × 4 services \
         (got {speedup_10k_x4:.1}x)"
    );
    for c in results.iter().filter(|c| c.nodes >= 100_000) {
        assert!(
            c.new < 1.0,
            "100k-node plans must stay sub-second (got {:.1} ms at {} services)",
            c.new * 1e3,
            c.services
        );
    }
    assert!(
        scaling_10k_over_1k <= 25.0,
        "1k→10k plan time must scale near-linearly, ≤25x \
         (got {scaling_10k_over_1k:.1}x — quadratic regression?)"
    );
    // Quick mode runs too few events on too-noisy CI runners to hold the
    // full 10x floor; it still must never be a pessimization.
    let incr_floor = if quick { 1.0 } else { 10.0 };
    assert!(
        incremental_speedup >= incr_floor,
        "incremental replanning must beat full-per-event replans at 100k nodes \
         (got {incremental_speedup:.1}x, floor {incr_floor}x)"
    );
}
