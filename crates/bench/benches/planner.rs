//! Criterion benches for the distribution planner and migration
//! selection: the control-plane hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rave_core::capacity::{CapacityReport, Headroom};
use rave_core::distribution::{plan_distribution, plan_incremental};
use rave_core::migration::select_nodes_to_shed;
use rave_core::sched::PlanState;
use rave_core::RenderServiceId;
use rave_math::Vec3;
use rave_scene::{MeshData, NodeCost, NodeKind, SceneTree};
use std::sync::Arc;

fn strip_mesh(tris: u32) -> MeshData {
    let mut positions = Vec::with_capacity((tris as usize + 1) * 2);
    let mut triangles = Vec::with_capacity(tris as usize);
    for i in 0..=tris {
        positions.push(Vec3::new(i as f32, 0.0, 0.0));
        positions.push(Vec3::new(i as f32, 1.0, 0.0));
    }
    for i in 0..tris {
        let b = i * 2;
        triangles.push([b, b + 2, b + 3]);
    }
    MeshData::new(positions, triangles)
}

fn scene_with(meshes: usize, tris_each: u32) -> SceneTree {
    let mut scene = SceneTree::new();
    let root = scene.root();
    for i in 0..meshes {
        scene
            .add_node(root, format!("m{i}"), NodeKind::Mesh(Arc::new(strip_mesh(tris_each))))
            .unwrap();
    }
    scene
}

fn report(id: u64, polys: u64) -> CapacityReport {
    CapacityReport {
        service: RenderServiceId(id),
        host: format!("h{id}"),
        polys_per_sec: 1e7,
        poly_headroom: polys,
        texture_headroom: 1 << 40,
        volume_hw: false,
        assigned: NodeCost::ZERO,
        rolling_fps: None,
    }
}

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_distribution");
    for (meshes, services) in [(10usize, 3u64), (50, 8), (200, 16)] {
        let reports: Vec<_> = (1..=services).map(|i| report(i, 60_000)).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{meshes}nodes_{services}svcs")),
            &meshes,
            |b, &meshes| {
                b.iter_batched(
                    || scene_with(meshes, 1_000),
                    |mut scene| {
                        std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

fn bench_planner_with_splits(c: &mut Criterion) {
    // One oversized mesh forces recursive splitting.
    let reports: Vec<_> = (1..=6).map(|i| report(i, 10_000)).collect();
    c.bench_function("plan_distribution_splitting_50k_node", |b| {
        b.iter_batched(
            || scene_with(1, 50_000),
            |mut scene| std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap()),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_replan_per_event(c: &mut Criterion) {
    // Steady-state event handling over a 2k-node scene: each event adds
    // one small mesh and removes it again next iteration. The full
    // planner repacks the whole scene per event; the incremental engine
    // folds the dirt into its persistent `PlanState` and replays only
    // the affected queue suffix.
    let services = 8u64;
    let reports: Vec<_> = (1..=services).map(|i| report(i, 50_000_000)).collect();
    let caps: Vec<(RenderServiceId, Headroom)> = (1..=services)
        .map(|i| (RenderServiceId(i), Headroom { polygons: 50_000_000, texture_bytes: 1 << 40 }))
        .collect();

    let mut g = c.benchmark_group("replan_per_event");
    g.bench_function("full_2k_nodes", |b| {
        let mut scene = scene_with(2_000, 1_000);
        let root = scene.root();
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let id = scene
                .add_node(root, format!("e{step}"), NodeKind::Mesh(Arc::new(strip_mesh(64))))
                .unwrap();
            let plan = std::hint::black_box(plan_distribution(&mut scene, &reports).unwrap());
            scene.remove(id).unwrap();
            plan
        });
    });
    g.bench_function("incremental_2k_nodes", |b| {
        let mut scene = scene_with(2_000, 1_000);
        let root = scene.root();
        let mut state = PlanState::new();
        plan_incremental(&mut scene, &caps, &mut state, 0.0).unwrap().unwrap();
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let id = scene
                .add_node(root, format!("e{step}"), NodeKind::Mesh(Arc::new(strip_mesh(64))))
                .unwrap();
            let diff = std::hint::black_box(
                plan_incremental(&mut scene, &caps, &mut state, 0.0).unwrap().unwrap(),
            );
            scene.remove(id).unwrap();
            diff
        });
    });
    g.finish();
}

fn bench_shed_selection(c: &mut Criterion) {
    let scene = scene_with(100, 2_000);
    let root = scene.root();
    let roots: Vec<_> = scene.node(root).unwrap().children().collect();
    c.bench_function("select_nodes_to_shed_100", |b| {
        b.iter(|| std::hint::black_box(select_nodes_to_shed(&scene, &roots, 50_000)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_planner, bench_planner_with_splits, bench_replan_per_event, bench_shed_selection
}
criterion_main!(benches);
