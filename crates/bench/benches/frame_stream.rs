//! Frame-streaming head to head: the word-wide RLE/delta kernels versus
//! their scalar reference encoders on render-like 640x480 frames, the
//! strip-parallel container at 1/2/4 rayon threads, and the simulated
//! §5.1 PDA session (0.83M polygons, 200x200, wireless) with the raw
//! 24 bpp transfer replaced by the adaptive compressed stream. Emits
//! `BENCH_frame_stream.json` at the repo root. The headline claims —
//! checked with asserts at the bottom — are >= 2x kernel throughput for
//! both word-wide encoders and a higher simulated fps for the adaptive
//! stream. Set `FRAME_STREAM_QUICK=1` for a tiny CI smoke run (fewer
//! timing rounds and frames; same JSON shape, same asserts).

use criterion::Criterion;
use rave_compress::{delta, rle, stream, Codec};
use rave_core::config::CompressionMode;
use rave_core::frame_stream::synthesize_frame;
use rave_core::thin_client::{connect, stream_frames};
use rave_core::world::RaveWorld;
use rave_core::{ClientId, RaveConfig, RenderServiceId};
use rave_math::Vec3;
use rave_scene::{MeshData, NodeKind};
use rave_sim::Simulation;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const FRAME: (u32, u32) = (640, 480);
const THREADS: [usize; 3] = [1, 2, 4];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap()
}

/// The §5.1 hand scenario: one render service holding a `polys`-triangle
/// mesh, one PDA over the wireless link.
fn pda_session(polys: usize, mode: CompressionMode) -> (Simulation<RaveWorld>, ClientId) {
    let config = RaveConfig { frame_compression: mode, ..RaveConfig::default() };
    let mut sim = Simulation::new(RaveWorld::paper_testbed(config, 7));
    let rs: RenderServiceId = sim.world.spawn_render_service("laptop");
    let mesh = MeshData {
        positions: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
        normals: vec![],
        colors: vec![],
        triangles: vec![[0, 1, 2]; polys],
        texture_bytes: 0,
    };
    let scene = &mut sim.world.render_mut(rs).scene;
    let root = scene.root();
    scene.add_node(root, "model", NodeKind::Mesh(Arc::new(mesh))).unwrap();
    let cl = sim.world.spawn_thin_client("zaurus");
    connect(&mut sim, cl, rs);
    (sim, cl)
}

fn streamed_fps(polys: usize, frames: u64, mode: CompressionMode) -> (f64, f64) {
    let (mut sim, cl) = pda_session(polys, mode);
    stream_frames(&mut sim, cl, frames);
    sim.run();
    let stats = &sim.world.client(cl).stats;
    (stats.fps(), stats.compression_ratio())
}

/// One pipelined stream at a given depth: fps, wire utilization over the
/// run, stall count, and the per-frame wire occupancy (for the ceiling).
struct PipeRun {
    fps: f64,
    wire_util: f64,
    stalls: u64,
    wire_busy: f64,
    frames: u64,
}

fn pipelined_run(polys: usize, frames: u64, mode: CompressionMode, depth: usize) -> PipeRun {
    let (mut sim, cl) = pda_session(polys, mode);
    sim.world.config.pipeline_depth = depth;
    stream_frames(&mut sim, cl, frames);
    sim.run();
    let stats = &sim.world.client(cl).stats;
    let span = stats.last_display.expect("frames displayed");
    PipeRun {
        fps: stats.fps(),
        wire_util: stats.wire_utilization(span),
        stalls: stats.stalled_frames,
        wire_busy: stats.wire_busy,
        frames: stats.frames,
    }
}

fn main() {
    let quick = std::env::var("FRAME_STREAM_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 3 } else { 9 };
    let sim_frames: u64 = if quick { 4 } else { 12 };
    let (w, h) = FRAME;
    let frame_len = (w * h * 3) as usize;
    let mb = frame_len as f64 / 1e6;

    // Render-like content: flat background plus a moving gradient block,
    // the same generator the simulated stream uses. Consecutive frames so
    // the delta base is realistic.
    let prev = synthesize_frame(w, h, 0);
    let cur = synthesize_frame(w, h, 1);

    // The word-wide kernels must be bit-identical to the scalar reference
    // before any timing is trusted.
    assert_eq!(rle::encode(&cur), rle::encode_scalar(&cur));
    assert_eq!(delta::encode(&cur, Some(&prev)), delta::encode_scalar(&cur, Some(&prev)));

    // Criterion lines for the usual `cargo bench` readout (skipped in the
    // CI smoke run; the interleaved JSON pass below is the record).
    if !quick {
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("rle_encode_scalar_640x480", |b| {
            b.iter(|| std::hint::black_box(rle::encode_scalar(&cur)))
        });
        c.bench_function("rle_encode_wordwide_640x480", |b| {
            b.iter(|| std::hint::black_box(rle::encode(&cur)))
        });
        c.bench_function("delta_encode_wordwide_640x480", |b| {
            b.iter(|| std::hint::black_box(delta::encode(&cur, Some(&prev))))
        });
    }

    // Interleaved best-of-`rounds` timing so background-load noise hits
    // every configuration equally instead of whichever ran last.
    let mut rle_scalar = f64::INFINITY;
    let mut rle_word = f64::INFINITY;
    let mut delta_scalar = f64::INFINITY;
    let mut delta_word = f64::INFINITY;
    let pools: Vec<(usize, rayon::ThreadPool)> = THREADS.iter().map(|&t| (t, pool(t))).collect();
    let strips = stream::strip_count_for(frame_len, 16 * 1024);
    let mut strip_par: Vec<(usize, f64)> = THREADS.iter().map(|&t| (t, f64::INFINITY)).collect();
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(rle::encode_scalar(&cur));
        rle_scalar = rle_scalar.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(rle::encode(&cur));
        rle_word = rle_word.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(delta::encode_scalar(&cur, Some(&prev)));
        delta_scalar = delta_scalar.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(delta::encode(&cur, Some(&prev)));
        delta_word = delta_word.min(t0.elapsed().as_secs_f64());

        for (i, (_, p)) in pools.iter().enumerate() {
            let t0 = Instant::now();
            std::hint::black_box(p.install(|| {
                stream::encode_frame(Codec::DeltaRle, &cur, Some(&prev), Some(&prev), strips)
            }));
            strip_par[i].1 = strip_par[i].1.min(t0.elapsed().as_secs_f64());
        }
    }
    let speedup_rle = rle_scalar / rle_word;
    let speedup_delta = delta_scalar / delta_word;

    // Simulated PDA fps, raw 24 bpp versus the adaptive stream, on the
    // paper's 0.83M-polygon hand scene. Virtual-time, so deterministic.
    let (fps_raw, _) = streamed_fps(830_000, sim_frames, CompressionMode::Raw);
    let (fps_adaptive, ratio) = streamed_fps(830_000, sim_frames, CompressionMode::Adaptive);
    let fps_gain = fps_adaptive / fps_raw;

    // Pipelined-vs-serial grid on the same scenario: mode x depth, always
    // 12 frames (virtual-time, deterministic, identical in quick and full
    // runs so CI can hold `serial_fps` against the committed baseline).
    const PIPE_FRAMES: u64 = 12;
    const DEPTHS: [usize; 4] = [1, 2, 3, 4];
    let mut grid_json = Vec::new();
    let mut runs: Vec<(CompressionMode, usize, PipeRun)> = Vec::new();
    for mode in [CompressionMode::Raw, CompressionMode::Adaptive] {
        for depth in DEPTHS {
            let r = pipelined_run(830_000, PIPE_FRAMES, mode, depth);
            let tag = match mode {
                CompressionMode::Raw => "raw",
                CompressionMode::Adaptive => "adaptive",
            };
            grid_json.push(format!(
                "\"{tag}_d{depth}\": {{ \"fps\": {:.2}, \"wire_utilization\": {:.3}, \
                 \"stalled_frames\": {} }}",
                r.fps, r.wire_util, r.stalls
            ));
            runs.push((mode, depth, r));
        }
    }
    let find = |mode: CompressionMode, depth: usize| -> &PipeRun {
        &runs.iter().find(|(m, d, _)| *m == mode && *d == depth).expect("grid run").2
    };
    let raw_serial = find(CompressionMode::Raw, 1);
    let raw_piped = find(CompressionMode::Raw, 3);
    let ad_serial = find(CompressionMode::Adaptive, 1);
    let ad_piped = find(CompressionMode::Adaptive, 3);
    // The pure-wire-time ceiling: if the wire never idled, the stream
    // would run one frame per tx time.
    let wire_ceiling_fps = raw_piped.frames as f64 / raw_piped.wire_busy;
    let gap_closed = (raw_piped.fps - raw_serial.fps) / (wire_ceiling_fps - raw_serial.fps);
    let serial_fps = ad_serial.fps;
    let pipelined_fps = ad_piped.fps;
    let pipeline_speedup = pipelined_fps / serial_fps;
    let wire_utilization = raw_piped.wire_util;

    let strip_json: Vec<String> =
        strip_par.iter().map(|(t, s)| format!("\"{t}\": {:.1}", mb / s)).collect();
    let out = format!(
        "{{\n  \"bench\": \"frame_stream\",\n  \"frame\": \"{w}x{h}\",\n  \"quick\": {quick},\n  \
         \"kernels\": {{\n    \"rle_scalar_mb_s\": {:.1},\n    \"rle_wordwide_mb_s\": {:.1},\n    \
         \"rle_speedup\": {speedup_rle:.2},\n    \"delta_scalar_mb_s\": {:.1},\n    \
         \"delta_wordwide_mb_s\": {:.1},\n    \"delta_speedup\": {speedup_delta:.2}\n  }},\n  \
         \"strip_parallel_mb_s\": {{ {} }},\n  \"sim\": {{\n    \"fps_raw\": {fps_raw:.2},\n    \
         \"fps_adaptive\": {fps_adaptive:.2},\n    \"fps_gain\": {fps_gain:.2},\n    \
         \"compression_ratio\": {ratio:.4}\n  }},\n  \"pipeline\": {{\n    \
         \"frames\": {PIPE_FRAMES},\n    \"serial_fps\": {serial_fps:.2},\n    \
         \"pipelined_fps\": {pipelined_fps:.2},\n    \
         \"pipeline_speedup\": {pipeline_speedup:.2},\n    \
         \"wire_utilization\": {wire_utilization:.3},\n    \
         \"wire_ceiling_fps\": {wire_ceiling_fps:.2},\n    \"gap_closed\": {gap_closed:.3},\n    \
         \"grid\": {{ {} }}\n  }}\n}}\n",
        mb / rle_scalar,
        mb / rle_word,
        mb / delta_scalar,
        mb / delta_word,
        strip_json.join(", "),
        grid_json.join(", "),
    );
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_frame_stream.json");
    std::fs::write(&dest, &out).unwrap();
    println!("{out}");
    println!("wrote {}", dest.display());

    assert!(
        speedup_rle >= 2.0,
        "word-wide RLE should be >= 2x the scalar reference (got {speedup_rle:.2}x)"
    );
    assert!(
        speedup_delta >= 2.0,
        "word-wide delta should be >= 2x the scalar reference (got {speedup_delta:.2}x)"
    );
    assert!(
        fps_gain > 1.2,
        "adaptive stream should beat raw 24 bpp on wireless (got {fps_gain:.2}x)"
    );

    // Pipeline floors. Depth 1 must reproduce the serial loop exactly
    // (full mode streams the same 12 frames through both paths).
    if !quick {
        assert!(
            (raw_serial.fps - fps_raw).abs() < 1e-9 && (serial_fps - fps_adaptive).abs() < 1e-9,
            "depth 1 == serial loop: {} vs {fps_raw}, {serial_fps} vs {fps_adaptive}",
            raw_serial.fps
        );
    }
    assert!(
        gap_closed >= 0.6,
        "depth >= 2 over wireless should close >= 60% of the gap to the pure-wire-time \
         ceiling (closed {gap_closed:.3}: serial {:.2} -> piped {:.2}, ceiling \
         {wire_ceiling_fps:.2})",
        raw_serial.fps,
        raw_piped.fps
    );
    assert!(
        pipeline_speedup >= 1.3,
        "pipelining the adaptive stream should speed it up >= 1.3x (got {pipeline_speedup:.2}x)"
    );
    assert!(
        wire_utilization >= 0.9,
        "the pipelined raw wireless stream should keep the wire >= 90% busy \
         (got {wire_utilization:.3})"
    );
    // Depth 2 already overlaps; deeper never hurts.
    for mode in [CompressionMode::Raw, CompressionMode::Adaptive] {
        let d1 = find(mode, 1).fps;
        let d2 = find(mode, 2).fps;
        let d4 = find(mode, 4).fps;
        assert!(d2 > d1 && d4 >= d2 * 0.999, "monotone depth scaling: {d1} {d2} {d4}");
    }
}
