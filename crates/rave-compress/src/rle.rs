//! Byte-level run-length coding.
//!
//! Format: a stream of `(count: u8, op)` records. `count` with the high
//! bit set means a *run*: the next byte repeats `count & 0x7F` times
//! (1–127). High bit clear means a *literal span* of `count` bytes
//! (1–127) copied verbatim. Rendered frames have large flat regions
//! (background, solid shading), which is where this wins.
//!
//! Two encoders produce the identical stream: [`encode_scalar`], the
//! byte-at-a-time reference, and [`encode`], the word-wide production
//! kernel that scans runs and literal spans eight bytes per load
//! (property-tested bit-identical in `tests/proptest_codecs.rs`).

const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn load_le(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"))
}

/// Exact per-byte zero mask: the high bit of every byte of the result is
/// set iff that byte of `v` is zero. Carry-free (each byte's 7-bit add
/// cannot overflow into its neighbour), so unlike the classic
/// `(v - LO) & !v & HI` haszero trick there are no false positives above
/// a zero byte — `trailing_zeros` lands on the *first* zero byte.
#[inline]
fn zero_bytes(v: u64) -> u64 {
    let t = (v & !HI).wrapping_add(!HI);
    !(t | v) & HI
}

/// Length of the run of `data[i]` starting at `i`, capped at `cap`.
#[inline]
fn run_len(data: &[u8], i: usize, cap: usize) -> usize {
    let b = data[i];
    let end = data.len().min(i + cap);
    let pat = u64::from_le_bytes([b; 8]);
    let mut j = i + 1;
    while j + 8 <= end {
        let x = load_le(data, j) ^ pat;
        if x != 0 {
            return j + x.trailing_zeros() as usize / 8 - i;
        }
        j += 8;
    }
    while j < end && data[j] == b {
        j += 1;
    }
    j - i
}

/// First index in `[from, to)` where a run of ≥3 equal bytes starts
/// (`data[j] == data[j+1] == data[j+2]`), or `to` if none. Word-wide:
/// three overlapping loads give per-lane `x[k]==x[k+1]` and
/// `x[k]==x[k+2]` masks whose conjunction marks triple starts.
#[inline]
fn find_run3(data: &[u8], from: usize, to: usize) -> usize {
    let mut j = from;
    while j < to && j + 10 <= data.len() {
        let w = load_le(data, j);
        let eq1 = zero_bytes(w ^ load_le(data, j + 1));
        let eq2 = zero_bytes(w ^ load_le(data, j + 2));
        let mask = eq1 & eq2;
        if mask != 0 {
            let hit = j + mask.trailing_zeros() as usize / 8;
            return hit.min(to);
        }
        j += 8;
    }
    while j < to {
        if j + 2 < data.len() && data[j] == data[j + 1] && data[j + 1] == data[j + 2] {
            return j;
        }
        j += 1;
    }
    to
}

/// Encode a byte stream (word-wide kernel).
pub fn encode(data: &[u8]) -> Vec<u8> {
    let len = data.len();
    let mut out = Vec::with_capacity(len / 4 + 16);
    let mut i = 0;
    while i < len {
        let run = run_len(data, i, 127);
        if run >= 3 {
            out.push(0x80 | run as u8);
            out.push(data[i]);
            i += run;
            continue;
        }
        // Literal span: up to the next ≥3 run (never at `i` itself — the
        // run test above just failed there) or 127 bytes.
        let end = find_run3(data, i + 1, len.min(i + 127));
        out.push((end - i) as u8);
        out.extend_from_slice(&data[i..end]);
        i = end;
    }
    out
}

/// The byte-at-a-time reference encoder. [`encode`] must produce this
/// exact stream; benches report the speedup between the two.
pub fn encode_scalar(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1usize;
        while run < 127 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            out.push(0x80 | run as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal span: until the next ≥3 run or 127 bytes.
        let start = i;
        let mut len = 0usize;
        while len < 127 && i < data.len() {
            let b = data[i];
            let mut run = 1usize;
            while run < 3 && i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            if run >= 3 && i + 2 < data.len() && data[i + 2] == b {
                break;
            }
            i += 1;
            len += 1;
        }
        out.push(len as u8);
        out.extend_from_slice(&data[start..start + len]);
    }
    out
}

/// Decode a stream produced by [`encode`]. `None` on truncation or
/// zero-length records (corrupt input).
pub fn decode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let tag = data[i];
        i += 1;
        let count = (tag & 0x7F) as usize;
        if count == 0 {
            return None;
        }
        if tag & 0x80 != 0 {
            let b = *data.get(i)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, count));
        } else {
            if i + count > data.len() {
                return None;
            }
            out.extend_from_slice(&data[i..i + count]);
            i += count;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_content() {
        let mut data = vec![7u8; 500];
        data.extend((0..200u32).map(|i| (i * 31 % 256) as u8));
        data.extend(vec![0u8; 300]);
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_single_byte() {
        assert_eq!(decode(&encode(&[42])).unwrap(), vec![42]);
    }

    #[test]
    fn long_runs_split_correctly() {
        let data = vec![9u8; 1000]; // > 127, forces multiple run records
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        assert!(encode(&data).len() < 20);
    }

    #[test]
    fn incompressible_data_bounded_overhead() {
        let data: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        let enc = encode(&data);
        assert!(enc.len() < data.len() + data.len() / 64 + 16, "overhead {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_rejected() {
        let enc = encode(&[5u8; 100]);
        assert!(decode(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn zero_count_rejected() {
        assert!(decode(&[0x00]).is_none());
        assert!(decode(&[0x80]).is_none());
    }

    #[test]
    fn wordwide_matches_scalar_on_adversarial_seams() {
        // Runs starting/ending at every offset relative to the 8-byte
        // windows, literal caps at 127, triples straddling load seams.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![1, 1],
            vec![1, 1, 1],
            vec![0; 127],
            vec![0; 128],
            vec![0; 129],
            (0..255u8).collect(),
            (0..130u8).map(|i| i / 2).collect(), // pairs, never triples
        ];
        for off in 0..10 {
            let mut v: Vec<u8> = (0..off as u8).collect();
            v.extend(vec![7u8; 5]);
            v.extend((0..9u8).rev());
            v.extend(vec![7u8; 2]);
            v.push(8);
            v.extend(vec![9u8; 300]);
            cases.push(v);
        }
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 7, 8, 9, 63, 64, 65, 1000] {
            cases.push((0..n).map(|_| (next() >> 32) as u8).collect());
            cases.push(
                (0..n).map(|_| if next() % 3 == 0 { 5 } else { (next() >> 40) as u8 }).collect(),
            );
        }
        for data in cases {
            let fast = encode(&data);
            let slow = encode_scalar(&data);
            assert_eq!(fast, slow, "diverged on len {}", data.len());
            assert_eq!(decode(&fast).unwrap(), data);
        }
    }

    #[test]
    fn zero_bytes_mask_is_exact() {
        // The lanes that tripped the classic haszero trick: 0x01 bytes
        // above a zero byte must NOT be flagged.
        let v = u64::from_le_bytes([0x00, 0x01, 0x01, 0x80, 0xFF, 0x00, 0x7F, 0x01]);
        let m = zero_bytes(v);
        assert_eq!(m, 0x0000_8000_0000_0080, "only true zero lanes flagged: {m:#018x}");
    }
}
