//! Byte-level run-length coding.
//!
//! Format: a stream of `(count: u8, op)` records. `count` with the high
//! bit set means a *run*: the next byte repeats `count & 0x7F` times
//! (1–127). High bit clear means a *literal span* of `count` bytes
//! (1–127) copied verbatim. Rendered frames have large flat regions
//! (background, solid shading), which is where this wins.

/// Encode a byte stream.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1usize;
        while run < 127 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            out.push(0x80 | run as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal span: until the next ≥3 run or 127 bytes.
        let start = i;
        let mut len = 0usize;
        while len < 127 && i < data.len() {
            let b = data[i];
            let mut run = 1usize;
            while run < 3 && i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            if run >= 3 && i + 2 < data.len() && data[i + 2] == b {
                break;
            }
            i += 1;
            len += 1;
        }
        out.push(len as u8);
        out.extend_from_slice(&data[start..start + len]);
    }
    out
}

/// Decode a stream produced by [`encode`]. `None` on truncation or
/// zero-length records (corrupt input).
pub fn decode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let tag = data[i];
        i += 1;
        let count = (tag & 0x7F) as usize;
        if count == 0 {
            return None;
        }
        if tag & 0x80 != 0 {
            let b = *data.get(i)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, count));
        } else {
            if i + count > data.len() {
                return None;
            }
            out.extend_from_slice(&data[i..i + count]);
            i += count;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_content() {
        let mut data = vec![7u8; 500];
        data.extend((0..200u32).map(|i| (i * 31 % 256) as u8));
        data.extend(vec![0u8; 300]);
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_single_byte() {
        assert_eq!(decode(&encode(&[42])).unwrap(), vec![42]);
    }

    #[test]
    fn long_runs_split_correctly() {
        let data = vec![9u8; 1000]; // > 127, forces multiple run records
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        assert!(encode(&data).len() < 20);
    }

    #[test]
    fn incompressible_data_bounded_overhead() {
        let data: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        let enc = encode(&data);
        assert!(enc.len() < data.len() + data.len() / 64 + 16, "overhead {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_rejected() {
        let enc = encode(&[5u8; 100]);
        assert!(decode(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn zero_count_rejected() {
        assert!(decode(&[0x00]).is_none());
        assert!(decode(&[0x80]).is_none());
    }
}
