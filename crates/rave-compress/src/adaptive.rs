//! Bandwidth-adaptive codec selection.
//!
//! Picks the codec minimizing estimated end-to-end frame latency:
//! `encode_time(sender) + transfer_time(link) + decode_time(receiver)`,
//! re-evaluated whenever the link changes ("adapt on the fly to changing
//! network conditions", §5.1). Lossy codecs are only considered when the
//! caller allows them.
//!
//! Two selection paths exist:
//!
//! - [`select`] trial-encodes every candidate on the actual frame. Exact,
//!   but it costs five encodes per frame — fine for offline ablations,
//!   too heavy for the per-frame hot path.
//! - [`CodecSelector`] keeps an EWMA of each codec's *measured*
//!   compression ratio (fed back from real sends via
//!   [`CodecSelector::observe`]) and estimates from those, trial-encoding
//!   only on the first frame and on a periodic re-probe cadence. Between
//!   probes a frame costs one encode — the one actually shipped.
//!
//! The cost model charges decode on the bytes the receiver actually
//! touches (see [`decode_cost_bytes`]): the encoded payload it parses,
//! plus the frame-sized reconstruction pass for delta codecs and the
//! 2-bpp dequantization input for RGB565. Charging the raw frame length
//! for every codec (the obvious first cut) systematically overtaxes cheap
//! decoders on slow endpoints and mispicks codecs near the crossover —
//! `new_model_fixes_decode_overcharge_mispick` pins one such case.

use crate::Codec;
use rave_net::LinkSpec;
use rave_sim::SimTime;

/// CPU cost rates of one endpoint.
#[derive(Debug, Clone, Copy)]
pub struct EndpointSpeed {
    /// Bytes/s the endpoint can RLE/delta-encode or decode.
    pub codec_bytes_per_sec: f64,
}

impl EndpointSpeed {
    /// A 2004 laptop/desktop CPU.
    pub fn workstation() -> Self {
        Self { codec_bytes_per_sec: 80.0e6 }
    }

    /// The Zaurus PDA — an order of magnitude slower, which is why heavy
    /// codecs can *lose* on the PDA even when they shrink the payload.
    pub fn pda() -> Self {
        Self { codec_bytes_per_sec: 6.0e6 }
    }
}

/// One codec's predicted cost for a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecEstimate {
    pub codec: Codec,
    pub encoded_bytes: u64,
    pub total_time: SimTime,
}

/// Bytes of codec work the *sender* performs: one pass over the raw
/// frame for every real codec, nothing for Raw.
pub fn encode_cost_bytes(codec: Codec, frame_len: usize) -> u64 {
    match codec {
        Codec::Raw => 0,
        _ => frame_len as u64,
    }
}

/// Bytes of codec work the *receiver* performs — the payload it parses
/// plus any frame-sized reconstruction pass, NOT a blanket `frame_len`:
///
/// - `Raw`: memcpy, charged as free like the encode side.
/// - `Rle`: one scan of the encoded payload (output writes ride along).
/// - `DeltaRle`: the RLE scan of the payload, then a full-frame add pass
///   over the previous frame.
/// - `Quant565`: one pass over the 2-bpp payload (⅔ of the frame).
/// - `Quant565Rle`: the RLE scan, then the 2-bpp dequantization pass.
pub fn decode_cost_bytes(codec: Codec, frame_len: usize, encoded_len: usize) -> u64 {
    let two_bpp = (frame_len as u64 / 3) * 2;
    match codec {
        Codec::Raw => 0,
        Codec::Rle => encoded_len as u64,
        Codec::DeltaRle => encoded_len as u64 + frame_len as u64,
        Codec::Quant565 => two_bpp,
        Codec::Quant565Rle => encoded_len as u64 + two_bpp,
    }
}

fn estimate_from_encoded(
    codec: Codec,
    frame_len: usize,
    encoded_len: usize,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
) -> CodecEstimate {
    let encode_time = encode_cost_bytes(codec, frame_len) as f64 / sender.codec_bytes_per_sec;
    let decode_time =
        decode_cost_bytes(codec, frame_len, encoded_len) as f64 / receiver.codec_bytes_per_sec;
    let transfer = link.transfer_time(encoded_len as u64);
    CodecEstimate {
        codec,
        encoded_bytes: encoded_len as u64,
        total_time: SimTime::from_secs(encode_time + decode_time) + transfer,
    }
}

/// Predict the end-to-end time of sending `frame` with `codec`, by
/// trial-encoding this very frame (ratios are content-dependent and the
/// paper's wireless frames are exactly the content we have).
pub fn estimate(
    codec: Codec,
    frame: &[u8],
    prev: Option<&[u8]>,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
) -> CodecEstimate {
    let encoded = codec.encode(frame, prev);
    estimate_from_encoded(codec, frame.len(), encoded.len(), link, sender, receiver)
}

/// Predict from a remembered compression `ratio` (encoded/raw) instead of
/// a trial encode — the [`CodecSelector`] hot path.
pub fn estimate_with_ratio(
    codec: Codec,
    frame_len: usize,
    ratio: f64,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
) -> CodecEstimate {
    let encoded_len = (frame_len as f64 * ratio.max(0.0)).round() as usize;
    estimate_from_encoded(codec, frame_len, encoded_len, link, sender, receiver)
}

/// Choose the best codec for this frame/link/endpoint combination by
/// trial-encoding every candidate.
pub fn select(
    frame: &[u8],
    prev: Option<&[u8]>,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
    allow_lossy: bool,
) -> CodecEstimate {
    Codec::ALL
        .iter()
        .filter(|c| allow_lossy || !c.is_lossy())
        .map(|&c| estimate(c, frame, prev, link, sender, receiver))
        .min_by(|a, b| a.total_time.cmp(&b.total_time))
        .expect("at least Raw is always a candidate")
}

/// Stateful per-stream codec chooser: EWMA of measured per-codec ratios,
/// trial-encode probes only on a periodic cadence.
#[derive(Debug, Clone)]
pub struct CodecSelector {
    /// EWMA weight of the newest measurement, in `(0, 1]`.
    pub alpha: f64,
    /// Re-probe (trial-encode all candidates) every N frames; `0` probes
    /// only once, on the first frame.
    pub reprobe_every: u64,
    frames_seen: u64,
    ratios: [Option<f64>; Codec::ALL.len()],
}

impl CodecSelector {
    pub fn new(alpha: f64, reprobe_every: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        Self { alpha, reprobe_every, frames_seen: 0, ratios: [None; Codec::ALL.len()] }
    }

    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// The remembered ratio for `codec`, if any measurement exists.
    pub fn ratio(&self, codec: Codec) -> Option<f64> {
        self.ratios[codec.id() as usize]
    }

    fn blend(&mut self, codec: Codec, measured: f64) {
        let slot = &mut self.ratios[codec.id() as usize];
        *slot = Some(match *slot {
            Some(old) => self.alpha * measured + (1.0 - self.alpha) * old,
            None => measured,
        });
    }

    /// Fold a *real* send back in: `encoded_bytes / logical_bytes` as
    /// shipped, which prices in container overhead and dirty-strip
    /// savings the trial probes cannot see.
    pub fn observe(&mut self, codec: Codec, logical_bytes: u64, encoded_bytes: u64) {
        if logical_bytes > 0 {
            self.blend(codec, encoded_bytes as f64 / logical_bytes as f64);
        }
    }

    /// Pick the codec for the next frame. Trial-encodes all candidates on
    /// the first frame, on the re-probe cadence, and for any candidate
    /// with no remembered ratio; otherwise estimates from the EWMA ratios
    /// (zero extra encodes).
    pub fn choose(
        &mut self,
        frame: &[u8],
        prev: Option<&[u8]>,
        link: &LinkSpec,
        sender: EndpointSpeed,
        receiver: EndpointSpeed,
        allow_lossy: bool,
    ) -> CodecEstimate {
        let candidates = Codec::ALL.iter().copied().filter(|c| allow_lossy || !c.is_lossy());
        let due_probe = self.frames_seen == 0
            || (self.reprobe_every > 0 && self.frames_seen.is_multiple_of(self.reprobe_every));
        let need_seed = candidates.clone().any(|c| self.ratio(c).is_none());
        self.frames_seen += 1;

        if due_probe || need_seed {
            let best = candidates
                .map(|c| {
                    let est = estimate(c, frame, prev, link, sender, receiver);
                    self.blend(c, est.encoded_bytes as f64 / frame.len().max(1) as f64);
                    est
                })
                .min_by(|a, b| a.total_time.cmp(&b.total_time))
                .expect("at least Raw is always a candidate");
            return best;
        }
        candidates
            .map(|c| {
                let ratio = self.ratio(c).expect("seeded above");
                estimate_with_ratio(c, frame.len(), ratio, link, sender, receiver)
            })
            .min_by(|a, b| a.total_time.cmp(&b.total_time))
            .expect("at least Raw is always a candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_flat(n: usize) -> Vec<u8> {
        vec![30u8; n * 3]
    }

    fn frame_noise(n: usize) -> Vec<u8> {
        (0..n * 3).map(|i| ((i as u64).wrapping_mul(2654435761) >> 13) as u8).collect()
    }

    #[test]
    fn slow_link_prefers_compression() {
        let link = LinkSpec::wireless_11mb(0.3); // weak signal
        let choice = select(
            &frame_flat(40_000),
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_ne!(choice.codec, Codec::Raw, "weak wireless must compress");
    }

    #[test]
    fn fast_link_with_noise_prefers_raw() {
        // Loopback-speed link + incompressible frame: codec time is pure
        // loss.
        let link = LinkSpec::loopback();
        let choice = select(
            &frame_noise(40_000),
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::workstation(),
            false,
        );
        assert_eq!(choice.codec, Codec::Raw);
    }

    #[test]
    fn static_scene_prefers_delta() {
        let link = LinkSpec::wireless_11mb(1.0);
        let frame = frame_noise(40_000); // incompressible content...
        let choice = select(
            &frame,
            Some(&frame), // ...but identical to the previous frame
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_eq!(choice.codec, Codec::DeltaRle);
    }

    #[test]
    fn lossy_only_when_allowed() {
        let link = LinkSpec::wireless_11mb(0.2);
        let frame = frame_noise(40_000);
        let lossless =
            select(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        assert!(!lossless.codec.is_lossy());
        let lossy =
            select(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), true);
        // Incompressible noise: quantization is the only way to shrink it.
        assert!(lossy.codec.is_lossy());
        assert!(lossy.total_time < lossless.total_time);
    }

    #[test]
    fn adaptation_switches_codec_as_signal_degrades() {
        // The §5.1 scenario: user walks away from the access point.
        let frame = frame_noise(13_333); // ~200x200 / 3 region changing
        let strong = select(
            &frame,
            None,
            &LinkSpec::loopback(),
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        let weak = select(
            &frame,
            None,
            &LinkSpec::wireless_11mb(0.15),
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        assert_eq!(strong.codec, Codec::Raw);
        assert_ne!(weak.codec, Codec::Raw);
    }

    #[test]
    fn estimates_account_for_pda_decode_cost() {
        let link = LinkSpec::ethernet_100mb();
        let frame = frame_flat(40_000);
        let to_pda = estimate(
            Codec::Rle,
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
        );
        let to_ws = estimate(
            Codec::Rle,
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::workstation(),
        );
        assert!(to_pda.total_time > to_ws.total_time);
    }

    /// The regression the cost-model fix pins down. The old model charged
    /// decode on the raw `frame.len()` for every codec; near the
    /// raw/quantize crossover that overcharge flips the winner. On a
    /// ≈2.2 MB/s link with a PDA receiver and a 120 kB noise frame:
    ///
    /// - old: Quant565 = 1.5ms enc + 20ms dec + 36.4ms tx = 57.9ms,
    ///   Raw = 54.5ms tx → picks Raw;
    /// - new: Quant565 decode touches only the 80 kB payload → 13.3ms dec,
    ///   51.2ms total → Quant565 wins, matching what a receiver-side
    ///   microbenchmark of the dequant pass actually costs.
    #[test]
    fn new_model_fixes_decode_overcharge_mispick() {
        let link = LinkSpec {
            name: "field-2.2MBps".into(),
            bandwidth_bps: 17.6e6,
            latency: SimTime::from_micros(0.0),
            per_message: SimTime::from_micros(0.0),
            efficiency: 1.0,
        };
        assert!((link.goodput_bytes_per_sec() - 2.2e6).abs() < 1.0);
        let frame = frame_noise(40_000); // 120 kB, incompressible
        let sender = EndpointSpeed::workstation();
        let receiver = EndpointSpeed::pda();

        // The old model, inlined: decode billed on frame.len() always.
        let old_pick = Codec::ALL
            .iter()
            .map(|&c| {
                let encoded = c.encode(&frame, None).len() as u64;
                let cpu = if c == Codec::Raw {
                    0.0
                } else {
                    frame.len() as f64 / sender.codec_bytes_per_sec
                        + frame.len() as f64 / receiver.codec_bytes_per_sec
                };
                (c, SimTime::from_secs(cpu) + link.transfer_time(encoded))
            })
            .min_by(|a, b| a.1.cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(old_pick, Codec::Raw, "old model overcharges Quant565 decode");

        let new_pick = select(&frame, None, &link, sender, receiver, true);
        assert_eq!(new_pick.codec, Codec::Quant565, "fixed model picks the cheap dequant");
        let raw = estimate(Codec::Raw, &frame, None, &link, sender, receiver);
        assert!(new_pick.total_time < raw.total_time);
    }

    #[test]
    fn selector_probes_once_then_estimates_from_ratios() {
        let link = LinkSpec::wireless_11mb(1.0);
        let frame = frame_flat(40_000);
        let mut sel = CodecSelector::new(0.3, 30);
        let first = sel.choose(
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        // Probe seeded a ratio for every lossless candidate.
        for c in [Codec::Raw, Codec::Rle, Codec::DeltaRle] {
            assert!(sel.ratio(c).is_some(), "{} unseeded", c.name());
        }
        let second = sel.choose(
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        // Flat frames crush under RLE; both paths must agree with the
        // exhaustive trial-encode selector.
        let exhaustive =
            select(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        assert_eq!(first.codec, exhaustive.codec);
        assert_eq!(second.codec, exhaustive.codec);
        assert_eq!(sel.frames_seen(), 2);
    }

    #[test]
    fn observe_feedback_steers_the_selector() {
        let link = LinkSpec::wireless_11mb(1.0);
        let frame = frame_noise(40_000);
        let mut sel = CodecSelector::new(1.0, 0); // alpha 1: trust newest
        sel.choose(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        // Real sends report DeltaRle crushing frames (a static scene with
        // dirty-strip skips): the selector must switch to it without any
        // re-probe.
        sel.observe(Codec::DeltaRle, 120_000, 600);
        let pick = sel.choose(
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_eq!(pick.codec, Codec::DeltaRle);
        let r = sel.ratio(Codec::DeltaRle).unwrap();
        assert!((r - 0.005).abs() < 1e-9, "alpha=1 adopts the measurement: {r}");
    }

    #[test]
    fn reprobe_cadence_recovers_from_stale_ratios() {
        let link = LinkSpec::wireless_11mb(1.0);
        let frame = frame_flat(40_000);
        let mut sel = CodecSelector::new(1.0, 2); // re-probe every 2nd frame
        sel.choose(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        // Poison a ratio as if the scene had been incompressible.
        sel.observe(Codec::Rle, 100, 1_000);
        assert!(sel.ratio(Codec::Rle).unwrap() > 1.0);
        // The next frame is off-cadence (estimates only); the one after
        // re-probes and the flat-frame ratio washes the stale value out.
        sel.choose(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        assert!(sel.ratio(Codec::Rle).unwrap() > 1.0, "off-cadence frame keeps the stale ratio");
        sel.choose(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        assert!(sel.ratio(Codec::Rle).unwrap() < 0.1);
    }
}
