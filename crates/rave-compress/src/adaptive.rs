//! Bandwidth-adaptive codec selection.
//!
//! Picks the codec minimizing estimated end-to-end frame latency:
//! `encode_time(sender) + transfer_time(link) + decode_time(receiver)`,
//! re-evaluated whenever the link changes ("adapt on the fly to changing
//! network conditions", §5.1). Lossy codecs are only considered when the
//! caller allows them.

use crate::Codec;
use rave_net::LinkSpec;
use rave_sim::SimTime;

/// CPU cost rates of one endpoint.
#[derive(Debug, Clone, Copy)]
pub struct EndpointSpeed {
    /// Bytes/s the endpoint can RLE/delta-encode or decode.
    pub codec_bytes_per_sec: f64,
}

impl EndpointSpeed {
    /// A 2004 laptop/desktop CPU.
    pub fn workstation() -> Self {
        Self { codec_bytes_per_sec: 80.0e6 }
    }

    /// The Zaurus PDA — an order of magnitude slower, which is why heavy
    /// codecs can *lose* on the PDA even when they shrink the payload.
    pub fn pda() -> Self {
        Self { codec_bytes_per_sec: 6.0e6 }
    }
}

/// One codec's predicted cost for a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecEstimate {
    pub codec: Codec,
    pub encoded_bytes: u64,
    pub total_time: SimTime,
}

/// Predict the end-to-end time of sending `frame` with `codec`, given the
/// measured compression ratio on this very frame (the selector encodes
/// for real — ratios are content-dependent and the paper's wireless
/// frames are exactly the content we have).
pub fn estimate(
    codec: Codec,
    frame: &[u8],
    prev: Option<&[u8]>,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
) -> CodecEstimate {
    let encoded = codec.encode(frame, prev);
    let encode_time =
        if codec == Codec::Raw { 0.0 } else { frame.len() as f64 / sender.codec_bytes_per_sec };
    let decode_time =
        if codec == Codec::Raw { 0.0 } else { frame.len() as f64 / receiver.codec_bytes_per_sec };
    let transfer = link.transfer_time(encoded.len() as u64);
    CodecEstimate {
        codec,
        encoded_bytes: encoded.len() as u64,
        total_time: SimTime::from_secs(encode_time + decode_time) + transfer,
    }
}

/// Choose the best codec for this frame/link/endpoint combination.
pub fn select(
    frame: &[u8],
    prev: Option<&[u8]>,
    link: &LinkSpec,
    sender: EndpointSpeed,
    receiver: EndpointSpeed,
    allow_lossy: bool,
) -> CodecEstimate {
    Codec::ALL
        .iter()
        .filter(|c| allow_lossy || !c.is_lossy())
        .map(|&c| estimate(c, frame, prev, link, sender, receiver))
        .min_by(|a, b| a.total_time.cmp(&b.total_time))
        .expect("at least Raw is always a candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_flat(n: usize) -> Vec<u8> {
        vec![30u8; n * 3]
    }

    fn frame_noise(n: usize) -> Vec<u8> {
        (0..n * 3).map(|i| ((i as u64).wrapping_mul(2654435761) >> 13) as u8).collect()
    }

    #[test]
    fn slow_link_prefers_compression() {
        let link = LinkSpec::wireless_11mb(0.3); // weak signal
        let choice = select(
            &frame_flat(40_000),
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_ne!(choice.codec, Codec::Raw, "weak wireless must compress");
    }

    #[test]
    fn fast_link_with_noise_prefers_raw() {
        // Loopback-speed link + incompressible frame: codec time is pure
        // loss.
        let link = LinkSpec::loopback();
        let choice = select(
            &frame_noise(40_000),
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::workstation(),
            false,
        );
        assert_eq!(choice.codec, Codec::Raw);
    }

    #[test]
    fn static_scene_prefers_delta() {
        let link = LinkSpec::wireless_11mb(1.0);
        let frame = frame_noise(40_000); // incompressible content...
        let choice = select(
            &frame,
            Some(&frame), // ...but identical to the previous frame
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            false,
        );
        assert_eq!(choice.codec, Codec::DeltaRle);
    }

    #[test]
    fn lossy_only_when_allowed() {
        let link = LinkSpec::wireless_11mb(0.2);
        let frame = frame_noise(40_000);
        let lossless =
            select(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), false);
        assert!(!lossless.codec.is_lossy());
        let lossy =
            select(&frame, None, &link, EndpointSpeed::workstation(), EndpointSpeed::pda(), true);
        // Incompressible noise: quantization is the only way to shrink it.
        assert!(lossy.codec.is_lossy());
        assert!(lossy.total_time < lossless.total_time);
    }

    #[test]
    fn adaptation_switches_codec_as_signal_degrades() {
        // The §5.1 scenario: user walks away from the access point.
        let frame = frame_noise(13_333); // ~200x200 / 3 region changing
        let strong = select(
            &frame,
            None,
            &LinkSpec::loopback(),
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        let weak = select(
            &frame,
            None,
            &LinkSpec::wireless_11mb(0.15),
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
            true,
        );
        assert_eq!(strong.codec, Codec::Raw);
        assert_ne!(weak.codec, Codec::Raw);
    }

    #[test]
    fn estimates_account_for_pda_decode_cost() {
        let link = LinkSpec::ethernet_100mb();
        let frame = frame_flat(40_000);
        let to_pda = estimate(
            Codec::Rle,
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::pda(),
        );
        let to_ws = estimate(
            Codec::Rle,
            &frame,
            None,
            &link,
            EndpointSpeed::workstation(),
            EndpointSpeed::workstation(),
        );
        assert!(to_pda.total_time > to_ws.total_time);
    }
}
