//! Thin-client image compression (the §6 future-work item, built out).
//!
//! "We need a compression algorithm that can adapt on the fly to changing
//! network conditions" (§5.1) — the PDA's wireless bandwidth is both low
//! and variable. This crate provides:
//!
//! - lossless **RLE** of RGB frames ([`rle`]);
//! - **delta** coding against the previous frame ([`delta`]) — interactive
//!   visualization frames are mostly identical between updates;
//! - lossy **RGB565 quantization** ([`quantize`]), composable with RLE;
//! - an **adaptive selector** ([`adaptive`]) that picks the codec
//!   minimizing estimated end-to-end frame time (encode + transfer +
//!   decode) for the current link quality and endpoint speeds.

pub mod adaptive;
pub mod delta;
pub mod quantize;
pub mod rle;
pub mod stream;

/// The codecs a render service can apply to an outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Raw 24-bpp RGB (the paper's baseline).
    Raw,
    /// Run-length encoded RGB.
    Rle,
    /// Delta vs the previous frame, then RLE. Requires the receiver to
    /// hold the previous frame.
    DeltaRle,
    /// RGB565 quantization (lossy, fixed 2/3 ratio).
    Quant565,
    /// RGB565 then RLE (lossy).
    Quant565Rle,
}

impl Codec {
    pub const ALL: [Codec; 5] =
        [Codec::Raw, Codec::Rle, Codec::DeltaRle, Codec::Quant565, Codec::Quant565Rle];

    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Rle => "rle",
            Codec::DeltaRle => "delta+rle",
            Codec::Quant565 => "rgb565",
            Codec::Quant565Rle => "rgb565+rle",
        }
    }

    /// Stable on-wire identifier (used in [`stream`] container headers).
    pub fn id(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Rle => 1,
            Codec::DeltaRle => 2,
            Codec::Quant565 => 3,
            Codec::Quant565Rle => 4,
        }
    }

    /// Inverse of [`Codec::id`]; `None` for unknown wire values.
    pub fn from_id(id: u8) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.id() == id)
    }

    pub fn is_lossy(self) -> bool {
        matches!(self, Codec::Quant565 | Codec::Quant565Rle)
    }

    pub fn needs_previous_frame(self) -> bool {
        matches!(self, Codec::DeltaRle)
    }

    /// Encode an RGB frame. `prev` is the previous frame (same length)
    /// when the codec is delta-based; encoding falls back to keyframe
    /// behaviour when it is absent.
    pub fn encode(self, cur: &[u8], prev: Option<&[u8]>) -> Vec<u8> {
        assert_eq!(cur.len() % 3, 0, "RGB frames are 3 bytes per pixel");
        match self {
            Codec::Raw => cur.to_vec(),
            Codec::Rle => rle::encode(cur),
            Codec::DeltaRle => delta::encode(cur, prev),
            Codec::Quant565 => quantize::encode_565(cur),
            Codec::Quant565Rle => rle::encode(&quantize::encode_565(cur)),
        }
    }

    /// Decode back to RGB bytes. Returns `None` on a corrupt payload or a
    /// missing required previous frame.
    pub fn decode(self, data: &[u8], prev: Option<&[u8]>) -> Option<Vec<u8>> {
        match self {
            Codec::Raw => Some(data.to_vec()),
            Codec::Rle => rle::decode(data),
            Codec::DeltaRle => delta::decode(data, prev),
            Codec::Quant565 => Some(quantize::decode_565(data)?),
            Codec::Quant565Rle => quantize::decode_565(&rle::decode(data)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_frame(n: usize) -> Vec<u8> {
        (0..n * 3).map(|i| ((i / 13) % 251) as u8).collect()
    }

    fn flat_frame(n: usize) -> Vec<u8> {
        vec![40; n * 3]
    }

    #[test]
    fn lossless_codecs_roundtrip_exactly() {
        let frame = gradient_frame(500);
        let prev = flat_frame(500);
        for codec in [Codec::Raw, Codec::Rle, Codec::DeltaRle] {
            let enc = codec.encode(&frame, Some(&prev));
            let dec = codec.decode(&enc, Some(&prev)).unwrap();
            assert_eq!(dec, frame, "{}", codec.name());
        }
    }

    #[test]
    fn lossy_codecs_bounded_error() {
        let frame = gradient_frame(500);
        for codec in [Codec::Quant565, Codec::Quant565Rle] {
            let enc = codec.encode(&frame, None);
            let dec = codec.decode(&enc, None).unwrap();
            assert_eq!(dec.len(), frame.len());
            for (a, b) in frame.iter().zip(&dec) {
                assert!((*a as i16 - *b as i16).abs() <= 8, "{}", codec.name());
            }
        }
    }

    #[test]
    fn rle_crushes_flat_frames() {
        let frame = flat_frame(40_000); // a 200x200 clear screen
        let enc = Codec::Rle.encode(&frame, None);
        assert!(enc.len() * 20 < frame.len(), "flat frame ratio: {}", enc.len());
    }

    #[test]
    fn delta_crushes_static_scenes() {
        let frame = gradient_frame(40_000);
        let enc = Codec::DeltaRle.encode(&frame, Some(&frame));
        assert!(enc.len() * 50 < frame.len() * 3, "static scene delta: {}", enc.len());
    }

    #[test]
    fn delta_without_prev_still_roundtrips() {
        let frame = gradient_frame(100);
        let enc = Codec::DeltaRle.encode(&frame, None);
        let dec = Codec::DeltaRle.decode(&enc, None).unwrap();
        assert_eq!(dec, frame);
    }

    #[test]
    fn quant565_is_two_thirds_size() {
        let frame = gradient_frame(300);
        let enc = Codec::Quant565.encode(&frame, None);
        assert_eq!(enc.len(), 300 * 2);
    }

    #[test]
    #[should_panic]
    fn non_rgb_length_rejected() {
        Codec::Raw.encode(&[1, 2, 3, 4], None);
    }
}
