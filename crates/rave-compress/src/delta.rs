//! Frame differencing.
//!
//! Encodes the byte-wise difference (wrapping subtraction) between the
//! current and previous frame, then RLE-compresses it. Unchanged regions
//! become zero runs, which RLE collapses — interactive frames where only
//! the model moved compress dramatically. A one-byte header distinguishes
//! keyframes (no previous frame available) from delta frames, so a
//! receiver that lost sync can always decode a keyframe.
//!
//! The production encoder ([`encode`]) differs from the byte-at-a-time
//! reference ([`encode_scalar`]) in the RLE stage: run and literal
//! boundaries are found with the word-wide u64 kernels of [`rle`], which
//! is where frame deltas (long zero runs over unchanged regions) spend
//! their time. The diff/reapply passes themselves stay plain byte maps —
//! LLVM already lowers those to packed SIMD subtraction/addition wider
//! than any hand-rolled u64 trick. The two encoders are property-tested
//! bit-identical.

use crate::rle;

const KEYFRAME: u8 = 0;
const DELTA: u8 = 1;

/// `cur[i] - prev[i]` (wrapping) for equal-length slices. Kept as a
/// simple map so the auto-vectorizer can emit packed-byte subtraction.
#[inline]
fn diff_bytes(cur: &[u8], prev: &[u8]) -> Vec<u8> {
    debug_assert_eq!(cur.len(), prev.len());
    cur.iter().zip(prev).map(|(c, p)| c.wrapping_sub(*p)).collect()
}

/// `prev[i] + diff[i]` (wrapping) for equal-length slices.
#[inline]
fn add_bytes(diff: &[u8], prev: &[u8]) -> Vec<u8> {
    debug_assert_eq!(diff.len(), prev.len());
    diff.iter().zip(prev).map(|(d, p)| p.wrapping_add(*d)).collect()
}

/// Encode `cur` against `prev` (must be the same length if present).
pub fn encode(cur: &[u8], prev: Option<&[u8]>) -> Vec<u8> {
    match prev {
        Some(p) if p.len() == cur.len() => {
            let diff = diff_bytes(cur, p);
            let mut out = vec![DELTA];
            out.extend(rle::encode(&diff));
            out
        }
        _ => {
            let mut out = vec![KEYFRAME];
            out.extend(rle::encode(cur));
            out
        }
    }
}

/// The byte-at-a-time reference encoder ([`encode`] must match it
/// bit-for-bit; benches report the speedup between the two).
pub fn encode_scalar(cur: &[u8], prev: Option<&[u8]>) -> Vec<u8> {
    match prev {
        Some(p) if p.len() == cur.len() => {
            let diff: Vec<u8> = cur.iter().zip(p).map(|(c, p)| c.wrapping_sub(*p)).collect();
            let mut out = vec![DELTA];
            out.extend(rle::encode_scalar(&diff));
            out
        }
        _ => {
            let mut out = vec![KEYFRAME];
            out.extend(rle::encode_scalar(cur));
            out
        }
    }
}

/// Decode. A delta frame requires `prev` of the right length.
pub fn decode(data: &[u8], prev: Option<&[u8]>) -> Option<Vec<u8>> {
    let (&tag, body) = data.split_first()?;
    let payload = rle::decode(body)?;
    match tag {
        KEYFRAME => Some(payload),
        DELTA => {
            let p = prev?;
            if p.len() != payload.len() {
                return None;
            }
            Some(add_bytes(&payload, p))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_roundtrip() {
        let prev: Vec<u8> = (0..600).map(|i| (i % 256) as u8).collect();
        let mut cur = prev.clone();
        for px in cur[90..120].iter_mut() {
            *px = px.wrapping_add(50);
        }
        let enc = encode(&cur, Some(&prev));
        assert_eq!(decode(&enc, Some(&prev)).unwrap(), cur);
    }

    #[test]
    fn keyframe_when_no_prev() {
        let cur = vec![5u8; 300];
        let enc = encode(&cur, None);
        assert_eq!(enc[0], KEYFRAME);
        assert_eq!(decode(&enc, None).unwrap(), cur);
    }

    #[test]
    fn keyframe_when_size_changed() {
        let cur = vec![5u8; 300];
        let prev = vec![5u8; 150]; // viewport resized
        let enc = encode(&cur, Some(&prev));
        assert_eq!(enc[0], KEYFRAME);
        assert_eq!(decode(&enc, None).unwrap(), cur);
    }

    #[test]
    fn identical_frames_collapse() {
        let frame: Vec<u8> = (0..30_000).map(|i| (i * 7 % 256) as u8).collect();
        let enc = encode(&frame, Some(&frame));
        assert!(enc.len() < 600, "all-zero diff collapses: {}", enc.len());
    }

    #[test]
    fn delta_frame_without_prev_fails_cleanly() {
        let prev = vec![1u8; 100];
        let cur = vec![2u8; 100];
        let enc = encode(&cur, Some(&prev));
        assert_eq!(enc[0], DELTA);
        assert!(decode(&enc, None).is_none());
        assert!(decode(&enc, Some(&[0u8; 50])).is_none(), "wrong prev length");
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decode(&[9, 1, 2], None).is_none());
        assert!(decode(&[], None).is_none());
    }

    #[test]
    fn diff_and_add_are_inverse_on_wrapping_boundaries() {
        // Byte pairs chosen to cross every wrap/borrow boundary.
        let vals = [0u8, 1, 2, 0x7E, 0x7F, 0x80, 0x81, 0xFE, 0xFF, 0x55, 0xAA];
        let cur: Vec<u8> = vals.iter().flat_map(|&a| vals.iter().map(move |_| a)).collect();
        let prev: Vec<u8> = vals.iter().flat_map(|_| vals.iter().copied()).collect();
        let diff = diff_bytes(&cur, &prev);
        for (i, d) in diff.iter().enumerate() {
            assert_eq!(*d, cur[i].wrapping_sub(prev[i]), "lane {i}");
        }
        assert_eq!(add_bytes(&diff, &prev), cur);
    }

    #[test]
    fn wordwide_matches_scalar_encoder() {
        let mut state = 1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 7, 8, 9, 600, 601] {
            let prev: Vec<u8> = (0..n).map(|_| (next() >> 32) as u8).collect();
            let mut cur = prev.clone();
            for px in cur.iter_mut().skip(n / 3).take(n / 4) {
                *px = px.wrapping_add((next() >> 24) as u8);
            }
            assert_eq!(encode(&cur, Some(&prev)), encode_scalar(&cur, Some(&prev)), "len {n}");
            assert_eq!(encode(&cur, None), encode_scalar(&cur, None), "keyframe len {n}");
        }
    }
}
