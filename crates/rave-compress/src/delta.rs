//! Frame differencing.
//!
//! Encodes the byte-wise difference (wrapping subtraction) between the
//! current and previous frame, then RLE-compresses it. Unchanged regions
//! become zero runs, which RLE collapses — interactive frames where only
//! the model moved compress dramatically. A one-byte header distinguishes
//! keyframes (no previous frame available) from delta frames, so a
//! receiver that lost sync can always decode a keyframe.

use crate::rle;

const KEYFRAME: u8 = 0;
const DELTA: u8 = 1;

/// Encode `cur` against `prev` (must be the same length if present).
pub fn encode(cur: &[u8], prev: Option<&[u8]>) -> Vec<u8> {
    match prev {
        Some(p) if p.len() == cur.len() => {
            let diff: Vec<u8> = cur.iter().zip(p).map(|(c, p)| c.wrapping_sub(*p)).collect();
            let mut out = vec![DELTA];
            out.extend(rle::encode(&diff));
            out
        }
        _ => {
            let mut out = vec![KEYFRAME];
            out.extend(rle::encode(cur));
            out
        }
    }
}

/// Decode. A delta frame requires `prev` of the right length.
pub fn decode(data: &[u8], prev: Option<&[u8]>) -> Option<Vec<u8>> {
    let (&tag, body) = data.split_first()?;
    let payload = rle::decode(body)?;
    match tag {
        KEYFRAME => Some(payload),
        DELTA => {
            let p = prev?;
            if p.len() != payload.len() {
                return None;
            }
            Some(payload.iter().zip(p).map(|(d, p)| p.wrapping_add(*d)).collect())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_roundtrip() {
        let prev: Vec<u8> = (0..600).map(|i| (i % 256) as u8).collect();
        let mut cur = prev.clone();
        for px in cur[90..120].iter_mut() {
            *px = px.wrapping_add(50);
        }
        let enc = encode(&cur, Some(&prev));
        assert_eq!(decode(&enc, Some(&prev)).unwrap(), cur);
    }

    #[test]
    fn keyframe_when_no_prev() {
        let cur = vec![5u8; 300];
        let enc = encode(&cur, None);
        assert_eq!(enc[0], KEYFRAME);
        assert_eq!(decode(&enc, None).unwrap(), cur);
    }

    #[test]
    fn keyframe_when_size_changed() {
        let cur = vec![5u8; 300];
        let prev = vec![5u8; 150]; // viewport resized
        let enc = encode(&cur, Some(&prev));
        assert_eq!(enc[0], KEYFRAME);
        assert_eq!(decode(&enc, None).unwrap(), cur);
    }

    #[test]
    fn identical_frames_collapse() {
        let frame: Vec<u8> = (0..30_000).map(|i| (i * 7 % 256) as u8).collect();
        let enc = encode(&frame, Some(&frame));
        assert!(enc.len() < 600, "all-zero diff collapses: {}", enc.len());
    }

    #[test]
    fn delta_frame_without_prev_fails_cleanly() {
        let prev = vec![1u8; 100];
        let cur = vec![2u8; 100];
        let enc = encode(&cur, Some(&prev));
        assert_eq!(enc[0], DELTA);
        assert!(decode(&enc, None).is_none());
        assert!(decode(&enc, Some(&[0u8; 50])).is_none(), "wrong prev length");
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decode(&[9, 1, 2], None).is_none());
        assert!(decode(&[], None).is_none());
    }
}
