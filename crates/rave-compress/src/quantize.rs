//! RGB888 → RGB565 quantization (lossy, 2:3 fixed ratio).

/// Quantize 24-bpp RGB to 16-bpp RGB565 (little-endian u16 per pixel).
pub fn encode_565(rgb: &[u8]) -> Vec<u8> {
    assert_eq!(rgb.len() % 3, 0);
    let mut out = Vec::with_capacity(rgb.len() / 3 * 2);
    for px in rgb.chunks_exact(3) {
        let r = (px[0] >> 3) as u16;
        let g = (px[1] >> 2) as u16;
        let b = (px[2] >> 3) as u16;
        let v = (r << 11) | (g << 5) | b;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Expand RGB565 back to 24-bpp (with bit replication to fill the low
/// bits). `None` if the length is odd.
pub fn decode_565(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(data.len() / 2 * 3);
    for px in data.chunks_exact(2) {
        let v = u16::from_le_bytes([px[0], px[1]]);
        let r = ((v >> 11) & 0x1F) as u8;
        let g = ((v >> 5) & 0x3F) as u8;
        let b = (v & 0x1F) as u8;
        out.push((r << 3) | (r >> 2));
        out.push((g << 2) | (g >> 4));
        out.push((b << 3) | (b >> 2));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let rgb = vec![0u8; 30];
        assert_eq!(encode_565(&rgb).len(), 20);
        assert_eq!(decode_565(&encode_565(&rgb)).unwrap().len(), 30);
    }

    #[test]
    fn extremes_preserved_exactly() {
        let rgb = vec![0, 0, 0, 255, 255, 255];
        assert_eq!(decode_565(&encode_565(&rgb)).unwrap(), rgb);
    }

    #[test]
    fn error_bounded_by_quantization_step() {
        let rgb: Vec<u8> = (0..255).collect::<Vec<u8>>();
        let rgb = &rgb[..252]; // multiple of 3
        let back = decode_565(&encode_565(rgb)).unwrap();
        for (a, b) in rgb.iter().zip(&back) {
            assert!((*a as i16 - *b as i16).abs() <= 8);
        }
    }

    #[test]
    fn quantization_idempotent() {
        let rgb: Vec<u8> = (0..300).map(|i| (i * 13 % 256) as u8).collect();
        let once = decode_565(&encode_565(&rgb)).unwrap();
        let twice = decode_565(&encode_565(&once)).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn odd_length_rejected() {
        assert!(decode_565(&[1, 2, 3]).is_none());
    }
}
