//! Strip-framed frame transport: parallel codec kernels + dirty-strip
//! reuse.
//!
//! A frame is split into `strip_count` contiguous, pixel-aligned strips.
//! Each strip is independently run through the chosen [`Codec`], which
//! lets encode *and* decode fan out across the vendored rayon (the
//! stand-in pool is deterministic and order-preserving, so the container
//! bytes are identical at any thread count — property-tested). A
//! strip-bitmap header marks strips whose raw bytes are unchanged since
//! the previous frame (word-wide `u64` comparison): those ship **zero**
//! payload bytes and the receiver reuses its copy, so a static scene
//! costs a near-empty header per frame.
//!
//! Two "previous frame" roles are deliberately distinct:
//!
//! - `prev_raw` — the raw pixels the *sender* shipped last frame, used
//!   only for the dirty comparison. Skipping on raw equality is sound
//!   even for lossy codecs: an identical raw strip would re-encode to an
//!   identical payload, so the receiver's held (possibly lossy) strip is
//!   exactly what a re-send would reproduce.
//! - `prev_view` — the *receiver's* reconstruction of the previous frame
//!   (lossy-decoded if the previous frame went lossy), used as the
//!   [`Codec::DeltaRle`] base and as the source for clean strips on
//!   decode. Using the receiver's view keeps delta frames exact across
//!   codec switches.
//!
//! Wire layout (all little-endian):
//!
//! ```text
//! [version: u8 = 1][codec: u8][frame_len: u32][strip_count: u16]
//! [dirty bitmap: ceil(strip_count / 8) bytes, bit i = strip i present]
//! for each dirty strip, in order: [payload_len: u32][payload bytes]
//! ```

use crate::Codec;
use rayon::prelude::*;

const VERSION: u8 = 1;
const HEADER: usize = 8;

/// What a container held, reported by [`encode_frame_with_meta`] and
/// [`inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripMeta {
    pub codec: Codec,
    pub strips: u32,
    /// Strips skipped as unchanged (clean bits in the bitmap).
    pub skipped: u32,
}

/// Word-wide slice equality: eight bytes per compare, exact.
pub fn bytes_identical(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let x = u64::from_le_bytes(x.try_into().expect("8"));
        let y = u64::from_le_bytes(y.try_into().expect("8"));
        if x != y {
            return false;
        }
    }
    ca.remainder() == cb.remainder()
}

/// Pick a strip count targeting `target_strip_bytes` per strip, clamped
/// to the pixel count and the u16 header field.
pub fn strip_count_for(frame_len: usize, target_strip_bytes: usize) -> u16 {
    if frame_len == 0 {
        return 0;
    }
    let pixels = frame_len / 3;
    let want = frame_len.div_ceil(target_strip_bytes.max(1));
    want.clamp(1, pixels.max(1)).min(u16::MAX as usize) as u16
}

/// Byte range of strip `i` of `n` over a frame of `pixels` pixels
/// (strips are pixel-aligned so every slice is a valid RGB run).
fn strip_range(pixels: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    let lo = pixels * i / n * 3;
    let hi = pixels * (i + 1) / n * 3;
    lo..hi
}

fn usable_prev(prev: Option<&[u8]>, len: usize) -> Option<&[u8]> {
    prev.filter(|p| p.len() == len)
}

/// Encode `cur` into a strip container. `strip_count` of zero or more
/// than the pixel count is clamped. See the module docs for the two
/// `prev` roles; passing the same slice for both (or `None`) is correct
/// whenever every prior frame was lossless.
pub fn encode_frame(
    codec: Codec,
    cur: &[u8],
    prev_raw: Option<&[u8]>,
    prev_view: Option<&[u8]>,
    strip_count: u16,
) -> Vec<u8> {
    encode_frame_with_meta(codec, cur, prev_raw, prev_view, strip_count).0
}

/// [`encode_frame`] plus the strip accounting (for stats/traces).
pub fn encode_frame_with_meta(
    codec: Codec,
    cur: &[u8],
    prev_raw: Option<&[u8]>,
    prev_view: Option<&[u8]>,
    strip_count: u16,
) -> (Vec<u8>, StripMeta) {
    assert_eq!(cur.len() % 3, 0, "RGB frames are 3 bytes per pixel");
    let pixels = cur.len() / 3;
    let n = if pixels == 0 { 0 } else { (strip_count as usize).clamp(1, pixels) };
    let prev_raw = usable_prev(prev_raw, cur.len());
    let prev_view = usable_prev(prev_view, cur.len());

    // Encode every dirty strip in parallel (deterministic order).
    let payloads: Vec<Option<Vec<u8>>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let r = strip_range(pixels, n, i);
            if let Some(p) = prev_raw {
                if bytes_identical(&cur[r.clone()], &p[r.clone()]) {
                    return None; // clean strip: receiver already has it
                }
            }
            Some(codec.encode(&cur[r.clone()], prev_view.map(|p| &p[r])))
        })
        .collect();

    let skipped = payloads.iter().filter(|p| p.is_none()).count() as u32;
    let body: usize = payloads.iter().flatten().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(HEADER + n.div_ceil(8) + body);
    out.push(VERSION);
    out.push(codec.id());
    out.extend_from_slice(&(cur.len() as u32).to_le_bytes());
    out.extend_from_slice(&(n as u16).to_le_bytes());
    let mut bitmap = vec![0u8; n.div_ceil(8)];
    for (i, p) in payloads.iter().enumerate() {
        if p.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for p in payloads.iter().flatten() {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    (out, StripMeta { codec, strips: n as u32, skipped })
}

/// Read a container's header without decoding. `None` on corrupt input.
pub fn inspect(data: &[u8]) -> Option<StripMeta> {
    let (codec, frame_len, n, bitmap) = parse_header(data)?;
    let _ = frame_len;
    let skipped = (0..n).filter(|&i| bitmap[i / 8] & (1 << (i % 8)) == 0).count() as u32;
    Some(StripMeta { codec, strips: n as u32, skipped })
}

fn parse_header(data: &[u8]) -> Option<(Codec, usize, usize, &[u8])> {
    if data.len() < HEADER || data[0] != VERSION {
        return None;
    }
    let codec = Codec::from_id(data[1])?;
    let frame_len = u32::from_le_bytes(data[2..6].try_into().ok()?) as usize;
    let n = u16::from_le_bytes(data[6..8].try_into().ok()?) as usize;
    if !frame_len.is_multiple_of(3) {
        return None;
    }
    // Strip count must be 1..=pixels (0 iff empty frame).
    let pixels = frame_len / 3;
    let n_ok = if pixels == 0 { n == 0 } else { n >= 1 && n <= pixels };
    if !n_ok {
        return None;
    }
    let bm = n.div_ceil(8);
    let bitmap = data.get(HEADER..HEADER + bm)?;
    // Padding bits beyond strip_count must be clear.
    if !n.is_multiple_of(8) && bm > 0 && bitmap[bm - 1] >> (n % 8) != 0 {
        return None;
    }
    Some((codec, frame_len, n, bitmap))
}

/// Decode a container produced by [`encode_frame`]. `prev_view` is the
/// receiver's previous reconstruction; required (at the exact frame
/// length) when the bitmap skips any strip or the codec is delta-based.
/// Returns `None` on any corruption — truncated body, trailing garbage,
/// bad bitmap padding, or a strip that decodes to the wrong length.
pub fn decode_frame(data: &[u8], prev_view: Option<&[u8]>) -> Option<Vec<u8>> {
    let (codec, frame_len, n, bitmap) = parse_header(data)?;
    let pixels = frame_len / 3;
    let prev_view = usable_prev(prev_view, frame_len);
    let mut offset = HEADER + n.div_ceil(8);

    // Walk the body serially to slice out each dirty payload, then decode
    // the strips in parallel.
    let mut strips: Vec<(usize, Option<&[u8]>)> = Vec::with_capacity(n);
    for i in 0..n {
        if bitmap[i / 8] & (1 << (i % 8)) == 0 {
            strips.push((i, None));
            continue;
        }
        let len = u32::from_le_bytes(data.get(offset..offset + 4)?.try_into().ok()?) as usize;
        offset += 4;
        let payload = data.get(offset..offset + len)?;
        offset += len;
        strips.push((i, Some(payload)));
    }
    if offset != data.len() {
        return None; // trailing garbage
    }

    let decoded: Vec<Option<Vec<u8>>> = strips
        .into_par_iter()
        .map(|(i, payload)| {
            let r = strip_range(pixels, n, i);
            let want = r.len();
            match payload {
                None => prev_view.map(|p| p[r].to_vec()),
                Some(pl) => codec.decode(pl, prev_view.map(|p| &p[r])).filter(|s| s.len() == want),
            }
        })
        .collect();

    let mut out = Vec::with_capacity(frame_len);
    for s in decoded {
        out.extend_from_slice(&s?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n_px: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n_px * 3)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                if i % 5 < 3 {
                    40
                } else {
                    (state >> 32) as u8
                }
            })
            .collect()
    }

    #[test]
    fn roundtrips_every_codec_and_strip_count() {
        let cur = frame(700, 3);
        let prev = frame(700, 9);
        for codec in Codec::ALL {
            for strips in [0u16, 1, 3, 8, 700, 10_000] {
                let enc = encode_frame(codec, &cur, Some(&prev), Some(&prev), strips);
                let dec = decode_frame(&enc, Some(&prev)).unwrap();
                if codec.is_lossy() {
                    assert_eq!(dec.len(), cur.len());
                } else {
                    assert_eq!(dec, cur, "{} x{strips}", codec.name());
                }
            }
        }
    }

    #[test]
    fn static_frame_ships_header_only() {
        let cur = frame(40_000, 5); // a 200x200 frame
        let (enc, meta) = encode_frame_with_meta(Codec::Rle, &cur, Some(&cur), Some(&cur), 8);
        assert_eq!(meta.skipped, meta.strips);
        assert!(enc.len() <= HEADER + 1, "static frame bytes: {}", enc.len());
        assert_eq!(decode_frame(&enc, Some(&cur)).unwrap(), cur);
    }

    #[test]
    fn partial_change_ships_only_dirty_strips() {
        let prev = frame(40_000, 5);
        let mut cur = prev.clone();
        // Touch one pixel near the start: exactly one of 8 strips dirty.
        cur[10] ^= 0xFF;
        let (enc, meta) = encode_frame_with_meta(Codec::Rle, &cur, Some(&prev), Some(&prev), 8);
        assert_eq!(meta.strips, 8);
        assert_eq!(meta.skipped, 7);
        assert!(enc.len() < prev.len() / 6, "one dirty strip: {}", enc.len());
        assert_eq!(decode_frame(&enc, Some(&prev)).unwrap(), cur);
        assert_eq!(inspect(&enc).unwrap(), meta);
    }

    #[test]
    fn clean_strips_require_prev_on_decode() {
        let cur = frame(600, 5);
        let enc = encode_frame(Codec::Rle, &cur, Some(&cur), Some(&cur), 4);
        assert!(decode_frame(&enc, None).is_none());
        assert!(decode_frame(&enc, Some(&cur[..30])).is_none(), "wrong prev length");
    }

    #[test]
    fn size_change_falls_back_to_all_dirty_keyframe() {
        let prev = frame(200, 5);
        let cur = frame(300, 5); // viewport resized: prev lengths no longer apply
        let (enc, meta) =
            encode_frame_with_meta(Codec::DeltaRle, &cur, Some(&prev), Some(&prev), 4);
        assert_eq!(meta.skipped, 0);
        // Delta strips degrade to keyframes (no usable base), so decode
        // needs no prev at all.
        assert_eq!(decode_frame(&enc, None).unwrap(), cur);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let (enc, meta) = encode_frame_with_meta(Codec::Rle, &[], None, None, 8);
        assert_eq!(meta.strips, 0);
        assert_eq!(decode_frame(&enc, None).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_containers_rejected_not_panicking() {
        let cur = frame(600, 5);
        let enc = encode_frame(Codec::DeltaRle, &cur, None, Some(&cur), 4);
        assert!(decode_frame(&[], None).is_none());
        assert!(decode_frame(&enc[..HEADER - 1], None).is_none(), "truncated header");
        assert!(decode_frame(&enc[..enc.len() - 3], Some(&cur)).is_none(), "truncated body");

        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(decode_frame(&trailing, Some(&cur)).is_none(), "trailing garbage");

        let mut bad_ver = enc.clone();
        bad_ver[0] = 9;
        assert!(decode_frame(&bad_ver, Some(&cur)).is_none());

        let mut bad_codec = enc.clone();
        bad_codec[1] = 200;
        assert!(decode_frame(&bad_codec, Some(&cur)).is_none());

        let mut bad_strips = enc.clone();
        bad_strips[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode_frame(&bad_strips, Some(&cur)).is_none(), "strips > pixels");

        let mut bad_pad = enc.clone();
        bad_pad[HEADER] |= 0xF0; // set padding bits past strip 3
        assert!(decode_frame(&bad_pad, Some(&cur)).is_none(), "bitmap padding set");
    }

    #[test]
    fn strip_count_for_targets_strip_bytes() {
        assert_eq!(strip_count_for(0, 16 << 10), 0);
        assert_eq!(strip_count_for(120_000, 16 << 10), 8); // 640x480x3 / 16 KiB
        assert_eq!(strip_count_for(30, 16 << 10), 1);
        assert_eq!(strip_count_for(30, 0), 10); // clamped to pixel count
    }

    #[test]
    fn container_is_thread_count_invariant() {
        let cur = frame(5_000, 11);
        let prev = frame(5_000, 12);
        let baseline = encode_frame(Codec::DeltaRle, &cur, Some(&prev), Some(&prev), 16);
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let enc =
                pool.install(|| encode_frame(Codec::DeltaRle, &cur, Some(&prev), Some(&prev), 16));
            assert_eq!(enc, baseline, "threads={threads}");
            let dec = pool.install(|| decode_frame(&enc, Some(&prev)).unwrap());
            assert_eq!(dec, cur, "threads={threads}");
        }
    }
}
