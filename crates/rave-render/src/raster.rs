//! Triangle rasterization: clip → project → scan-convert with z-buffer
//! and Gouraud shading.

use crate::framebuffer::{Framebuffer, Rgb};
use rave_math::{Mat4, Vec2, Vec3, Vec4, Viewport};

/// A vertex after the vertex stage: clip-space position plus the
/// attributes interpolated across the triangle.
#[derive(Debug, Clone, Copy)]
pub struct ClipVertex {
    pub clip: Vec4,
    /// Lit color at the vertex (Gouraud: lighting runs per vertex).
    pub color: Vec3,
}

impl ClipVertex {
    fn lerp(a: &ClipVertex, b: &ClipVertex, t: f32) -> ClipVertex {
        ClipVertex { clip: a.clip.lerp(b.clip, t), color: a.color.lerp(b.color, t) }
    }
}

/// Simple fixed-function lighting: one directional light + ambient,
/// mirroring the Java3D default scene setup.
#[derive(Debug, Clone, Copy)]
pub struct Lighting {
    /// Unit vector *towards* the light.
    pub light_dir: Vec3,
    pub ambient: f32,
}

impl Default for Lighting {
    fn default() -> Self {
        Self { light_dir: Vec3::new(0.4, 0.8, 0.45).normalized(), ambient: 0.25 }
    }
}

impl Lighting {
    /// Lambertian shade of `base` with world-space normal `n`. Two-sided
    /// (isosurfaces and open parametric shells have no consistent
    /// orientation guarantee).
    pub fn shade(&self, base: Vec3, n: Vec3) -> Vec3 {
        let diffuse = n.dot(self.light_dir).abs();
        base * (self.ambient + (1.0 - self.ambient) * diffuse)
    }
}

/// Per-draw statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    pub triangles_submitted: u64,
    pub triangles_clipped_away: u64,
    pub triangles_rasterized: u64,
    pub fragments_shaded: u64,
    pub fragments_written: u64,
}

impl RasterStats {
    pub fn accumulate(&mut self, o: &RasterStats) {
        self.triangles_submitted += o.triangles_submitted;
        self.triangles_clipped_away += o.triangles_clipped_away;
        self.triangles_rasterized += o.triangles_rasterized;
        self.fragments_shaded += o.fragments_shaded;
        self.fragments_written += o.fragments_written;
    }
}

/// Clip a polygon against the `w >= W_EPS` half-space (near-plane guard:
/// every vertex must have positive w before perspective divide).
const W_EPS: f32 = 1e-5;

fn clip_near(poly: &mut Vec<ClipVertex>, scratch: &mut Vec<ClipVertex>) {
    scratch.clear();
    let n = poly.len();
    for i in 0..n {
        let cur = poly[i];
        let next = poly[(i + 1) % n];
        let cin = cur.clip.w >= W_EPS;
        let nin = next.clip.w >= W_EPS;
        if cin {
            scratch.push(cur);
        }
        if cin != nin {
            let t = (W_EPS - cur.clip.w) / (next.clip.w - cur.clip.w);
            scratch.push(ClipVertex::lerp(&cur, &next, t));
        }
    }
    std::mem::swap(poly, scratch);
}

/// Rasterize one triangle (given in clip space) into `fb`, restricted to
/// the pixels of `tile` (which may be the whole framebuffer or a sub-tile
/// in its own smaller buffer — see `tile_origin`).
///
/// `tile_origin` maps viewport pixel coordinates to `fb` indices:
/// `fb[(x - origin.x, y - origin.y)]`. Passing the full viewport with
/// origin (0,0) renders normally; passing a sub-viewport with its own
/// origin renders *that tile* of the global image into a tile-sized
/// buffer with identical pixels — the property the framebuffer
/// distribution scheme depends on ("the framebuffer aligns exactly").
#[allow(clippy::too_many_arguments)]
pub fn rasterize_triangle(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    v0: ClipVertex,
    v1: ClipVertex,
    v2: ClipVertex,
    stats: &mut RasterStats,
) {
    stats.triangles_submitted += 1;

    // Near clip (produces a fan of 0..=2 extra triangles).
    let mut poly = vec![v0, v1, v2];
    let mut scratch = Vec::with_capacity(4);
    clip_near(&mut poly, &mut scratch);
    if poly.len() < 3 {
        stats.triangles_clipped_away += 1;
        return;
    }

    // Project every polygon vertex once.
    let projected: Vec<(Vec3, Vec3)> = poly
        .iter()
        .map(|v| {
            let ndc = v.clip.perspective_divide();
            (full_viewport.ndc_to_pixel(ndc), v.color)
        })
        .collect();

    for k in 1..projected.len() - 1 {
        raster_screen_tri(fb, tile, projected[0], projected[k], projected[k + 1], stats);
    }
}

fn raster_screen_tri(
    fb: &mut Framebuffer,
    tile: &Viewport,
    (p0, c0): (Vec3, Vec3),
    (p1, c1): (Vec3, Vec3),
    (p2, c2): (Vec3, Vec3),
    stats: &mut RasterStats,
) {
    let a = Vec2::new(p0.x, p0.y);
    let b = Vec2::new(p1.x, p1.y);
    let c = Vec2::new(p2.x, p2.y);
    let area = (b - a).cross(c - a);
    if area.abs() < 1e-9 {
        stats.triangles_clipped_away += 1;
        return; // degenerate in screen space
    }
    let inv_area = 1.0 / area;

    // Bounding box intersected with the tile.
    let min_x = a.x.min(b.x).min(c.x).floor().max(tile.x as f32) as i64;
    let max_x = (a.x.max(b.x).max(c.x).ceil() as i64).min((tile.x + tile.width) as i64 - 1);
    let min_y = a.y.min(b.y).min(c.y).floor().max(tile.y as f32) as i64;
    let max_y = (a.y.max(b.y).max(c.y).ceil() as i64).min((tile.y + tile.height) as i64 - 1);
    if min_x > max_x || min_y > max_y {
        stats.triangles_clipped_away += 1;
        return;
    }
    stats.triangles_rasterized += 1;

    for py in min_y..=max_y {
        for px in min_x..=max_x {
            // Sample at the pixel center.
            let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
            let w0 = (b - p).cross(c - p) * inv_area;
            let w1 = (c - p).cross(a - p) * inv_area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            stats.fragments_shaded += 1;
            let z = w0 * p0.z + w1 * p1.z + w2 * p2.z;
            if !(-1.0..=1.0).contains(&z) {
                continue; // beyond near/far in NDC
            }
            let col = c0 * w0 + c1 * w1 + c2 * w2;
            let x_local = (px as u32) - tile.x;
            let y_local = (py as u32) - tile.y;
            if fb.set_if_closer(x_local, y_local, Rgb::from_f32(col.x, col.y, col.z), z) {
                stats.fragments_written += 1;
            }
        }
    }
}

/// Run the vertex stage for an indexed mesh and rasterize every triangle.
///
/// - `model`: local→world matrix of the node
/// - `view_proj`: world→clip
/// - `base_color`: used when the mesh has no vertex colors
#[allow(clippy::too_many_arguments)]
pub fn draw_mesh(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    mesh: &rave_scene::MeshData,
    model: &Mat4,
    view_proj: &Mat4,
    lighting: &Lighting,
    base_color: Vec3,
    stats: &mut RasterStats,
) {
    let mvp = *view_proj * *model;
    // Normal matrix: for rigid + uniform-scale transforms the upper-left of
    // `model` works directly (non-uniform scale would need the inverse
    // transpose; scene content here is rigid).
    let vertex = |i: u32| -> ClipVertex {
        let i = i as usize;
        let pos = mesh.positions[i];
        let normal = if mesh.normals.is_empty() {
            Vec3::Z
        } else {
            model.transform_dir(mesh.normals[i]).normalized()
        };
        let base = if mesh.colors.is_empty() { base_color } else { mesh.colors[i] };
        ClipVertex { clip: mvp.mul_vec4(pos.extend(1.0)), color: lighting.shade(base, normal) }
    };
    for t in &mesh.triangles {
        rasterize_triangle(
            fb,
            full_viewport,
            tile,
            vertex(t[0]),
            vertex(t[1]),
            vertex(t[2]),
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{CameraParams, MeshData};

    fn fullscreen_tri(fb_size: u32) -> (Framebuffer, Viewport, CameraParams, MeshData) {
        let fb = Framebuffer::new(fb_size, fb_size);
        let vp = Viewport::new(fb_size, fb_size);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        let mesh = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, -2.0, 0.0), Vec3::new(0.0, 2.5, 0.0)],
            vec![[0, 1, 2]],
        );
        (fb, vp, cam, mesh)
    }

    fn draw(
        fb: &mut Framebuffer,
        vp: &Viewport,
        tile: &Viewport,
        cam: &CameraParams,
        mesh: &MeshData,
        color: Vec3,
    ) -> RasterStats {
        let mut stats = RasterStats::default();
        draw_mesh(
            fb,
            vp,
            tile,
            mesh,
            &Mat4::IDENTITY,
            &cam.view_proj(vp),
            &Lighting::default(),
            color,
            &mut stats,
        );
        stats
    }

    #[test]
    fn triangle_covers_center() {
        let (mut fb, vp, cam, mesh) = fullscreen_tri(64);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert!(stats.fragments_written > 200);
        let center = fb.get(32, 32);
        assert!(center.0 > 0, "center pixel shaded red: {center:?}");
        assert!(fb.depth_at(32, 32) < 1.0);
    }

    #[test]
    fn triangle_behind_camera_clipped() {
        let (mut fb, vp, _, mesh) = fullscreen_tri(32);
        let cam =
            CameraParams::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::new(0.0, 0.0, -9.0), Vec3::Y);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert_eq!(stats.fragments_written, 0);
        assert_eq!(fb.coverage(Rgb::BLACK), 0);
    }

    #[test]
    fn triangle_straddling_near_plane_partially_drawn() {
        let mut fb = Framebuffer::new(48, 48);
        let vp = Viewport::new(48, 48);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO, Vec3::Y);
        // One vertex far behind the camera, two in front.
        let mesh = MeshData::new(
            vec![
                Vec3::new(-1.0, -0.5, 0.0),
                Vec3::new(1.0, -0.5, 0.0),
                Vec3::new(0.0, 0.0, 5.0), // behind the eye
            ],
            vec![[0, 1, 2]],
        );
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::Y);
        assert!(stats.fragments_written > 0, "clipped triangle still visible");
    }

    #[test]
    fn depth_buffer_orders_triangles() {
        let mut fb = Framebuffer::new(32, 32);
        let vp = Viewport::new(32, 32);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let far_tri = MeshData::new(
            vec![
                Vec3::new(-2.0, -2.0, -1.0),
                Vec3::new(2.0, -2.0, -1.0),
                Vec3::new(0.0, 2.0, -1.0),
            ],
            vec![[0, 1, 2]],
        );
        let near_tri = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 1.0), Vec3::new(2.0, -2.0, 1.0), Vec3::new(0.0, 2.0, 1.0)],
            vec![[0, 1, 2]],
        );
        // Draw near first, then far: far must NOT overwrite.
        draw(&mut fb, &vp, &vp.clone(), &cam, &near_tri, Vec3::X);
        let red = fb.get(16, 16);
        draw(&mut fb, &vp, &vp.clone(), &cam, &far_tri, Vec3::Y);
        assert_eq!(fb.get(16, 16), red, "near triangle survives");
    }

    #[test]
    fn tiles_reproduce_full_image_exactly() {
        // THE tiling invariant: rendering each tile separately and
        // stitching equals rendering the whole image at once.
        let (mut full, vp, cam, mesh) = fullscreen_tri(64);
        draw(&mut full, &vp, &vp.clone(), &cam, &mesh, Vec3::X);

        let mut stitched = Framebuffer::new(64, 64);
        for tile in vp.split_tiles(2, 2) {
            let mut tile_fb = Framebuffer::new(tile.width, tile.height);
            draw(&mut tile_fb, &vp, &tile, &cam, &mesh, Vec3::X);
            stitched.blit(&tile_fb, tile.x, tile.y);
        }
        assert_eq!(full.diff_fraction(&stitched, 0.0), 0.0, "bit-exact tiling");
    }

    #[test]
    fn gouraud_vertex_colors_interpolate() {
        let mut fb = Framebuffer::new(33, 33);
        let vp = Viewport::new(33, 33);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        let mut mesh = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, -2.0, 0.0), Vec3::new(0.0, 2.5, 0.0)],
            vec![[0, 1, 2]],
        );
        mesh.colors = vec![Vec3::X, Vec3::Y, Vec3::Z];
        mesh.normals = vec![Vec3::Z; 3];
        draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::ONE);
        // Bottom-left leans red, bottom-right leans green.
        let bl = fb.get(8, 28);
        let br = fb.get(24, 28);
        assert!(bl.0 > bl.1, "left is redder: {bl:?}");
        assert!(br.1 > br.0, "right is greener: {br:?}");
    }

    #[test]
    fn lighting_modulates_by_normal() {
        let l = Lighting { light_dir: Vec3::Y, ambient: 0.2 };
        let lit = l.shade(Vec3::ONE, Vec3::Y);
        let grazing = l.shade(Vec3::ONE, Vec3::X);
        assert!(lit.x > grazing.x);
        assert!((grazing.x - 0.2).abs() < 1e-6, "ambient floor");
        // Two-sided: flipped normal shades the same.
        assert_eq!(l.shade(Vec3::ONE, -Vec3::Y), lit);
    }

    #[test]
    fn stats_count_consistently() {
        let (mut fb, vp, cam, mesh) = fullscreen_tri(64);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert_eq!(stats.triangles_submitted, 1);
        assert_eq!(stats.triangles_rasterized, 1);
        assert!(stats.fragments_shaded >= stats.fragments_written);
    }
}
