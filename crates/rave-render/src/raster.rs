//! Triangle rasterization: clip → project → scan-convert with z-buffer
//! and Gouraud shading.
//!
//! Two call paths share one pixel loop:
//!
//! - the **immediate-mode reference** ([`rasterize_triangle`],
//!   [`draw_mesh`]) — simple per-triangle code, the baseline every
//!   optimization is verified against;
//! - the **binned pipeline** ([`setup_screen_tri`] at bin time,
//!   [`raster_tri_rows`] at replay time) used by
//!   [`crate::renderer::Renderer`] to rasterize disjoint row bands in
//!   parallel.
//!
//! Both evaluate the identical per-pixel expressions, so a banded replay
//! is bit-identical to a serial draw — the guarantee the parallel
//! renderer's property tests pin down.

use crate::framebuffer::{Framebuffer, FramebufferBand, Rgb};
use rave_math::{Mat4, Vec2, Vec3, Vec4, Viewport};

/// A vertex after the vertex stage: clip-space position plus the
/// attributes interpolated across the triangle.
#[derive(Debug, Clone, Copy)]
pub struct ClipVertex {
    pub clip: Vec4,
    /// Lit color at the vertex (Gouraud: lighting runs per vertex).
    pub color: Vec3,
}

impl ClipVertex {
    fn lerp(a: &ClipVertex, b: &ClipVertex, t: f32) -> ClipVertex {
        ClipVertex { clip: a.clip.lerp(b.clip, t), color: a.color.lerp(b.color, t) }
    }
}

/// Simple fixed-function lighting: one directional light + ambient,
/// mirroring the Java3D default scene setup.
#[derive(Debug, Clone, Copy)]
pub struct Lighting {
    /// Unit vector *towards* the light.
    pub light_dir: Vec3,
    pub ambient: f32,
}

impl Default for Lighting {
    fn default() -> Self {
        Self { light_dir: Vec3::new(0.4, 0.8, 0.45).normalized(), ambient: 0.25 }
    }
}

impl Lighting {
    /// Lambertian shade of `base` with world-space normal `n`. Two-sided
    /// (isosurfaces and open parametric shells have no consistent
    /// orientation guarantee).
    pub fn shade(&self, base: Vec3, n: Vec3) -> Vec3 {
        let diffuse = n.dot(self.light_dir).abs();
        base * (self.ambient + (1.0 - self.ambient) * diffuse)
    }
}

/// Per-draw statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    pub triangles_submitted: u64,
    pub triangles_clipped_away: u64,
    pub triangles_rasterized: u64,
    pub fragments_shaded: u64,
    pub fragments_written: u64,
}

impl RasterStats {
    pub fn accumulate(&mut self, o: &RasterStats) {
        self.triangles_submitted += o.triangles_submitted;
        self.triangles_clipped_away += o.triangles_clipped_away;
        self.triangles_rasterized += o.triangles_rasterized;
        self.fragments_shaded += o.fragments_shaded;
        self.fragments_written += o.fragments_written;
    }

    /// Merge two partial stats (rayon `reduce` shape).
    pub fn merged(mut self, o: RasterStats) -> RasterStats {
        self.accumulate(&o);
        self
    }

    /// Scalar work proxy for cost-feedback tile planning: roughly
    /// "pipeline operations charged", dominated by shaded fragments with
    /// a per-triangle setup term. Dimensionless — planners only compare
    /// ratios of it (units per second across services).
    pub fn cost_units(&self) -> u64 {
        self.fragments_shaded + 8 * self.triangles_submitted
    }
}

/// A triangle after clipping and projection, ready for binned
/// rasterization: screen-space vertices (pixel x/y + NDC z), Gouraud
/// colors, the signed-area inverse, and its pixel bounding box already
/// intersected with the target tile (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct ScreenTri {
    pub p0: Vec3,
    pub p1: Vec3,
    pub p2: Vec3,
    pub c0: Vec3,
    pub c1: Vec3,
    pub c2: Vec3,
    pub inv_area: f32,
    pub min_x: i64,
    pub max_x: i64,
    pub min_y: i64,
    pub max_y: i64,
}

/// `v.floor() as i64` for f32 without the `floorf` libcall: truncate,
/// then correct the negative direction. The saturating arithmetic keeps
/// huge and NaN inputs on the same results the libcall + saturating cast
/// would produce.
#[inline]
fn floor_f32_i64(v: f32) -> i64 {
    let t = v as i64;
    t.saturating_sub(((t as f32) > v) as i64)
}

/// `v.ceil() as i64` for f32, same construction as [`floor_f32_i64`].
#[inline]
fn ceil_f32_i64(v: f32) -> i64 {
    let t = v as i64;
    t.saturating_add(((t as f32) < v) as i64)
}

/// Screen-space setup shared by both call paths: degeneracy and bounding
/// box tests with the exact bookkeeping the reference path performs.
/// Returns `None` when nothing would be rasterized.
pub fn setup_screen_tri(
    tile: &Viewport,
    (p0, c0): (Vec3, Vec3),
    (p1, c1): (Vec3, Vec3),
    (p2, c2): (Vec3, Vec3),
    stats: &mut RasterStats,
) -> Option<ScreenTri> {
    let a = Vec2::new(p0.x, p0.y);
    let b = Vec2::new(p1.x, p1.y);
    let c = Vec2::new(p2.x, p2.y);
    let area = (b - a).cross(c - a);
    if area.abs() < 1e-9 {
        stats.triangles_clipped_away += 1;
        return None; // degenerate in screen space
    }
    let inv_area = 1.0 / area;

    // Bounding box intersected with the tile. floor/ceil go through the
    // truncate-and-correct helpers: this runs for every submitted
    // triangle, and baseline x86-64 would turn `f32::floor` into a
    // libcall.
    let min_x = floor_f32_i64(a.x.min(b.x).min(c.x)).max(tile.x as i64);
    let max_x = ceil_f32_i64(a.x.max(b.x).max(c.x)).min((tile.x + tile.width) as i64 - 1);
    let min_y = floor_f32_i64(a.y.min(b.y).min(c.y)).max(tile.y as i64);
    let max_y = ceil_f32_i64(a.y.max(b.y).max(c.y)).min((tile.y + tile.height) as i64 - 1);
    if min_x > max_x || min_y > max_y {
        stats.triangles_clipped_away += 1;
        return None;
    }
    stats.triangles_rasterized += 1;
    Some(ScreenTri { p0, p1, p2, c0, c1, c2, inv_area, min_x, max_x, min_y, max_y })
}

/// THE per-pixel kernel. Both engines funnel every shaded pixel through
/// this exact body, so any partition of a triangle's pixels — rows,
/// columns, bands — reproduces the serial result bit-for-bit, z-ties
/// included (each pixel is touched once per triangle, so visit order
/// within a triangle cannot matter).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn raster_pixel(
    band: &mut FramebufferBand<'_>,
    tile: &Viewport,
    tri: &ScreenTri,
    a: Vec2,
    b: Vec2,
    c: Vec2,
    px: i64,
    py: i64,
    stats: &mut RasterStats,
) {
    // Sample at the pixel center.
    let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
    let w0 = (b - p).cross(c - p) * tri.inv_area;
    let w1 = (c - p).cross(a - p) * tri.inv_area;
    let w2 = 1.0 - w0 - w1;
    if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
        return;
    }
    stats.fragments_shaded += 1;
    let z = w0 * tri.p0.z + w1 * tri.p1.z + w2 * tri.p2.z;
    if !(-1.0..=1.0).contains(&z) {
        return; // beyond near/far in NDC
    }
    let col = tri.c0 * w0 + tri.c1 * w1 + tri.c2 * w2;
    let x_local = (px as u32) - tile.x;
    let y_local = (py as u32) - tile.y;
    if band.set_if_closer(x_local, y_local, Rgb::from_f32(col.x, col.y, col.z), z) {
        stats.fragments_written += 1;
    }
}

/// Rasterize pixels `px_lo..=px_hi` of row `py` through the kernel.
#[inline]
fn raster_span(
    band: &mut FramebufferBand<'_>,
    tile: &Viewport,
    tri: &ScreenTri,
    py: i64,
    px_lo: i64,
    px_hi: i64,
    stats: &mut RasterStats,
) {
    let a = Vec2::new(tri.p0.x, tri.p0.y);
    let b = Vec2::new(tri.p1.x, tri.p1.y);
    let c = Vec2::new(tri.p2.x, tri.p2.y);
    for px in px_lo..=px_hi {
        raster_pixel(band, tile, tri, a, b, c, px, py, stats);
    }
}

/// Rasterize pixels `py_lo..=py_hi` of column `px` through the kernel.
#[inline]
fn raster_col(
    band: &mut FramebufferBand<'_>,
    tile: &Viewport,
    tri: &ScreenTri,
    px: i64,
    py_lo: i64,
    py_hi: i64,
    stats: &mut RasterStats,
) {
    let a = Vec2::new(tri.p0.x, tri.p0.y);
    let b = Vec2::new(tri.p1.x, tri.p1.y);
    let c = Vec2::new(tri.p2.x, tri.p2.y);
    for py in py_lo..=py_hi {
        raster_pixel(band, tile, tri, a, b, c, px, py, stats);
    }
}

/// `floor(v) as i64` without `f64::floor` (a libcall on baseline
/// x86-64): truncate, then correct the negative direction. Saturates at
/// the i64 range like any float→int cast.
#[inline]
fn floor_i64(v: f64) -> i64 {
    let t = v as i64;
    t - ((t as f64) > v) as i64
}

/// Walk `outer_lo..=outer_hi` along one screen axis, solving per step the
/// conservative pixel interval on the *other* axis that could pass the
/// kernel's inside test, and emit `(outer, solved_lo, solved_hi)` for
/// each non-empty interval.
///
/// Each barycentric the kernel computes is (in exact arithmetic) an
/// affine function of the pixel center, `w(x, y) = sx·x + sy·y + c`.
/// `e[k] = [s_solved, s_outer, c]` gives those coefficients with the
/// solved axis first; `w >= 0` then bounds the solved coordinate from
/// below (positive `s_solved`) or above (negative), while slope-free
/// constraints collapse to an interval on the outer axis, resolved once
/// up front. Margins must dominate both the f32 kernel's worst-case
/// rounding and this solver's own f64 rounding, so the interval can only
/// over-cover — every pixel the kernel would accept is inside it.
///
/// Per step this is six multiply-adds, a max/min tree over fixed slots
/// (unused slots hold ∓∞ and never win), and two integer conversions —
/// cheap enough to pay off even on bounding boxes a few pixels across.
/// All comparisons are written so NaN/±inf coefficients (degenerate
/// projections) fail *open*: the solver falls back to the full interval
/// and the kernel decides, which can only cost time, never pixels.
#[inline(always)]
fn walk_spans<F: FnMut(i64, i64, i64)>(
    e: &[[f64; 3]; 3],
    margins: &[f64; 3],
    mut outer_lo: i64,
    mut outer_hi: i64,
    solved_min: i64,
    solved_max: i64,
    mut emit: F,
) {
    let mut la = [0.0f64; 3];
    let mut lb = [f64::NEG_INFINITY; 3];
    let mut ha = [0.0f64; 3];
    let mut hb = [f64::INFINITY; 3];
    for k in 0..3 {
        let [sv, su, c] = e[k];
        let m = margins[k];
        if sv == 0.0 || !sv.is_finite() {
            // Cold path (axis-aligned or degenerate edge). With no
            // solved-axis slope the constraint is an interval on the
            // outer axis, resolved here once (floor_i64 keeps it
            // conservative by up to one step). NaN/±inf slopes drop the
            // constraint entirely — fail open.
            if sv == 0.0 {
                let t = (-m - c) / su;
                if su > 0.0 && t.is_finite() {
                    outer_lo = outer_lo.max(floor_i64(t - 0.5));
                } else if su < 0.0 && t.is_finite() {
                    outer_hi = outer_hi.min(floor_i64(t - 0.5) + 1);
                } else if su == 0.0 && c < -m {
                    return; // constant and provably negative everywhere
                }
            }
            continue;
        }
        // Bound on the solved *pixel index* (center − ½), affine in the
        // outer center coordinate: slope in `la/ha`, constant in `lb/hb`.
        // Branch-free slot fill: edge orientations are effectively
        // random, so a data-dependent branch here mispredicts half the
        // time; selects keep unused slots at their ∓∞ neutral values.
        let inv = 1.0 / sv;
        let slope = -su * inv;
        let bound = (-m - c) * inv - 0.5;
        let is_lo = sv > 0.0;
        la[k] = if is_lo { slope } else { 0.0 };
        lb[k] = if is_lo { bound } else { f64::NEG_INFINITY };
        ha[k] = if is_lo { 0.0 } else { slope };
        hb[k] = if is_lo { f64::INFINITY } else { bound };
    }
    if outer_lo > outer_hi {
        return;
    }
    let smin = solved_min as f64;
    let smax = solved_max as f64;
    // Exact center coordinates: integer + ½ accumulates exactly in f64.
    let mut uc = outer_lo as f64 + 0.5;
    for u in outer_lo..=outer_hi {
        // NaN bounds lose every max/min below, so lo/hi stay finite.
        let lo = (la[0] * uc + lb[0]).max(la[1] * uc + lb[1]).max(la[2] * uc + lb[2]).max(smin);
        let hi = (ha[0] * uc + hb[0]).min(ha[1] * uc + hb[1]).min(ha[2] * uc + hb[2]).min(smax);
        // ±1e-5 px of slack covers the conversion arithmetic itself;
        // casts saturate, so ±inf bounds collapse to an empty interval.
        let l = lo - 1e-5;
        let t = l as i64;
        let v_lo = t + ((t as f64) < l) as i64; // ceil(l); l > -1 via smin
        let v_hi = (hi + 1e-5) as i64; // floor for hi >= 0; else empty
        if v_lo <= v_hi {
            emit(u, v_lo, v_hi);
        }
        uc += 1.0;
    }
}

/// Rasterize the rows of `tri` that fall inside `band` (a view over the
/// tile-sized framebuffer for `tile`) — the binned engine's inner loop.
/// Rows are restricted to the band; within them, [`walk_spans`] visits
/// only the conservative span of each row or column (whichever axis of
/// the bounding box is shorter becomes the walk axis, which matters for
/// the tall sliver triangles tessellated models decompose into). Every
/// visited pixel runs the shared exact kernel, so the output (pixels,
/// depth bits, and fragment counters) matches the reference's full
/// bounding-box scan bit-for-bit.
pub fn raster_tri_rows(
    band: &mut FramebufferBand<'_>,
    tile: &Viewport,
    tri: &ScreenTri,
    stats: &mut RasterStats,
) {
    let y_lo = tri.min_y.max(tile.y as i64 + band.y_start() as i64);
    let y_hi = tri.max_y.min(tile.y as i64 + band.y_end() as i64 - 1);
    if y_lo > y_hi {
        return;
    }
    // Tiny bounding boxes can't amortize the span solver's setup; the
    // kernel over the whole box is cheaper. (Identical output either
    // way — the solver only skips pixels the kernel would reject.)
    if (tri.max_x - tri.min_x + 1) * (y_hi - y_lo + 1) <= 16 {
        for py in y_lo..=y_hi {
            raster_span(band, tile, tri, py, tri.min_x, tri.max_x, stats);
        }
        return;
    }
    let (ax, ay) = (tri.p0.x as f64, tri.p0.y as f64);
    let (bx, by) = (tri.p1.x as f64, tri.p1.y as f64);
    let (cx, cy) = (tri.p2.x as f64, tri.p2.y as f64);
    let ia = tri.inv_area as f64;
    // w0's edge spans (b, c), w1's spans (c, a); w2 = 1 - w0 - w1.
    let e0 = [(by - cy) * ia, (cx - bx) * ia, (bx * cy - by * cx) * ia];
    let e1 = [(cy - ay) * ia, (ax - cx) * ia, (cx * ay - cy * ax) * ia];
    let e2 = [-(e0[0] + e1[0]), -(e0[1] + e1[1]), 1.0 - (e0[2] + e1[2])];
    // Worst-case |f32 kernel − f64 line|: the kernel's differences and
    // products involve magnitudes up to `m`, so the raw edge value
    // carries ~24·m²·ε of rounding; ×|inv_area| maps it into barycentric
    // units. The f64 solver rounds with the same m²·|inv_area| scale but
    // at f64's ε, 10⁹× smaller, so one margin dominates both. The factor
    // 32 and the additive floor are headroom.
    let m = ax
        .abs()
        .max(ay.abs())
        .max(bx.abs())
        .max(by.abs())
        .max(cx.abs())
        .max(cy.abs())
        .max(tri.max_x as f64 + 1.0)
        .max(tri.max_y as f64 + 1.0)
        .max(1.0);
    let mw = 32.0 * m * m * (f32::EPSILON as f64) * ia.abs() + 1e-6;
    let margins = [mw, mw, 2.0 * mw + 1e-6];
    if tri.max_x - tri.min_x < y_hi - y_lo {
        // Tall bounding box: walk the (fewer) columns, solve y per column.
        let es = [[e0[1], e0[0], e0[2]], [e1[1], e1[0], e1[2]], [e2[1], e2[0], e2[2]]];
        walk_spans(&es, &margins, tri.min_x, tri.max_x, y_lo, y_hi, |px, lo, hi| {
            raster_col(band, tile, tri, px, lo, hi, stats);
        });
    } else {
        walk_spans(&[e0, e1, e2], &margins, y_lo, y_hi, tri.min_x, tri.max_x, |py, lo, hi| {
            raster_span(band, tile, tri, py, lo, hi, stats);
        });
    }
}

/// Clip a polygon against the `w >= W_EPS` half-space (near-plane guard:
/// every vertex must have positive w before perspective divide). The
/// binned engine's vertex cache also keys its "safe to pre-project" test
/// on this.
pub(crate) const W_EPS: f32 = 1e-5;

fn clip_near(poly: &mut Vec<ClipVertex>, scratch: &mut Vec<ClipVertex>) {
    scratch.clear();
    let n = poly.len();
    for i in 0..n {
        let cur = poly[i];
        let next = poly[(i + 1) % n];
        let cin = cur.clip.w >= W_EPS;
        let nin = next.clip.w >= W_EPS;
        if cin {
            scratch.push(cur);
        }
        if cin != nin {
            let t = (W_EPS - cur.clip.w) / (next.clip.w - cur.clip.w);
            scratch.push(ClipVertex::lerp(&cur, &next, t));
        }
    }
    std::mem::swap(poly, scratch);
}

/// Near-clip one triangle without heap allocation: a triangle clipped
/// against a single plane yields at most 4 vertices. Runs the identical
/// Sutherland–Hodgman sweep as [`clip_near`] (same visit order, same
/// `lerp` expression), so the emitted polygon is bit-identical — just on
/// the stack.
fn clip_near_fixed(tri: [ClipVertex; 3]) -> ([ClipVertex; 4], usize) {
    let mut out = [tri[0]; 4];
    let mut m = 0usize;
    for i in 0..3 {
        let cur = tri[i];
        let next = tri[(i + 1) % 3];
        let cin = cur.clip.w >= W_EPS;
        let nin = next.clip.w >= W_EPS;
        if cin {
            out[m] = cur;
            m += 1;
        }
        if cin != nin {
            let t = (W_EPS - cur.clip.w) / (next.clip.w - cur.clip.w);
            out[m] = ClipVertex::lerp(&cur, &next, t);
            m += 1;
        }
    }
    (out, m)
}

/// Clip, project, and set up one clip-space triangle for the binned
/// pipeline, emitting 0–2 [`ScreenTri`]s through `sink`. Bookkeeping and
/// float expressions match [`rasterize_triangle`] exactly; the only
/// differences are performance-neutral-to-output: no heap allocation
/// (stack clip) and a no-clip fast path for fully-visible triangles
/// (which `clip_near` passes through unchanged anyway).
pub fn bin_triangle(
    full_viewport: &Viewport,
    tile: &Viewport,
    v0: ClipVertex,
    v1: ClipVertex,
    v2: ClipVertex,
    stats: &mut RasterStats,
    sink: &mut impl FnMut(ScreenTri),
) {
    stats.triangles_submitted += 1;
    let project =
        |v: &ClipVertex| (full_viewport.ndc_to_pixel(v.clip.perspective_divide()), v.color);

    if v0.clip.w >= W_EPS && v1.clip.w >= W_EPS && v2.clip.w >= W_EPS {
        // Fully in front of the near guard: the clip sweep would emit the
        // triangle unchanged.
        if let Some(tri) = setup_screen_tri(tile, project(&v0), project(&v1), project(&v2), stats) {
            sink(tri);
        }
        return;
    }

    let (poly, m) = clip_near_fixed([v0, v1, v2]);
    if m < 3 {
        stats.triangles_clipped_away += 1;
        return;
    }
    // Project every polygon vertex once, then fan.
    let mut projected = [(Vec3::ZERO, Vec3::ZERO); 4];
    for (dst, src) in projected[..m].iter_mut().zip(&poly[..m]) {
        *dst = project(src);
    }
    for k in 1..m - 1 {
        if let Some(tri) =
            setup_screen_tri(tile, projected[0], projected[k], projected[k + 1], stats)
        {
            sink(tri);
        }
    }
}

/// Rasterize one triangle (given in clip space) into `fb`, restricted to
/// the pixels of `tile` (which may be the whole framebuffer or a sub-tile
/// in its own smaller buffer — see `tile_origin`).
///
/// `tile_origin` maps viewport pixel coordinates to `fb` indices:
/// `fb[(x - origin.x, y - origin.y)]`. Passing the full viewport with
/// origin (0,0) renders normally; passing a sub-viewport with its own
/// origin renders *that tile* of the global image into a tile-sized
/// buffer with identical pixels — the property the framebuffer
/// distribution scheme depends on ("the framebuffer aligns exactly").
#[allow(clippy::too_many_arguments)]
pub fn rasterize_triangle(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    v0: ClipVertex,
    v1: ClipVertex,
    v2: ClipVertex,
    stats: &mut RasterStats,
) {
    stats.triangles_submitted += 1;

    // Near clip (produces a fan of 0..=2 extra triangles).
    let mut poly = vec![v0, v1, v2];
    let mut scratch = Vec::with_capacity(4);
    clip_near(&mut poly, &mut scratch);
    if poly.len() < 3 {
        stats.triangles_clipped_away += 1;
        return;
    }

    // Project every polygon vertex once.
    let projected: Vec<(Vec3, Vec3)> = poly
        .iter()
        .map(|v| {
            let ndc = v.clip.perspective_divide();
            (full_viewport.ndc_to_pixel(ndc), v.color)
        })
        .collect();

    for k in 1..projected.len() - 1 {
        raster_screen_tri(fb, tile, projected[0], projected[k], projected[k + 1], stats);
    }
}

fn raster_screen_tri(
    fb: &mut Framebuffer,
    tile: &Viewport,
    v0: (Vec3, Vec3),
    v1: (Vec3, Vec3),
    v2: (Vec3, Vec3),
    stats: &mut RasterStats,
) {
    // The original algorithm, preserved as the baseline: scan the whole
    // bounding box and let the kernel's inside test reject. The binned
    // engine's span-skipping path must match this bit-for-bit.
    if let Some(tri) = setup_screen_tri(tile, v0, v1, v2, stats) {
        let mut band = fb.as_band();
        for py in tri.min_y..=tri.max_y {
            raster_span(&mut band, tile, &tri, py, tri.min_x, tri.max_x, stats);
        }
    }
}

/// Run the vertex stage for an indexed mesh and rasterize every triangle.
///
/// - `model`: local→world matrix of the node
/// - `view_proj`: world→clip
/// - `base_color`: used when the mesh has no vertex colors
#[allow(clippy::too_many_arguments)]
pub fn draw_mesh(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    mesh: &rave_scene::MeshData,
    model: &Mat4,
    view_proj: &Mat4,
    lighting: &Lighting,
    base_color: Vec3,
    stats: &mut RasterStats,
) {
    let mvp = *view_proj * *model;
    // Normal matrix: for rigid + uniform-scale transforms the upper-left of
    // `model` works directly (non-uniform scale would need the inverse
    // transpose; scene content here is rigid).
    let vertex = |i: u32| -> ClipVertex {
        let i = i as usize;
        let pos = mesh.positions[i];
        let normal = if mesh.normals.is_empty() {
            Vec3::Z
        } else {
            model.transform_dir(mesh.normals[i]).normalized()
        };
        let base = if mesh.colors.is_empty() { base_color } else { mesh.colors[i] };
        ClipVertex { clip: mvp.mul_vec4(pos.extend(1.0)), color: lighting.shade(base, normal) }
    };
    for t in &mesh.triangles {
        rasterize_triangle(
            fb,
            full_viewport,
            tile,
            vertex(t[0]),
            vertex(t[1]),
            vertex(t[2]),
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{CameraParams, MeshData};

    fn fullscreen_tri(fb_size: u32) -> (Framebuffer, Viewport, CameraParams, MeshData) {
        let fb = Framebuffer::new(fb_size, fb_size);
        let vp = Viewport::new(fb_size, fb_size);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        let mesh = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, -2.0, 0.0), Vec3::new(0.0, 2.5, 0.0)],
            vec![[0, 1, 2]],
        );
        (fb, vp, cam, mesh)
    }

    fn draw(
        fb: &mut Framebuffer,
        vp: &Viewport,
        tile: &Viewport,
        cam: &CameraParams,
        mesh: &MeshData,
        color: Vec3,
    ) -> RasterStats {
        let mut stats = RasterStats::default();
        draw_mesh(
            fb,
            vp,
            tile,
            mesh,
            &Mat4::IDENTITY,
            &cam.view_proj(vp),
            &Lighting::default(),
            color,
            &mut stats,
        );
        stats
    }

    #[test]
    fn triangle_covers_center() {
        let (mut fb, vp, cam, mesh) = fullscreen_tri(64);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert!(stats.fragments_written > 200);
        let center = fb.get(32, 32);
        assert!(center.0 > 0, "center pixel shaded red: {center:?}");
        assert!(fb.depth_at(32, 32) < 1.0);
    }

    #[test]
    fn triangle_behind_camera_clipped() {
        let (mut fb, vp, _, mesh) = fullscreen_tri(32);
        let cam =
            CameraParams::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::new(0.0, 0.0, -9.0), Vec3::Y);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert_eq!(stats.fragments_written, 0);
        assert_eq!(fb.coverage(Rgb::BLACK), 0);
    }

    #[test]
    fn triangle_straddling_near_plane_partially_drawn() {
        let mut fb = Framebuffer::new(48, 48);
        let vp = Viewport::new(48, 48);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO, Vec3::Y);
        // One vertex far behind the camera, two in front.
        let mesh = MeshData::new(
            vec![
                Vec3::new(-1.0, -0.5, 0.0),
                Vec3::new(1.0, -0.5, 0.0),
                Vec3::new(0.0, 0.0, 5.0), // behind the eye
            ],
            vec![[0, 1, 2]],
        );
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::Y);
        assert!(stats.fragments_written > 0, "clipped triangle still visible");
    }

    #[test]
    fn depth_buffer_orders_triangles() {
        let mut fb = Framebuffer::new(32, 32);
        let vp = Viewport::new(32, 32);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        let far_tri = MeshData::new(
            vec![
                Vec3::new(-2.0, -2.0, -1.0),
                Vec3::new(2.0, -2.0, -1.0),
                Vec3::new(0.0, 2.0, -1.0),
            ],
            vec![[0, 1, 2]],
        );
        let near_tri = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 1.0), Vec3::new(2.0, -2.0, 1.0), Vec3::new(0.0, 2.0, 1.0)],
            vec![[0, 1, 2]],
        );
        // Draw near first, then far: far must NOT overwrite.
        draw(&mut fb, &vp, &vp.clone(), &cam, &near_tri, Vec3::X);
        let red = fb.get(16, 16);
        draw(&mut fb, &vp, &vp.clone(), &cam, &far_tri, Vec3::Y);
        assert_eq!(fb.get(16, 16), red, "near triangle survives");
    }

    #[test]
    fn tiles_reproduce_full_image_exactly() {
        // THE tiling invariant: rendering each tile separately and
        // stitching equals rendering the whole image at once.
        let (mut full, vp, cam, mesh) = fullscreen_tri(64);
        draw(&mut full, &vp, &vp.clone(), &cam, &mesh, Vec3::X);

        let mut stitched = Framebuffer::new(64, 64);
        for tile in vp.split_tiles(2, 2) {
            let mut tile_fb = Framebuffer::new(tile.width, tile.height);
            draw(&mut tile_fb, &vp, &tile, &cam, &mesh, Vec3::X);
            stitched.blit(&tile_fb, tile.x, tile.y);
        }
        assert_eq!(full.diff_fraction(&stitched, 0.0), 0.0, "bit-exact tiling");
    }

    #[test]
    fn gouraud_vertex_colors_interpolate() {
        let mut fb = Framebuffer::new(33, 33);
        let vp = Viewport::new(33, 33);
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        let mut mesh = MeshData::new(
            vec![Vec3::new(-2.0, -2.0, 0.0), Vec3::new(2.0, -2.0, 0.0), Vec3::new(0.0, 2.5, 0.0)],
            vec![[0, 1, 2]],
        );
        mesh.colors = vec![Vec3::X, Vec3::Y, Vec3::Z];
        mesh.normals = vec![Vec3::Z; 3];
        draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::ONE);
        // Bottom-left leans red, bottom-right leans green.
        let bl = fb.get(8, 28);
        let br = fb.get(24, 28);
        assert!(bl.0 > bl.1, "left is redder: {bl:?}");
        assert!(br.1 > br.0, "right is greener: {br:?}");
    }

    #[test]
    fn lighting_modulates_by_normal() {
        let l = Lighting { light_dir: Vec3::Y, ambient: 0.2 };
        let lit = l.shade(Vec3::ONE, Vec3::Y);
        let grazing = l.shade(Vec3::ONE, Vec3::X);
        assert!(lit.x > grazing.x);
        assert!((grazing.x - 0.2).abs() < 1e-6, "ambient floor");
        // Two-sided: flipped normal shades the same.
        assert_eq!(l.shade(Vec3::ONE, -Vec3::Y), lit);
    }

    #[test]
    fn stats_count_consistently() {
        let (mut fb, vp, cam, mesh) = fullscreen_tri(64);
        let stats = draw(&mut fb, &vp, &vp.clone(), &cam, &mesh, Vec3::X);
        assert_eq!(stats.triangles_submitted, 1);
        assert_eq!(stats.triangles_rasterized, 1);
        assert!(stats.fragments_shaded >= stats.fragments_written);
    }
}
