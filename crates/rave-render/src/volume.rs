//! Volume rendering by per-pixel ray casting with front-to-back alpha
//! compositing.
//!
//! §6: "Subset blocks of the volume can be blended, even though they
//! contain transparency, by considering their relative distance from the
//! view in the order of blending (such as Visapult)." The renderer
//! produces per-tile RGBA+depth volume layers; [`crate::composite`] blends
//! distributed layers in view order.

use crate::framebuffer::{Framebuffer, FramebufferBand, Rgb};
use crate::raster::RasterStats;
use rave_math::{clampf, Mat4, Vec3, Viewport};
use rave_scene::VolumeData;

/// Density → color+opacity mapping (a minimal transfer function: grayscale
/// ramp with an opacity threshold window).
#[derive(Debug, Clone, Copy)]
pub struct TransferFunction {
    /// Densities below this are fully transparent.
    pub threshold: f32,
    /// Opacity accumulated per unit optical depth above threshold.
    pub opacity_scale: f32,
    /// Tint applied to the density ramp.
    pub tint: Vec3,
}

impl Default for TransferFunction {
    fn default() -> Self {
        Self { threshold: 0.15, opacity_scale: 4.0, tint: Vec3::ONE }
    }
}

impl TransferFunction {
    /// RGBA sample for a normalized density.
    pub fn map(&self, density: f32) -> (Vec3, f32) {
        if density < self.threshold {
            return (Vec3::ZERO, 0.0);
        }
        let v = (density - self.threshold) / (1.0 - self.threshold).max(1e-6);
        (self.tint * v, clampf(v * self.opacity_scale, 0.0, 1.0))
    }
}

/// Ray-cast `volume` into the framebuffer over the pixels of `tile`.
/// The volume occupies its local bounds transformed by `model`. Fragments
/// composite front-to-back and write depth at the first non-transparent
/// sample, so opaque geometry drawn earlier occludes correctly.
#[allow(clippy::too_many_arguments)]
pub fn raycast_volume(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    volume: &VolumeData,
    model: &Mat4,
    view_proj: &Mat4,
    camera_pos: Vec3,
    tf: &TransferFunction,
    steps: u32,
    stats: &mut RasterStats,
) {
    raycast_rows(
        &mut fb.as_band(),
        full_viewport,
        tile,
        volume,
        model,
        view_proj,
        camera_pos,
        tf,
        steps,
        stats,
    );
}

/// Ray-cast the rows of `tile` covered by `band` (a view over the
/// tile-sized framebuffer). Each pixel is independent, so partitioning
/// the rows across bands reproduces the serial sweep bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn raycast_rows(
    band: &mut FramebufferBand<'_>,
    full_viewport: &Viewport,
    tile: &Viewport,
    volume: &VolumeData,
    model: &Mat4,
    view_proj: &Mat4,
    camera_pos: Vec3,
    tf: &TransferFunction,
    steps: u32,
    stats: &mut RasterStats,
) {
    let Some(inv_model) = model.inverse() else { return };
    let bounds = volume.bounds();
    let Some(inv_vp) = view_proj.inverse() else { return };

    for py in tile.y + band.y_start()..tile.y + band.y_end() {
        for px in tile.x..tile.x + tile.width {
            // Un-project the pixel to a world-space ray.
            let ndc =
                full_viewport.pixel_to_ndc(rave_math::Vec2::new(px as f32 + 0.5, py as f32 + 0.5));
            let far = inv_vp.mul_vec4(rave_math::Vec4::new(ndc.x, ndc.y, 1.0, 1.0));
            let far = far.perspective_divide();
            let dir_world = (far - camera_pos).normalized();

            // Into volume-local space.
            let origin = inv_model.transform_point(camera_pos);
            let dir = inv_model.transform_dir(dir_world).normalized();

            // Slab intersection with the volume bounds.
            let Some((t0, t1)) = ray_box(origin, dir, bounds.min, bounds.max) else {
                continue;
            };
            let t0 = t0.max(0.0);
            if t1 <= t0 {
                continue;
            }
            let dt = (t1 - t0) / steps as f32;
            let mut color = Vec3::ZERO;
            let mut alpha = 0.0f32;
            let mut hit_depth: Option<f32> = None;
            for s in 0..steps {
                let t = t0 + (s as f32 + 0.5) * dt;
                let sample = volume.sample(origin + dir * t);
                let (c, a) = tf.map(sample);
                if a > 0.0 {
                    let contrib = a * (1.0 - alpha);
                    color += c * contrib;
                    alpha += contrib;
                    if hit_depth.is_none() {
                        // Depth of the first hit, in NDC z.
                        let world = model.transform_point(origin + dir * t);
                        let clip = view_proj.mul_vec4(world.extend(1.0));
                        if clip.w > 1e-5 {
                            hit_depth = Some(clip.perspective_divide().z);
                        }
                    }
                    if alpha > 0.98 {
                        break; // early ray termination
                    }
                }
            }
            if alpha <= 0.001 {
                continue;
            }
            stats.fragments_shaded += 1;
            let z = hit_depth.unwrap_or(1.0);
            let x_local = px - tile.x;
            let y_local = py - tile.y;
            // Composite over whatever is behind (alpha blend against the
            // existing color), respecting opaque depth.
            if z < band.depth_at(x_local, y_local) {
                let bg = band.get(x_local, y_local);
                let bgv = Vec3::new(bg.0 as f32 / 255.0, bg.1 as f32 / 255.0, bg.2 as f32 / 255.0);
                let out = color + bgv * (1.0 - alpha);
                band.set(x_local, y_local, Rgb::from_f32(out.x, out.y, out.z), z);
                stats.fragments_written += 1;
            }
        }
    }
}

/// Ray–AABB slab test: returns entry/exit parameters if the ray hits.
fn ray_box(origin: Vec3, dir: Vec3, min: Vec3, max: Vec3) -> Option<(f32, f32)> {
    let mut t0 = f32::NEG_INFINITY;
    let mut t1 = f32::INFINITY;
    for axis in 0..3 {
        let (o, d, lo, hi) = match axis {
            0 => (origin.x, dir.x, min.x, max.x),
            1 => (origin.y, dir.y, min.y, max.y),
            _ => (origin.z, dir.z, min.z, max.z),
        };
        if d.abs() < 1e-12 {
            if o < lo || o > hi {
                return None;
            }
            continue;
        }
        let inv = 1.0 / d;
        let (mut a, mut b) = ((lo - o) * inv, (hi - o) * inv);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        t0 = t0.max(a);
        t1 = t1.min(b);
        if t0 > t1 {
            return None;
        }
    }
    Some((t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::CameraParams;

    /// A dense 8³ ball in the middle of a 16³ volume.
    fn ball_volume() -> VolumeData {
        let n = 16u32;
        let mut voxels = vec![0u8; (n * n * n) as usize];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let p = Vec3::new(x as f32 - 7.5, y as f32 - 7.5, z as f32 - 7.5);
                    if p.length() < 5.0 {
                        voxels[(x + n * (y + n * z)) as usize] = 255;
                    }
                }
            }
        }
        VolumeData::new([n, n, n], Vec3::ONE, voxels)
    }

    fn render_ball(cam_z: f32) -> (Framebuffer, RasterStats) {
        let mut fb = Framebuffer::new(48, 48);
        let vp = Viewport::new(48, 48);
        let cam = CameraParams::look_at(Vec3::new(8.0, 8.0, cam_z), Vec3::splat(8.0), Vec3::Y);
        let mut stats = RasterStats::default();
        raycast_volume(
            &mut fb,
            &vp,
            &vp.clone(),
            &ball_volume(),
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            cam.position,
            &TransferFunction::default(),
            64,
            &mut stats,
        );
        (fb, stats)
    }

    #[test]
    fn ball_renders_in_center() {
        let (fb, stats) = render_ball(40.0);
        assert!(stats.fragments_written > 50);
        assert!(fb.get(24, 24) != Rgb::BLACK, "ball visible at center");
        assert_eq!(fb.get(2, 2), Rgb::BLACK, "corners stay background");
        assert!(fb.depth_at(24, 24) < 1.0, "depth written");
    }

    #[test]
    fn camera_inside_empty_region_sees_ball() {
        let (fb, _) = render_ball(14.5); // just outside the ball, inside bounds
        assert!(fb.get(24, 24) != Rgb::BLACK);
    }

    #[test]
    fn ray_box_hits_and_misses() {
        let hit = ray_box(Vec3::new(-5.0, 0.5, 0.5), Vec3::X, Vec3::ZERO, Vec3::ONE);
        assert!(hit.is_some());
        let (t0, t1) = hit.unwrap();
        assert!((t0 - 5.0).abs() < 1e-5 && (t1 - 6.0).abs() < 1e-5);
        assert!(ray_box(Vec3::new(-5.0, 5.0, 0.5), Vec3::X, Vec3::ZERO, Vec3::ONE).is_none());
        // Parallel ray inside the slab.
        assert!(ray_box(Vec3::new(0.5, 0.5, 0.5), Vec3::X, Vec3::ZERO, Vec3::ONE).is_some());
    }

    #[test]
    fn transfer_function_threshold() {
        let tf = TransferFunction::default();
        assert_eq!(tf.map(0.0).1, 0.0);
        assert!(tf.map(0.9).1 > 0.5);
    }

    #[test]
    fn opaque_geometry_occludes_volume() {
        let mut fb = Framebuffer::new(32, 32);
        let vp = Viewport::new(32, 32);
        let cam = CameraParams::look_at(Vec3::new(8.0, 8.0, 40.0), Vec3::splat(8.0), Vec3::Y);
        // Pre-fill the z-buffer with a very near opaque plane.
        for y in 0..32 {
            for x in 0..32 {
                fb.set(x, y, Rgb(200, 0, 0), -0.9);
            }
        }
        let mut stats = RasterStats::default();
        raycast_volume(
            &mut fb,
            &vp,
            &vp.clone(),
            &ball_volume(),
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            cam.position,
            &TransferFunction::default(),
            32,
            &mut stats,
        );
        assert_eq!(stats.fragments_written, 0, "occluded volume writes nothing");
        assert_eq!(fb.get(16, 16), Rgb(200, 0, 0));
    }
}
