//! Object picking: which scene node is under a pixel?
//!
//! §5.2: "all interactions are based on clicking to select/deselect an
//! object, and dragging." Selection is implemented the way the fixed-
//! function era did it: render the scene into an *ID buffer* where every
//! node draws in a flat color encoding its node id, then read the clicked
//! pixel back. Depth testing resolves occlusion exactly like the visible
//! render, so the user picks what they actually see.

use crate::framebuffer::{Framebuffer, Rgb};
use crate::points::draw_points;
use crate::raster::{draw_mesh, Lighting, RasterStats};
use rave_math::{Vec3, Viewport};
use rave_scene::{CameraParams, NodeId, NodeKind, SceneTree};

/// Encode a node id into a flat RGB color (24-bit). Ids above 2^24-2 are
/// not representable; scenes here are far smaller.
fn id_to_color(id: NodeId) -> Vec3 {
    let v = (id.0 + 1) as u32; // 0 is reserved for "nothing"
    debug_assert!(v < 1 << 24, "node id too large for the pick buffer");
    Vec3::new(
        (v & 0xFF) as f32 / 255.0,
        ((v >> 8) & 0xFF) as f32 / 255.0,
        ((v >> 16) & 0xFF) as f32 / 255.0,
    )
}

fn color_to_id(c: Rgb) -> Option<NodeId> {
    let v = c.0 as u64 | ((c.1 as u64) << 8) | ((c.2 as u64) << 16);
    if v == 0 {
        None
    } else {
        Some(NodeId(v - 1))
    }
}

/// Render the ID buffer for a scene. Unlit, flat-colored, depth-tested;
/// volumes are skipped (they pick as empty — volume picking needs ray
/// integration, out of scope for a selection click).
pub fn render_id_buffer(
    tree: &SceneTree,
    camera: &CameraParams,
    viewport: &Viewport,
    skip_subtree: Option<NodeId>,
) -> Framebuffer {
    let mut fb = Framebuffer::new(viewport.width, viewport.height);
    fb.clear(Rgb::BLACK);
    let view_proj = camera.view_proj(viewport);
    // Flat "lighting": full ambient so the encoded color is untouched.
    let flat = Lighting { light_dir: Vec3::Y, ambient: 1.0 };
    let mut stats = RasterStats::default();
    let skipped: std::collections::BTreeSet<NodeId> =
        skip_subtree.map(|s| tree.descendants(s).into_iter().collect()).unwrap_or_default();
    for id in tree.descendants(tree.root()) {
        if skipped.contains(&id) {
            continue;
        }
        let Some(node) = tree.node(id) else { continue };
        let model = tree.world_transform(id);
        let color = id_to_color(id);
        match node.kind() {
            NodeKind::Mesh(mesh) => {
                // Strip vertex colors so the flat id color wins.
                let mut flat_mesh = (**mesh).clone();
                flat_mesh.colors.clear();
                draw_mesh(
                    &mut fb, viewport, viewport, &flat_mesh, &model, &view_proj, &flat, color,
                    &mut stats,
                );
            }
            NodeKind::PointCloud(cloud) => {
                let mut flat_cloud = (**cloud).clone();
                flat_cloud.colors.clear();
                draw_points(
                    &mut fb,
                    viewport,
                    viewport,
                    &flat_cloud,
                    &model,
                    &view_proj,
                    color,
                    &mut stats,
                );
            }
            NodeKind::Avatar(info) => {
                let mut cone = crate::avatar::avatar_mesh(info);
                cone.colors.clear();
                draw_mesh(
                    &mut fb, viewport, viewport, &cone, &model, &view_proj, &flat, color,
                    &mut stats,
                );
            }
            NodeKind::Group | NodeKind::Camera(_) | NodeKind::Volume(_) => {}
        }
    }
    fb
}

/// Pick the front-most node under pixel `(x, y)`, or `None` for
/// background.
pub fn pick_node(
    tree: &SceneTree,
    camera: &CameraParams,
    viewport: &Viewport,
    x: u32,
    y: u32,
) -> Option<NodeId> {
    pick_node_skipping(tree, camera, viewport, x, y, None)
}

/// [`pick_node`] with a subtree excluded — a user never picks their own
/// avatar, which sits at their camera.
pub fn pick_node_skipping(
    tree: &SceneTree,
    camera: &CameraParams,
    viewport: &Viewport,
    x: u32,
    y: u32,
    skip_subtree: Option<NodeId>,
) -> Option<NodeId> {
    assert!(x < viewport.width && y < viewport.height, "pick outside viewport");
    let fb = render_id_buffer(tree, camera, viewport, skip_subtree);
    color_to_id(fb.get(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::MeshData;
    use std::sync::Arc;

    fn quad_mesh(z: f32) -> NodeKind {
        NodeKind::Mesh(Arc::new(MeshData::new(
            vec![
                Vec3::new(-1.0, -1.0, z),
                Vec3::new(1.0, -1.0, z),
                Vec3::new(1.0, 1.0, z),
                Vec3::new(-1.0, 1.0, z),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )))
    }

    fn setup() -> (SceneTree, CameraParams, Viewport) {
        let mut tree = SceneTree::new();
        let root = tree.root();
        tree.add_node(root, "near", quad_mesh(1.0)).unwrap();
        tree.add_node(root, "far", quad_mesh(-1.0)).unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        (tree, cam, Viewport::new(64, 64))
    }

    #[test]
    fn center_click_picks_the_front_most() {
        let (tree, cam, vp) = setup();
        let near = tree.find_by_path("/near").unwrap();
        let picked = pick_node(&tree, &cam, &vp, 32, 32);
        assert_eq!(picked, Some(near), "occlusion resolved in favor of the nearer quad");
    }

    #[test]
    fn background_click_picks_nothing() {
        let (tree, cam, vp) = setup();
        assert_eq!(pick_node(&tree, &cam, &vp, 1, 1), None);
    }

    #[test]
    fn offset_click_reaches_the_occluded_object_when_exposed() {
        let (mut tree, cam, vp) = setup();
        // Shrink the near quad so the far one peeks out at the edge.
        let near = tree.find_by_path("/near").unwrap();
        tree.node_mut(near).unwrap().transform_mut().scale = Vec3::splat(0.3);
        let far = tree.find_by_path("/far").unwrap();
        // Click inside the big quad but outside the shrunk near one
        // (the far quad spans ~21..43 px here, the near one ~29..35).
        let picked = pick_node(&tree, &cam, &vp, 25, 32);
        assert_eq!(picked, Some(far));
    }

    #[test]
    fn id_color_roundtrip() {
        for raw in [0u64, 1, 255, 256, 65_535, 1_000_000] {
            let id = NodeId(raw);
            let c = id_to_color(id);
            let rgb = Rgb::from_f32(c.x, c.y, c.z);
            assert_eq!(color_to_id(rgb), Some(id), "id {raw}");
        }
        assert_eq!(color_to_id(Rgb::BLACK), None);
    }

    #[test]
    fn avatars_are_pickable() {
        let mut tree = SceneTree::new();
        let root = tree.root();
        let av = tree
            .add_node(
                root,
                "avatar",
                NodeKind::Avatar(rave_scene::AvatarInfo {
                    label: "u".into(),
                    color: Vec3::X,
                    camera: CameraParams::default(),
                }),
            )
            .unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y);
        let vp = Viewport::new(64, 64);
        assert_eq!(pick_node(&tree, &cam, &vp, 32, 32), Some(av));
    }

    #[test]
    #[should_panic]
    fn out_of_viewport_pick_panics() {
        let (tree, cam, vp) = setup();
        pick_node(&tree, &cam, &vp, 200, 200);
    }
}
