//! Avatar geometry: "a simple avatar — in this case, a cone pointing in
//! the direction of the user's view, and the name of the user or host"
//! (§5.2, Fig 3).

use rave_math::Vec3;
use rave_scene::{AvatarInfo, MeshData};

/// Build the avatar cone: apex forward (-Z in avatar-local space, matching
/// the camera convention), circular base behind, plus a small name-tag
/// quad above rendered in the avatar color (a stand-in for the text label
/// the Java GUI drew — the *presence* and *placement* of the tag is what
/// Fig 3 demonstrates).
pub fn avatar_mesh(info: &AvatarInfo) -> MeshData {
    const SEGMENTS: u32 = 12;
    const LENGTH: f32 = 0.5;
    const RADIUS: f32 = 0.18;

    let mut positions = vec![Vec3::new(0.0, 0.0, -LENGTH * 0.5)]; // apex
    let mut triangles = Vec::new();
    for s in 0..SEGMENTS {
        let a = s as f32 / SEGMENTS as f32 * std::f32::consts::TAU;
        positions.push(Vec3::new(RADIUS * a.cos(), RADIUS * a.sin(), LENGTH * 0.5));
    }
    // Side fan + base fan.
    let base_center = positions.len() as u32;
    positions.push(Vec3::new(0.0, 0.0, LENGTH * 0.5));
    for s in 0..SEGMENTS {
        let i0 = 1 + s;
        let i1 = 1 + (s + 1) % SEGMENTS;
        triangles.push([0, i0, i1]);
        triangles.push([base_center, i1, i0]);
    }

    // Name-tag quad floating above the cone, sized by label length.
    let tag_w = 0.08 * info.label.len().max(3) as f32;
    let tag_base = positions.len() as u32;
    positions.push(Vec3::new(-tag_w * 0.5, RADIUS + 0.12, 0.0));
    positions.push(Vec3::new(tag_w * 0.5, RADIUS + 0.12, 0.0));
    positions.push(Vec3::new(tag_w * 0.5, RADIUS + 0.24, 0.0));
    positions.push(Vec3::new(-tag_w * 0.5, RADIUS + 0.24, 0.0));
    triangles.push([tag_base, tag_base + 1, tag_base + 2]);
    triangles.push([tag_base, tag_base + 2, tag_base + 3]);

    let mut mesh = MeshData::new(positions, triangles);
    mesh.compute_normals();
    // Cone in the avatar color; tag slightly brighter so it reads as a
    // label.
    let n = mesh.positions.len();
    let mut colors = vec![info.color; n];
    for c in colors.iter_mut().skip(tag_base as usize) {
        *c = (info.color + Vec3::ONE) * 0.5;
    }
    mesh.colors = colors;
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::CameraParams;

    fn info(label: &str) -> AvatarInfo {
        AvatarInfo {
            label: label.into(),
            color: Vec3::new(0.9, 0.4, 0.1),
            camera: CameraParams::default(),
        }
    }

    #[test]
    fn cone_is_valid_and_forward_pointing() {
        let m = avatar_mesh(&info("Desktop"));
        m.validate().unwrap();
        // Apex is the front-most (-Z) vertex.
        let min_z = m.positions.iter().map(|p| p.z).fold(f32::INFINITY, f32::min);
        assert_eq!(m.positions[0].z, min_z);
        assert!(m.triangle_count() > 20);
    }

    #[test]
    fn tag_scales_with_label() {
        let short = avatar_mesh(&info("pc"));
        let long = avatar_mesh(&info("adrenochrome"));
        let width = |m: &MeshData| {
            m.positions.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max)
                - m.positions.iter().map(|p| p.x).fold(f32::INFINITY, f32::min)
        };
        assert!(width(&long) > width(&short));
    }

    #[test]
    fn colors_cover_all_vertices() {
        let m = avatar_mesh(&info("x"));
        assert_eq!(m.colors.len(), m.positions.len());
        // Tag is brighter than the cone.
        let cone_c = m.colors[0];
        let tag_c = *m.colors.last().unwrap();
        assert!(tag_c.x > cone_c.x);
    }
}
