//! Machine capability profiles and the render-time cost model.
//!
//! These stand in for the paper's testbed hardware (§4.4). Rates are
//! calibrated against the paper's own measurements:
//!
//! - Table 2 fixes the Centrino/GeForce2-420Go polygon rate (0.83 M polys
//!   render in ≈0.09 s, 2.8 M in ≈0.36 s ⇒ ~8–9 M polys/s).
//! - Tables 3/4 fix the off-screen model: Java3D off-screen rendering
//!   pays a fixed request/poll overhead plus a pixel-readback cost per
//!   image; interleaving `n` in-flight images amortizes that overhead
//!   (§5.4), and the XVR-4000 falls back to *software* rendering
//!   off-screen ("possibly indicate off-screen rendering is carried out in
//!   software rather than hardware").
//!
//! The virtual-time services in `rave-core` charge these costs to the
//! simulation clock.

use serde::{Deserialize, Serialize};

/// How an off-screen render is executed and timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OffscreenMode {
    /// One request at a time: full poll overhead per image (Table 4 "seq").
    Sequential,
    /// `n` requests in flight, round-robin completion polling (Table 4
    /// "int"); overhead amortizes across the in-flight set.
    Interleaved { in_flight: u32 },
}

/// A machine's rendering capability model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    pub name: &'static str,
    pub cpu: &'static str,
    pub gpu: &'static str,
    /// On-screen triangle throughput (tris/s).
    pub poly_rate: f64,
    /// On-screen fill rate (pixels/s).
    pub fill_rate: f64,
    /// Fixed per-frame setup cost (s).
    pub frame_overhead: f64,
    /// Texture memory capacity (bytes) — the capacity metric the data
    /// service interrogates (§3.2.5).
    pub texture_memory: u64,
    /// Hardware-assisted volume rendering available?
    pub volume_hw: bool,
    /// Off-screen render throughput; `None` = same silicon as on-screen,
    /// `Some((poly_rate, fill_rate))` = software fallback rates (XVR-4000).
    pub offscreen_software: Option<(f64, f64)>,
    /// Fixed off-screen request/completion-poll overhead (s).
    pub offscreen_poll: f64,
    /// Off-screen buffer readback rate (pixels/s).
    pub readback_rate: f64,
}

/// A render-time estimate, split into its components (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderCost {
    pub render: f64,
    pub overhead: f64,
}

impl RenderCost {
    pub fn total(&self) -> f64 {
        self.render + self.overhead
    }
}

impl MachineProfile {
    /// Time to render `polygons` into `pixels` on-screen.
    pub fn onscreen_cost(&self, polygons: u64, pixels: u64) -> RenderCost {
        RenderCost {
            render: polygons as f64 / self.poly_rate + pixels as f64 / self.fill_rate,
            overhead: self.frame_overhead,
        }
    }

    /// Time to render off-screen under the given mode.
    pub fn offscreen_cost(&self, polygons: u64, pixels: u64, mode: OffscreenMode) -> RenderCost {
        let (pr, fr) = self.offscreen_software.unwrap_or((self.poly_rate, self.fill_rate));
        let render = polygons as f64 / pr + pixels as f64 / fr + self.frame_overhead;
        let per_image_overhead = self.offscreen_poll + pixels as f64 / self.readback_rate;
        let overhead = match mode {
            OffscreenMode::Sequential => per_image_overhead,
            OffscreenMode::Interleaved { in_flight } => {
                per_image_overhead / in_flight.max(1) as f64
            }
        };
        RenderCost { render, overhead }
    }

    /// Off-screen speed as a percentage of on-screen speed — the quantity
    /// Tables 3 and 4 report.
    pub fn offscreen_percent(&self, polygons: u64, pixels: u64, mode: OffscreenMode) -> f64 {
        100.0 * self.onscreen_cost(polygons, pixels).total()
            / self.offscreen_cost(polygons, pixels, mode).total()
    }

    /// Sustained frame rate rendering `polygons` on-screen at `pixels`.
    pub fn onscreen_fps(&self, polygons: u64, pixels: u64) -> f64 {
        1.0 / self.onscreen_cost(polygons, pixels).total()
    }

    /// How many polygons fit per frame while sustaining `fps` on-screen —
    /// the "available polygons per second" capacity the data service
    /// interrogates when planning distribution (§3.2.5).
    pub fn poly_budget_at_fps(&self, fps: f64, pixels: u64) -> u64 {
        let frame_time = 1.0 / fps;
        let fixed = self.frame_overhead + pixels as f64 / self.fill_rate;
        if frame_time <= fixed {
            return 0;
        }
        ((frame_time - fixed) * self.poly_rate) as u64
    }

    // ----- the paper's testbed (§4.4) --------------------------------

    /// SGI Onyx 3000, 32 CPUs, three InfiniteReality pipes.
    pub fn sgi_onyx() -> Self {
        Self {
            name: "onyx",
            cpu: "32x MIPS R12000",
            gpu: "3x InfiniteReality",
            poly_rate: 30.0e6,
            fill_rate: 2.0e9,
            frame_overhead: 0.4e-3,
            texture_memory: 256 << 20,
            volume_hw: true,
            offscreen_software: None,
            offscreen_poll: 3.0e-3,
            readback_rate: 60.0e6,
        }
    }

    /// Sun Fire V880z, XVR-4000 — off-screen falls back to software
    /// (§5.4's surprising result).
    pub fn sun_v880z() -> Self {
        Self {
            name: "v880z",
            cpu: "UltraSPARC III 900MHz",
            gpu: "XVR-4000",
            poly_rate: 18.0e6,
            fill_rate: 600.0e6,
            frame_overhead: 0.8e-3,
            texture_memory: 256 << 20,
            volume_hw: true,
            // Software rates: ~3% of hardware on big models (Table 3/4).
            offscreen_software: Some((0.55e6, 30.0e6)),
            offscreen_poll: 2.0e-3,
            readback_rate: 40.0e6,
        }
    }

    /// Intel Centrino 1.6 GHz laptop, GeForce2 420 Go — the Table 2
    /// render service.
    pub fn centrino_laptop() -> Self {
        Self {
            name: "laptop",
            cpu: "Centrino 1.6GHz",
            gpu: "GeForce2 420 Go",
            poly_rate: 8.8e6,
            fill_rate: 180.0e6,
            frame_overhead: 0.5e-3,
            texture_memory: 32 << 20,
            volume_hw: false,
            offscreen_software: None,
            offscreen_poll: 4.5e-3,
            readback_rate: 18.0e6,
        }
    }

    /// AMD Athlon 1.2 GHz desktop, GeForce2 GTS.
    pub fn athlon_desktop() -> Self {
        Self {
            name: "desktop",
            cpu: "Athlon 1.2GHz",
            gpu: "GeForce2 GTS",
            poly_rate: 10.0e6,
            fill_rate: 220.0e6,
            frame_overhead: 0.5e-3,
            texture_memory: 32 << 20,
            volume_hw: false,
            offscreen_software: None,
            offscreen_poll: 4.0e-3,
            readback_rate: 20.0e6,
        }
    }

    /// Dual 2.4 GHz Xeon, Quadro FX3000G.
    pub fn xeon_tower() -> Self {
        Self {
            name: "tower",
            cpu: "2x Xeon 2.4GHz",
            gpu: "Quadro FX3000G",
            poly_rate: 40.0e6,
            fill_rate: 1.0e9,
            frame_overhead: 0.3e-3,
            texture_memory: 256 << 20,
            volume_hw: true,
            offscreen_software: None,
            offscreen_poll: 2.5e-3,
            readback_rate: 80.0e6,
        }
    }

    /// Every render-capable testbed machine.
    pub fn testbed() -> Vec<Self> {
        vec![
            Self::sgi_onyx(),
            Self::sun_v880z(),
            Self::centrino_laptop(),
            Self::athlon_desktop(),
            Self::xeon_tower(),
        ]
    }
}

/// The Sharp Zaurus thin client (§4.4/§5.1): no rendering, only image
/// import and presentation. Costs model the J2ME-vs-C++ finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdaProfile {
    pub name: &'static str,
    /// Display resolution (the Zaurus is 640×480).
    pub display: (u32, u32),
    /// Per-pixel cost of the J2ME "manual" byte-by-byte image conversion —
    /// the path that took "over two minutes ... for a single frame" (§5.1).
    pub j2me_per_pixel: f64,
    /// Per-byte cost of the C/C++ pointer-cast import ("minimal
    /// overhead").
    pub cast_per_byte: f64,
    /// Blit-to-screen cost per pixel.
    pub blit_per_pixel: f64,
    /// Fixed GUI/event-loop overhead per frame (Table 2's "Other
    /// Overheads" ≈ 0.05 s).
    pub frame_overhead: f64,
}

impl PdaProfile {
    pub fn zaurus() -> Self {
        Self {
            name: "zaurus",
            display: (640, 480),
            // 120s+ for 40k pixels ⇒ 3 ms/pixel.
            j2me_per_pixel: 3.0e-3,
            cast_per_byte: 2.0e-9,
            blit_per_pixel: 0.15e-6,
            frame_overhead: 0.041,
        }
    }

    /// Time to import a `bytes`-sized RGB image via the C/C++ cast path
    /// and blit it.
    pub fn import_cast(&self, bytes: u64) -> f64 {
        let pixels = bytes as f64 / 3.0;
        bytes as f64 * self.cast_per_byte + pixels * self.blit_per_pixel
    }

    /// Time to import the same image via J2ME per-pixel conversion.
    pub fn import_j2me(&self, bytes: u64) -> f64 {
        let pixels = bytes as f64 / 3.0;
        pixels * self.j2me_per_pixel + pixels * self.blit_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PX_200: u64 = 200 * 200;
    const PX_400: u64 = 400 * 400;
    const ELLE: u64 = 50_000;
    const GALLEON: u64 = 5_500;

    #[test]
    fn table2_render_times_anchor() {
        // Paper: Hand (0.83M) renders in 0.091s, Skeleton (2.8M) in 0.355s
        // on the Centrino at 200x200. Within 20%.
        let m = MachineProfile::centrino_laptop();
        let hand = m.onscreen_cost(830_000, PX_200).total();
        let skel = m.onscreen_cost(2_800_000, PX_200).total();
        assert!((hand - 0.091).abs() / 0.091 < 0.20, "hand render {hand}");
        assert!((skel - 0.355).abs() / 0.355 < 0.20, "skeleton render {skel}");
    }

    #[test]
    fn offscreen_always_slower_than_onscreen() {
        for m in MachineProfile::testbed() {
            for &(p, px) in &[(ELLE, PX_400), (GALLEON, PX_200)] {
                let pct = m.offscreen_percent(p, px, OffscreenMode::Sequential);
                assert!(pct < 100.0, "{}: {pct}", m.name);
            }
        }
    }

    #[test]
    fn interleaving_beats_sequential() {
        // Table 4's core finding.
        for m in MachineProfile::testbed() {
            for &p in &[ELLE, GALLEON] {
                let seq = m.offscreen_percent(p, PX_200, OffscreenMode::Sequential);
                let int =
                    m.offscreen_percent(p, PX_200, OffscreenMode::Interleaved { in_flight: 4 });
                assert!(int > seq, "{}: seq {seq} int {int}", m.name);
            }
        }
    }

    #[test]
    fn xvr4000_software_fallback_collapses_big_models() {
        // Table 3/4: Elle off-screen on the V880z is ~3-4% of on-screen.
        let v = MachineProfile::sun_v880z();
        let pct = v.offscreen_percent(ELLE, PX_400, OffscreenMode::Sequential);
        assert!(pct < 8.0, "Elle on XVR-4000: {pct}%");
        // But the NV cards keep Elle above 25%.
        let c = MachineProfile::centrino_laptop();
        let pct_c = c.offscreen_percent(ELLE, PX_400, OffscreenMode::Sequential);
        assert!(pct_c > 20.0, "Elle on 420Go: {pct_c}%");
    }

    #[test]
    fn small_models_hurt_more_from_fixed_overhead_on_nv() {
        // Table 3 row shape: Galleon % < Elle % on the NV machines.
        for m in [MachineProfile::centrino_laptop(), MachineProfile::athlon_desktop()] {
            let elle = m.offscreen_percent(ELLE, PX_400, OffscreenMode::Sequential);
            let gall = m.offscreen_percent(GALLEON, PX_400, OffscreenMode::Sequential);
            assert!(gall < elle, "{}: gall {gall} elle {elle}", m.name);
        }
        // ...but reversed on the V880z (software render dominates for the
        // big model): Galleon % > Elle %.
        let v = MachineProfile::sun_v880z();
        let elle = v.offscreen_percent(ELLE, PX_400, OffscreenMode::Sequential);
        let gall = v.offscreen_percent(GALLEON, PX_400, OffscreenMode::Sequential);
        assert!(gall > elle, "v880z: gall {gall} elle {elle}");
    }

    #[test]
    fn poly_budget_monotone_in_fps() {
        let m = MachineProfile::centrino_laptop();
        let b10 = m.poly_budget_at_fps(10.0, PX_200);
        let b30 = m.poly_budget_at_fps(30.0, PX_200);
        assert!(b10 > b30, "lower fps leaves more poly budget");
        assert!(b10 > 0);
    }

    #[test]
    fn poly_budget_zero_when_fill_bound() {
        let m = MachineProfile::centrino_laptop();
        // Absurd fps: no budget at all.
        assert_eq!(m.poly_budget_at_fps(1e7, PX_400), 0);
    }

    #[test]
    fn pda_j2me_vs_cast_matches_paper_magnitudes() {
        // §5.1: J2ME "over two minutes" for one 200x200 frame; C++ cast
        // path ~instant (receive+blit measured at ~0.2s was network-bound).
        let pda = PdaProfile::zaurus();
        let bytes = 120_000;
        let j2me = pda.import_j2me(bytes);
        let cast = pda.import_cast(bytes);
        assert!(j2me > 120.0, "J2ME path: {j2me}s");
        assert!(cast < 0.05, "cast path: {cast}s");
        assert!(j2me / cast > 1000.0);
    }

    #[test]
    fn interleave_zero_in_flight_saturates() {
        let m = MachineProfile::centrino_laptop();
        let c = m.offscreen_cost(1000, PX_200, OffscreenMode::Interleaved { in_flight: 0 });
        assert!(c.total().is_finite());
    }

    #[test]
    fn onyx_outclasses_laptop() {
        let onyx = MachineProfile::sgi_onyx();
        let laptop = MachineProfile::centrino_laptop();
        assert!(
            onyx.onscreen_fps(2_800_000, PX_400) > laptop.onscreen_fps(2_800_000, PX_400) * 2.0
        );
    }
}
