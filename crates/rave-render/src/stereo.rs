//! Stereo rendering for immersive displays.
//!
//! The paper's testbed drives an "Immersadesk R2" and a "FakeSpace
//! Portico rear-projection active stereo Workwall" (§3.1.2, §5.3); the
//! e-Demand comparison system targets autostereo displays. This module
//! provides the stereo camera rig and the two standard output packings:
//! side-by-side (passive/autostereo) and sequential pages (active
//! shutter).

use crate::framebuffer::Framebuffer;
use crate::renderer::{RenderStats, Renderer};
use rave_math::{Vec3, Viewport};
use rave_scene::{CameraParams, SceneTree};

/// A stereo camera rig derived from a mono camera: two eyes offset along
/// the camera's right axis, converged at a focal distance (off-axis
/// convergence keeps vertical parallax at zero).
#[derive(Debug, Clone, Copy)]
pub struct StereoRig {
    /// Interocular distance in world units.
    pub eye_separation: f32,
    /// Distance to the zero-parallax plane.
    pub convergence: f32,
}

impl Default for StereoRig {
    fn default() -> Self {
        Self { eye_separation: 0.065, convergence: 2.5 }
    }
}

/// Which eye a view belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eye {
    Left,
    Right,
}

impl StereoRig {
    /// The per-eye camera: position shifted by half the separation along
    /// the rig's right vector, oriented toward the shared convergence
    /// point.
    pub fn eye_camera(&self, center: &CameraParams, eye: Eye) -> CameraParams {
        let sign = match eye {
            Eye::Left => -0.5,
            Eye::Right => 0.5,
        };
        let offset = center.right() * (self.eye_separation * sign);
        let focus = center.position + center.forward() * self.convergence;
        let mut cam = CameraParams::look_at(center.position + offset, focus, center.up());
        cam.fov_y = center.fov_y;
        cam.near = center.near;
        cam.far = center.far;
        cam
    }

    /// Render both eyes side-by-side into one double-width framebuffer
    /// (the passive-projection packing). Returns combined stats.
    pub fn render_side_by_side(
        &self,
        renderer: &Renderer,
        tree: &SceneTree,
        center: &CameraParams,
        eye_viewport: Viewport,
    ) -> (Framebuffer, RenderStats) {
        let mut out = Framebuffer::new(eye_viewport.width * 2, eye_viewport.height);
        let mut total = RenderStats::default();
        for (i, eye) in [Eye::Left, Eye::Right].into_iter().enumerate() {
            let cam = self.eye_camera(center, eye);
            let mut fb = Framebuffer::new(eye_viewport.width, eye_viewport.height);
            let stats = renderer.render(tree, &cam, &mut fb);
            out.blit(&fb, i as u32 * eye_viewport.width, 0);
            total.raster.accumulate(&stats.raster);
            total.nodes_visited += stats.nodes_visited;
            total.polygons_on_screen += stats.polygons_on_screen;
        }
        (out, total)
    }

    /// Render the two sequential pages of an active-stereo frame (shutter
    /// glasses): returns `(left, right)` full-resolution images.
    pub fn render_pages(
        &self,
        renderer: &Renderer,
        tree: &SceneTree,
        center: &CameraParams,
        viewport: Viewport,
    ) -> (Framebuffer, Framebuffer) {
        let render_eye = |eye| {
            let cam = self.eye_camera(center, eye);
            let mut fb = Framebuffer::new(viewport.width, viewport.height);
            renderer.render(tree, &cam, &mut fb);
            fb
        };
        (render_eye(Eye::Left), render_eye(Eye::Right))
    }

    /// Horizontal disparity (in pixels, right-eye x minus left-eye x) of a
    /// world-space point, used to validate depth ordering on the wall:
    /// points nearer than the convergence plane have negative disparity
    /// (pop out), farther ones positive.
    pub fn disparity_of(
        &self,
        center: &CameraParams,
        viewport: &Viewport,
        world: Vec3,
    ) -> Option<f32> {
        let project = |eye| {
            let cam: CameraParams = self.eye_camera(center, eye);
            let clip = cam.view_proj(viewport).mul_vec4(world.extend(1.0));
            if clip.w <= 1e-5 {
                None
            } else {
                Some(viewport.ndc_to_pixel(clip.perspective_divide()).x)
            }
        };
        Some(project(Eye::Right)? - project(Eye::Left)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_math::approx_eq;
    use rave_scene::{MeshData, NodeKind};
    use std::sync::Arc;

    fn center_cam() -> CameraParams {
        CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y)
    }

    #[test]
    fn eyes_separated_by_interocular_distance() {
        let rig = StereoRig::default();
        let c = center_cam();
        let l = rig.eye_camera(&c, Eye::Left);
        let r = rig.eye_camera(&c, Eye::Right);
        assert!(approx_eq(l.position.distance(r.position), rig.eye_separation, 1e-5));
        // Both converge: forward vectors cross in front.
        assert!(l.forward().dot(r.forward()) > 0.99);
    }

    #[test]
    fn disparity_sign_encodes_depth() {
        let rig = StereoRig { eye_separation: 0.1, convergence: 5.0 };
        let c = center_cam();
        let vp = Viewport::new(200, 200);
        // Convergence plane (z=0 when camera at z=5, convergence 5).
        let at_plane = rig.disparity_of(&c, &vp, Vec3::ZERO).unwrap();
        assert!(at_plane.abs() < 0.5, "zero parallax at convergence: {at_plane}");
        // Nearer: pops out (negative), farther: recedes (positive).
        let near = rig.disparity_of(&c, &vp, Vec3::new(0.0, 0.0, 2.5)).unwrap();
        let far = rig.disparity_of(&c, &vp, Vec3::new(0.0, 0.0, -5.0)).unwrap();
        assert!(near < -0.5, "near disparity {near}");
        assert!(far > 0.5, "far disparity {far}");
    }

    #[test]
    fn point_behind_eye_yields_none() {
        let rig = StereoRig::default();
        let c = center_cam();
        let vp = Viewport::new(100, 100);
        assert!(rig.disparity_of(&c, &vp, Vec3::new(0.0, 0.0, 50.0)).is_none());
    }

    fn tri_scene() -> SceneTree {
        let mut tree = SceneTree::new();
        let root = tree.root();
        let mesh = MeshData::new(
            vec![Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            vec![[0, 1, 2]],
        );
        tree.add_node(root, "tri", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        tree
    }

    #[test]
    fn side_by_side_renders_two_distinct_views() {
        // Convergence in front of the model so the triangle itself
        // carries visible parallax.
        let rig = StereoRig { eye_separation: 0.6, convergence: 2.0 };
        let tree = tri_scene();
        let renderer = Renderer::default();
        let (fb, stats) =
            rig.render_side_by_side(&renderer, &tree, &center_cam(), Viewport::new(64, 64));
        assert_eq!(fb.width(), 128);
        assert!(stats.raster.fragments_written > 0);
        // The two halves differ (parallax) but both contain the model.
        let left = fb.crop(Viewport::with_origin(0, 0, 64, 64));
        let right = fb.crop(Viewport::with_origin(64, 0, 64, 64));
        assert!(left.coverage(renderer.background) > 50);
        assert!(right.coverage(renderer.background) > 50);
        assert!(left.diff_fraction(&right, 0.0) > 0.005, "parallax visible");
    }

    #[test]
    fn active_pages_match_side_by_side_halves() {
        let rig = StereoRig::default();
        let tree = tri_scene();
        let renderer = Renderer::default();
        let vp = Viewport::new(48, 48);
        let (sbs, _) = rig.render_side_by_side(&renderer, &tree, &center_cam(), vp);
        let (l, r) = rig.render_pages(&renderer, &tree, &center_cam(), vp);
        assert_eq!(sbs.crop(Viewport::with_origin(0, 0, 48, 48)).diff_fraction(&l, 0.0), 0.0);
        assert_eq!(sbs.crop(Viewport::with_origin(48, 0, 48, 48)).diff_fraction(&r, 0.0), 0.0);
    }
}
