//! Point-cloud splatting.
//!
//! Like `raster.rs`, the per-pixel work is split into a projection stage
//! ([`setup_splat`]) and a band-restricted replay ([`splat_rows`]) so the
//! binned parallel renderer can splat disjoint row bands concurrently
//! while [`draw_points`] remains the serial reference.

use crate::framebuffer::{Framebuffer, FramebufferBand, Rgb};
use crate::raster::RasterStats;
use rave_math::{Mat4, Vec3, Viewport};
use rave_scene::PointCloudData;

/// A projected point ready to splat: screen center, pixel radius, depth,
/// and resolved color.
#[derive(Debug, Clone, Copy)]
pub struct Splat {
    pub cx: i64,
    pub cy: i64,
    pub r: i64,
    pub z: f32,
    pub rgb: Rgb,
}

/// Project one cloud point; `None` when it is clipped (behind the eye or
/// outside NDC bounds). Resolves color from the cloud's palette or the
/// node base color.
pub fn setup_splat(
    full_viewport: &Viewport,
    cloud: &PointCloudData,
    index: usize,
    mvp: &Mat4,
    base_color: Vec3,
) -> Option<Splat> {
    let p = cloud.points[index];
    let clip = mvp.mul_vec4(p.extend(1.0));
    if clip.w <= 1e-5 {
        return None;
    }
    let ndc = clip.perspective_divide();
    if ndc.x < -1.0 || ndc.x > 1.0 || ndc.y < -1.0 || ndc.y > 1.0 || ndc.z < -1.0 || ndc.z > 1.0 {
        return None;
    }
    let px = full_viewport.ndc_to_pixel(ndc);
    // Splat radius in pixels: world size projected through w.
    let radius = (cloud.point_size * full_viewport.height as f32 / clip.w).clamp(0.5, 16.0);
    let color = if cloud.colors.is_empty() { base_color } else { cloud.colors[index] };
    Some(Splat {
        cx: px.x as i64,
        cy: px.y as i64,
        r: radius.ceil() as i64,
        z: ndc.z,
        rgb: Rgb::from_f32(color.x, color.y, color.z),
    })
}

/// Write the rows of `splat` that fall inside `band` (a view over the
/// tile-sized framebuffer for `tile`). Same per-pixel body as the serial
/// path, restricted to the band's rows.
pub fn splat_rows(
    band: &mut FramebufferBand<'_>,
    tile: &Viewport,
    splat: &Splat,
    stats: &mut RasterStats,
) {
    let y_lo = (splat.cy - splat.r).max(tile.y as i64).max(tile.y as i64 + band.y_start() as i64);
    let y_hi = (splat.cy + splat.r)
        .min((tile.y + tile.height) as i64 - 1)
        .min(tile.y as i64 + band.y_end() as i64 - 1);
    let x_lo = (splat.cx - splat.r).max(tile.x as i64);
    let x_hi = (splat.cx + splat.r).min((tile.x + tile.width) as i64 - 1);
    for y in y_lo..=y_hi {
        for x in x_lo..=x_hi {
            stats.fragments_shaded += 1;
            if band.set_if_closer((x as u32) - tile.x, (y as u32) - tile.y, splat.rgb, splat.z) {
                stats.fragments_written += 1;
            }
        }
    }
}

/// Render a point cloud as screen-space square splats whose size scales
/// with the world-space `point_size` and perspective depth.
#[allow(clippy::too_many_arguments)]
pub fn draw_points(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    cloud: &PointCloudData,
    model: &Mat4,
    view_proj: &Mat4,
    base_color: Vec3,
    stats: &mut RasterStats,
) {
    let mvp = *view_proj * *model;
    let mut band = fb.as_band();
    for i in 0..cloud.points.len() {
        if let Some(splat) = setup_splat(full_viewport, cloud, i, &mvp, base_color) {
            splat_rows(&mut band, tile, &splat, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::CameraParams;

    fn setup() -> (Framebuffer, Viewport, CameraParams) {
        (
            Framebuffer::new(64, 64),
            Viewport::new(64, 64),
            CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn centered_point_hits_center_pixel() {
        let (mut fb, vp, cam) = setup();
        let cloud = PointCloudData::new(vec![Vec3::ZERO]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert!(stats.fragments_written > 0);
        assert!(fb.get(32, 32).0 > 0);
    }

    #[test]
    fn point_behind_camera_skipped() {
        let (mut fb, vp, cam) = setup();
        let cloud = PointCloudData::new(vec![Vec3::new(0.0, 0.0, 10.0)]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert_eq!(stats.fragments_written, 0);
    }

    #[test]
    fn nearer_points_splat_larger() {
        let (_, vp, cam) = setup();
        let draw_one = |z: f32| {
            let mut fb = Framebuffer::new(64, 64);
            let mut cloud = PointCloudData::new(vec![Vec3::new(0.0, 0.0, z)]);
            cloud.point_size = 0.2;
            let mut stats = RasterStats::default();
            draw_points(
                &mut fb,
                &vp,
                &vp.clone(),
                &cloud,
                &Mat4::IDENTITY,
                &cam.view_proj(&vp),
                Vec3::X,
                &mut stats,
            );
            stats.fragments_written
        };
        assert!(draw_one(3.0) > draw_one(-3.0), "closer point covers more pixels");
    }

    #[test]
    fn per_point_colors_respected() {
        let (mut fb, vp, cam) = setup();
        let mut cloud =
            PointCloudData::new(vec![Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)]);
        cloud.colors = vec![Vec3::X, Vec3::Y];
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::ONE,
            &mut stats,
        );
        // Left half has a red pixel, right half a green one.
        let mut left_red = false;
        let mut right_green = false;
        for y in 0..64 {
            for x in 0..32 {
                if fb.get(x, y).0 > 128 {
                    left_red = true;
                }
            }
            for x in 32..64 {
                if fb.get(x, y).1 > 128 {
                    right_green = true;
                }
            }
        }
        assert!(left_red && right_green);
    }

    #[test]
    fn tile_clipping_respects_bounds() {
        let (_, vp, cam) = setup();
        // Only render the left half tile; a right-side point must not leak.
        let tile = Viewport::with_origin(0, 0, 32, 64);
        let mut fb = Framebuffer::new(32, 64);
        let cloud = PointCloudData::new(vec![Vec3::new(2.0, 0.0, 0.0)]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &tile,
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert_eq!(fb.coverage(Rgb::BLACK), stats.fragments_written as usize);
    }
}
