//! Point-cloud splatting.

use crate::framebuffer::{Framebuffer, Rgb};
use crate::raster::RasterStats;
use rave_math::{Mat4, Vec3, Viewport};
use rave_scene::PointCloudData;

/// Render a point cloud as screen-space square splats whose size scales
/// with the world-space `point_size` and perspective depth.
#[allow(clippy::too_many_arguments)]
pub fn draw_points(
    fb: &mut Framebuffer,
    full_viewport: &Viewport,
    tile: &Viewport,
    cloud: &PointCloudData,
    model: &Mat4,
    view_proj: &Mat4,
    base_color: Vec3,
    stats: &mut RasterStats,
) {
    let mvp = *view_proj * *model;
    for (i, &p) in cloud.points.iter().enumerate() {
        let clip = mvp.mul_vec4(p.extend(1.0));
        if clip.w <= 1e-5 {
            continue;
        }
        let ndc = clip.perspective_divide();
        if ndc.x < -1.0 || ndc.x > 1.0 || ndc.y < -1.0 || ndc.y > 1.0 || ndc.z < -1.0 || ndc.z > 1.0
        {
            continue;
        }
        let px = full_viewport.ndc_to_pixel(ndc);
        // Splat radius in pixels: world size projected through w.
        let radius = (cloud.point_size * full_viewport.height as f32 / clip.w).clamp(0.5, 16.0);
        let color = if cloud.colors.is_empty() { base_color } else { cloud.colors[i] };
        let rgb = Rgb::from_f32(color.x, color.y, color.z);
        let r = radius.ceil() as i64;
        let (cx, cy) = (px.x as i64, px.y as i64);
        for y in cy - r..=cy + r {
            for x in cx - r..=cx + r {
                if x < tile.x as i64
                    || y < tile.y as i64
                    || x >= (tile.x + tile.width) as i64
                    || y >= (tile.y + tile.height) as i64
                {
                    continue;
                }
                stats.fragments_shaded += 1;
                if fb.set_if_closer((x as u32) - tile.x, (y as u32) - tile.y, rgb, ndc.z) {
                    stats.fragments_written += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::CameraParams;

    fn setup() -> (Framebuffer, Viewport, CameraParams) {
        (
            Framebuffer::new(64, 64),
            Viewport::new(64, 64),
            CameraParams::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn centered_point_hits_center_pixel() {
        let (mut fb, vp, cam) = setup();
        let cloud = PointCloudData::new(vec![Vec3::ZERO]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert!(stats.fragments_written > 0);
        assert!(fb.get(32, 32).0 > 0);
    }

    #[test]
    fn point_behind_camera_skipped() {
        let (mut fb, vp, cam) = setup();
        let cloud = PointCloudData::new(vec![Vec3::new(0.0, 0.0, 10.0)]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert_eq!(stats.fragments_written, 0);
    }

    #[test]
    fn nearer_points_splat_larger() {
        let (_, vp, cam) = setup();
        let draw_one = |z: f32| {
            let mut fb = Framebuffer::new(64, 64);
            let mut cloud = PointCloudData::new(vec![Vec3::new(0.0, 0.0, z)]);
            cloud.point_size = 0.2;
            let mut stats = RasterStats::default();
            draw_points(
                &mut fb,
                &vp,
                &vp.clone(),
                &cloud,
                &Mat4::IDENTITY,
                &cam.view_proj(&vp),
                Vec3::X,
                &mut stats,
            );
            stats.fragments_written
        };
        assert!(draw_one(3.0) > draw_one(-3.0), "closer point covers more pixels");
    }

    #[test]
    fn per_point_colors_respected() {
        let (mut fb, vp, cam) = setup();
        let mut cloud =
            PointCloudData::new(vec![Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)]);
        cloud.colors = vec![Vec3::X, Vec3::Y];
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &vp.clone(),
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::ONE,
            &mut stats,
        );
        // Left half has a red pixel, right half a green one.
        let mut left_red = false;
        let mut right_green = false;
        for y in 0..64 {
            for x in 0..32 {
                if fb.get(x, y).0 > 128 {
                    left_red = true;
                }
            }
            for x in 32..64 {
                if fb.get(x, y).1 > 128 {
                    right_green = true;
                }
            }
        }
        assert!(left_red && right_green);
    }

    #[test]
    fn tile_clipping_respects_bounds() {
        let (_, vp, cam) = setup();
        // Only render the left half tile; a right-side point must not leak.
        let tile = Viewport::with_origin(0, 0, 32, 64);
        let mut fb = Framebuffer::new(32, 64);
        let cloud = PointCloudData::new(vec![Vec3::new(2.0, 0.0, 0.0)]);
        let mut stats = RasterStats::default();
        draw_points(
            &mut fb,
            &vp,
            &tile,
            &cloud,
            &Mat4::IDENTITY,
            &cam.view_proj(&vp),
            Vec3::X,
            &mut stats,
        );
        assert_eq!(fb.coverage(Rgb::BLACK), stats.fragments_written as usize);
    }
}
