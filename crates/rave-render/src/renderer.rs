//! The scene renderer: walk a [`SceneTree`] with a camera and draw every
//! visible node into a framebuffer (or one tile of it).
//!
//! Two engines share one scene walk and one set of per-pixel kernels:
//!
//! - [`Renderer::render`] / [`Renderer::render_tile`] — the **binned
//!   parallel engine**. The walk emits a command stream (projected
//!   triangles, splats, volume casts) instead of drawing immediately;
//!   the framebuffer is split into disjoint row bands and each band
//!   replays the commands that touch it on a rayon worker. Bands never
//!   share pixels, so no locks are needed, and every band replays
//!   commands in walk order, so each pixel sees the exact serial
//!   sequence of depth tests and blends — output is bit-identical to
//!   the reference (property-tested in `tests/proptest_render.rs`).
//! - [`Renderer::render_reference`] / [`Renderer::render_tile_reference`]
//!   — the immediate-mode serial path kept as the correctness baseline
//!   and the `parallel_render` bench's comparison point.
//!
//! Per-tile `RasterStats` from the bands merge with a rayon reduce;
//! [`crate::raster::RasterStats::cost_units`] turns the totals into the
//! measured-cost signal the tile planner feeds back on.

use crate::avatar::avatar_mesh;
use crate::composite::VolumeLayer;
use crate::framebuffer::{Framebuffer, Rgb};
use crate::points::{draw_points, setup_splat, splat_rows, Splat};
use crate::raster::{
    bin_triangle, draw_mesh, raster_tri_rows, setup_screen_tri, ClipVertex, Lighting, RasterStats,
    ScreenTri, W_EPS,
};
use crate::volume::{raycast_rows, raycast_volume, TransferFunction};
use rave_math::{frustum::Containment, Mat4, Vec3, Viewport};
use rave_scene::{CameraParams, MeshData, NodeId, NodeKind, SceneTree, VolumeData};
use rayon::prelude::*;

/// Statistics for one rendered frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderStats {
    pub raster: RasterStats,
    pub nodes_visited: u64,
    pub nodes_culled: u64,
    pub polygons_on_screen: u64,
    pub points_on_screen: u64,
    pub voxels_sampled_nodes: u64,
}

/// One deferred drawing operation. The scene walk bins these instead of
/// touching pixels; row bands replay them in order.
enum Cmd<'a> {
    Tri(ScreenTri),
    Splat(Splat),
    Volume { vol: &'a VolumeData, model: Mat4 },
}

impl Cmd<'_> {
    /// Tile-local half-open row range this command can touch (used to bin
    /// commands to row bands; conservative is fine, wrong is not).
    fn row_range(&self, tile: &Viewport) -> (i64, i64) {
        match self {
            Cmd::Tri(t) => (t.min_y - tile.y as i64, t.max_y - tile.y as i64 + 1),
            Cmd::Splat(s) => (
                (s.cy - s.r).max(tile.y as i64) - tile.y as i64,
                (s.cy + s.r).min((tile.y + tile.height) as i64 - 1) - tile.y as i64 + 1,
            ),
            Cmd::Volume { .. } => (0, tile.height as i64),
        }
    }
}

/// Frame renderer. Holds the style configuration (lighting, background,
/// volume transfer function) and scratch state reused across frames.
#[derive(Debug, Clone)]
pub struct Renderer {
    pub lighting: Lighting,
    pub background: Rgb,
    pub transfer: TransferFunction,
    /// Ray-march steps per volume (quality/cost knob).
    pub volume_steps: u32,
    /// Fallback material for meshes without vertex colors.
    pub default_material: Vec3,
    /// When set, this node (and its subtree) is skipped — a render
    /// service does not draw the avatar of the very client it renders for
    /// (you don't see your own head).
    pub skip_subtree: Option<NodeId>,
}

impl Default for Renderer {
    fn default() -> Self {
        Self {
            lighting: Lighting::default(),
            background: Rgb(24, 24, 32),
            transfer: TransferFunction::default(),
            volume_steps: 48,
            default_material: Vec3::new(0.75, 0.75, 0.78),
            skip_subtree: None,
        }
    }
}

impl Renderer {
    /// Render the whole viewport with the binned parallel engine.
    pub fn render(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        let vp = fb.viewport();
        self.render_tile(tree, camera, &vp, &vp.clone(), fb)
    }

    /// Render the whole viewport with the serial immediate-mode reference
    /// path (no binning, no threads). The parallel engine is verified
    /// bit-identical against this.
    pub fn render_reference(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        let vp = fb.viewport();
        self.render_tile_reference(tree, camera, &vp, &vp.clone(), fb)
    }

    /// Render one `tile` of the image defined by `full_viewport` into a
    /// tile-sized framebuffer. Rendering each tile of a split and
    /// stitching reproduces the full render bit-exactly (tested in
    /// `raster`): the property that makes framebuffer distribution
    /// transparent.
    ///
    /// Binned parallel engine: walk → command stream → row bands replay
    /// on rayon workers. Same output as
    /// [`Renderer::render_tile_reference`], bit for bit.
    pub fn render_tile(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        assert_eq!((fb.width(), fb.height()), (tile.width, tile.height), "tile buffer size");
        fb.clear(self.background);
        let view_proj = camera.view_proj(full_viewport);

        // Phase 1 (serial walk, parallel vertex stage): bin the scene
        // into a command stream in walk order.
        let mut cmds: Vec<Cmd<'_>> = Vec::new();
        let mut stats = self.walk_and_bin(tree, camera, full_viewport, tile, &view_proj, &mut cmds);

        // Phase 2: assign commands to disjoint row bands. A command lands
        // in every band its row range overlaps; band count tracks the
        // worker count so contiguous chunking gives one band per worker.
        let bands = fb.row_bands(rayon::current_num_threads().min(u32::MAX as usize) as u32);
        let mut bins: Vec<Vec<u32>> = (0..bands.len()).map(|_| Vec::new()).collect();
        for (ci, cmd) in cmds.iter().enumerate() {
            let (lo, hi) = cmd.row_range(tile);
            for (bin, band) in bins.iter_mut().zip(&bands) {
                if lo < band.y_end() as i64 && hi > band.y_start() as i64 {
                    bin.push(ci as u32);
                }
            }
        }

        // Phase 3: replay each band's commands in walk order on rayon
        // workers. Bands own disjoint framebuffer rows (no locks); each
        // pixel sees the same op sequence as a serial draw, so depth-test
        // ties and volume blends resolve identically. Fragment counters
        // merge with a deterministic reduce.
        let cmds = &cmds;
        let frag = bands
            .into_iter()
            .zip(bins)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut band, bin)| {
                let mut s = RasterStats::default();
                for &ci in &bin {
                    match &cmds[ci as usize] {
                        Cmd::Tri(tri) => raster_tri_rows(&mut band, tile, tri, &mut s),
                        Cmd::Splat(sp) => splat_rows(&mut band, tile, sp, &mut s),
                        Cmd::Volume { vol, model } => raycast_rows(
                            &mut band,
                            full_viewport,
                            tile,
                            vol,
                            model,
                            &view_proj,
                            camera.position,
                            &self.transfer,
                            self.volume_steps,
                            &mut s,
                        ),
                    }
                }
                s
            })
            .reduce(RasterStats::default, RasterStats::merged);
        stats.raster.accumulate(&frag);
        stats
    }

    /// The shared scene walk, emitting commands instead of pixels.
    /// Triangle/splat setup already runs here (clip + project), so the
    /// replay phase is pure rasterization.
    fn walk_and_bin<'a>(
        &self,
        tree: &'a SceneTree,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
        view_proj: &Mat4,
        cmds: &mut Vec<Cmd<'a>>,
    ) -> RenderStats {
        let mut stats = RenderStats::default();
        let frustum = camera.frustum(full_viewport);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if self.skip_subtree == Some(id) {
                continue;
            }
            let Some(node) = tree.node(id) else { continue };
            stats.nodes_visited += 1;

            let bounds = tree.world_bounds(id);
            if !bounds.is_empty() && frustum.classify(&bounds) == Containment::Outside {
                stats.nodes_culled += 1;
                continue;
            }
            stack.extend(node.children().rev());

            let model = tree.world_transform(id);
            match node.kind() {
                NodeKind::Group | NodeKind::Camera(_) => {}
                NodeKind::Mesh(mesh) => {
                    stats.polygons_on_screen += mesh.triangle_count();
                    self.bin_mesh(
                        cmds,
                        full_viewport,
                        tile,
                        mesh,
                        &model,
                        view_proj,
                        self.default_material,
                        &mut stats.raster,
                    );
                }
                NodeKind::PointCloud(cloud) => {
                    stats.points_on_screen += cloud.point_count();
                    let mvp = *view_proj * model;
                    for i in 0..cloud.points.len() {
                        if let Some(s) =
                            setup_splat(full_viewport, cloud, i, &mvp, self.default_material)
                        {
                            cmds.push(Cmd::Splat(s));
                        }
                    }
                }
                NodeKind::Volume(vol) => {
                    stats.voxels_sampled_nodes += 1;
                    cmds.push(Cmd::Volume { vol, model });
                }
                NodeKind::Avatar(info) => {
                    let mesh = avatar_mesh(info);
                    stats.polygons_on_screen += mesh.triangle_count();
                    self.bin_mesh(
                        cmds,
                        full_viewport,
                        tile,
                        &mesh,
                        &model,
                        view_proj,
                        info.color,
                        &mut stats.raster,
                    );
                }
            }
        }
        stats
    }

    /// Vertex stage + triangle setup for one mesh. Each vertex is
    /// transformed and shaded exactly once (the reference path re-runs
    /// the vertex stage per triangle corner — same expressions, so the
    /// cached values are bit-identical); large meshes split the vertex
    /// stage across rayon workers in order-preserving chunks.
    #[allow(clippy::too_many_arguments)]
    fn bin_mesh<'a>(
        &self,
        cmds: &mut Vec<Cmd<'a>>,
        full_viewport: &Viewport,
        tile: &Viewport,
        mesh: &MeshData,
        model: &Mat4,
        view_proj: &Mat4,
        base_color: Vec3,
        stats: &mut RasterStats,
    ) {
        let mvp = *view_proj * *model;
        let lighting = &self.lighting;
        // Each vertex carries its clip-space form plus, when it clears the
        // near guard, its screen projection — computed once here with the
        // same expression `bin_triangle` would use per corner, so the
        // cached value is bit-identical.
        let vertex = |i: usize| -> (ClipVertex, Option<(Vec3, Vec3)>) {
            let pos = mesh.positions[i];
            let normal = if mesh.normals.is_empty() {
                Vec3::Z
            } else {
                model.transform_dir(mesh.normals[i]).normalized()
            };
            let base = if mesh.colors.is_empty() { base_color } else { mesh.colors[i] };
            let v = ClipVertex {
                clip: mvp.mul_vec4(pos.extend(1.0)),
                color: lighting.shade(base, normal),
            };
            let proj = (v.clip.w >= W_EPS)
                .then(|| (full_viewport.ndc_to_pixel(v.clip.perspective_divide()), v.color));
            (v, proj)
        };
        let n = mesh.positions.len();
        let verts: Vec<(ClipVertex, Option<(Vec3, Vec3)>)> =
            if rayon::current_num_threads() > 1 && n >= 4096 {
                (0..n).into_par_iter().map(vertex).collect()
            } else {
                (0..n).map(vertex).collect()
            };
        cmds.reserve(mesh.triangles.len());
        for t in &mesh.triangles {
            let [i0, i1, i2] = [t[0] as usize, t[1] as usize, t[2] as usize];
            if let (Some(p0), Some(p1), Some(p2)) = (verts[i0].1, verts[i1].1, verts[i2].1) {
                // All corners in front of the near guard: the clip sweep
                // would pass the triangle through unchanged, so set up
                // straight from the cached projections.
                stats.triangles_submitted += 1;
                if let Some(tri) = setup_screen_tri(tile, p0, p1, p2, stats) {
                    cmds.push(Cmd::Tri(tri));
                }
            } else {
                bin_triangle(
                    full_viewport,
                    tile,
                    verts[i0].0,
                    verts[i1].0,
                    verts[i2].0,
                    stats,
                    &mut |tri| cmds.push(Cmd::Tri(tri)),
                );
            }
        }
    }

    /// Serial immediate-mode tile render (the original code path): draws
    /// node by node with per-triangle clipping and no command stream.
    pub fn render_tile_reference(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        assert_eq!((fb.width(), fb.height()), (tile.width, tile.height), "tile buffer size");
        fb.clear(self.background);
        let mut stats = RenderStats::default();
        let view_proj = camera.view_proj(full_viewport);
        let frustum = camera.frustum(full_viewport);

        // Iterative pre-order walk with subtree culling.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if self.skip_subtree == Some(id) {
                continue;
            }
            let Some(node) = tree.node(id) else { continue };
            stats.nodes_visited += 1;

            // Cull whole subtrees by world bounds.
            let bounds = tree.world_bounds(id);
            if !bounds.is_empty() && frustum.classify(&bounds) == Containment::Outside {
                stats.nodes_culled += 1;
                continue;
            }
            stack.extend(node.children().rev());

            let model = tree.world_transform(id);
            match node.kind() {
                NodeKind::Group | NodeKind::Camera(_) => {}
                NodeKind::Mesh(mesh) => {
                    stats.polygons_on_screen += mesh.triangle_count();
                    draw_mesh(
                        fb,
                        full_viewport,
                        tile,
                        mesh,
                        &model,
                        &view_proj,
                        &self.lighting,
                        self.default_material,
                        &mut stats.raster,
                    );
                }
                NodeKind::PointCloud(cloud) => {
                    stats.points_on_screen += cloud.point_count();
                    draw_points(
                        fb,
                        full_viewport,
                        tile,
                        cloud,
                        &model,
                        &view_proj,
                        self.default_material,
                        &mut stats.raster,
                    );
                }
                NodeKind::Volume(vol) => {
                    stats.voxels_sampled_nodes += 1;
                    raycast_volume(
                        fb,
                        full_viewport,
                        tile,
                        vol,
                        &model,
                        &view_proj,
                        camera.position,
                        &self.transfer,
                        self.volume_steps,
                        &mut stats.raster,
                    );
                }
                NodeKind::Avatar(info) => {
                    let mesh = avatar_mesh(info);
                    stats.polygons_on_screen += mesh.triangle_count();
                    draw_mesh(
                        fb,
                        full_viewport,
                        tile,
                        &mesh,
                        &model,
                        &view_proj,
                        &self.lighting,
                        info.color,
                        &mut stats.raster,
                    );
                }
            }
        }
        stats
    }

    /// Render only the volume content into an RGBA layer for distributed
    /// volume compositing (§6): returns the layer tagged with the volume
    /// subtree's mean view distance.
    pub fn render_volume_layer(
        &self,
        tree: &SceneTree,
        volume_node: NodeId,
        camera: &CameraParams,
        viewport: &Viewport,
    ) -> Option<VolumeLayer> {
        let node = tree.node(volume_node)?;
        let NodeKind::Volume(vol) = node.kind() else { return None };
        let mut fb = Framebuffer::new(viewport.width, viewport.height);
        fb.clear(Rgb::BLACK);
        let mut stats = RasterStats::default();
        let model = tree.world_transform(volume_node);
        raycast_volume(
            &mut fb,
            viewport,
            viewport,
            vol,
            &model,
            &camera.view_proj(viewport),
            camera.position,
            &self.transfer,
            self.volume_steps,
            &mut stats,
        );
        // Approximate alpha: luminance of the layer (the raycaster wrote
        // premultiplied color over black).
        let color = (0..viewport.pixel_count())
            .map(|i| {
                let x = i as u32 % viewport.width;
                let y = i as u32 / viewport.width;
                let c = fb.get(x, y);
                let a = if c == Rgb::BLACK { 0.0 } else { 1.0f32.min(fb_lum(c) * 2.0) };
                [c.0 as f32 / 255.0, c.1 as f32 / 255.0, c.2 as f32 / 255.0, a]
            })
            .collect();
        let dist = tree.world_bounds(volume_node).center().distance(camera.position);
        Some(VolumeLayer {
            color,
            view_distance: dist,
            width: viewport.width,
            height: viewport.height,
        })
    }
}

fn fb_lum(c: Rgb) -> f32 {
    (0.299 * c.0 as f32 + 0.587 * c.1 as f32 + 0.114 * c.2 as f32) / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{AvatarInfo, MeshData, Transform};
    use std::sync::Arc;

    fn scene_with_triangle() -> (SceneTree, CameraParams) {
        let mut tree = SceneTree::new();
        let mesh = MeshData::new(
            vec![Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            vec![[0, 1, 2]],
        );
        tree.add_node(tree.root(), "tri", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        (tree, cam)
    }

    /// Mesh + point cloud + volume under one root: exercises every
    /// command kind in one frame.
    fn mixed_scene() -> (SceneTree, CameraParams) {
        let (mut tree, cam) = scene_with_triangle();
        let mut cloud = rave_scene::PointCloudData::new(vec![
            Vec3::new(-0.8, 0.6, 0.2),
            Vec3::new(0.7, -0.5, -0.3),
            Vec3::new(0.1, 0.8, 0.0),
        ]);
        cloud.point_size = 0.05;
        tree.add_node(tree.root(), "cloud", NodeKind::PointCloud(Arc::new(cloud))).unwrap();
        let n = 8u32;
        let mut voxels = vec![0u8; (n * n * n) as usize];
        for (i, v) in voxels.iter_mut().enumerate() {
            *v = ((i * 37) % 256) as u8;
        }
        let vol = rave_scene::VolumeData::new([n, n, n], Vec3::splat(0.2), voxels);
        let vid = tree.add_node(tree.root(), "vol", NodeKind::Volume(Arc::new(vol))).unwrap();
        tree.set_transform(vid, Transform::from_translation(Vec3::new(0.3, -0.2, 0.5)));
        (tree, cam)
    }

    #[test]
    fn renders_scene_content() {
        let (tree, cam) = scene_with_triangle();
        let mut fb = Framebuffer::new(64, 64);
        let r = Renderer::default();
        let stats = r.render(&tree, &cam, &mut fb);
        assert!(stats.raster.fragments_written > 100);
        assert_eq!(stats.polygons_on_screen, 1);
        assert!(fb.coverage(r.background) > 100);
    }

    #[test]
    fn culls_out_of_view_subtrees() {
        let (mut tree, cam) = scene_with_triangle();
        let far = tree
            .add_node(
                tree.root(),
                "far",
                NodeKind::Mesh(Arc::new(MeshData::new(
                    vec![Vec3::ZERO, Vec3::X, Vec3::Y],
                    vec![[0, 1, 2]],
                ))),
            )
            .unwrap();
        tree.set_transform(far, Transform::from_translation(Vec3::new(1e5, 0.0, 0.0)));
        let mut fb = Framebuffer::new(32, 32);
        let stats = Renderer::default().render(&tree, &cam, &mut fb);
        assert!(stats.nodes_culled >= 1);
        // Culled node's polygon not counted on-screen.
        assert_eq!(stats.polygons_on_screen, 1);
    }

    #[test]
    fn avatar_visible_to_other_user_but_not_self() {
        let mut tree = SceneTree::new();
        let avatar_cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO, Vec3::Y);
        let av = tree
            .add_node(
                tree.root(),
                "avatar-desktop",
                NodeKind::Avatar(AvatarInfo {
                    label: "Desktop".into(),
                    color: Vec3::new(1.0, 0.2, 0.1),
                    camera: avatar_cam,
                }),
            )
            .unwrap();
        let observer = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);

        let mut fb = Framebuffer::new(64, 64);
        let mut r = Renderer::default();
        let stats = r.render(&tree, &observer, &mut fb);
        assert!(stats.raster.fragments_written > 0, "observer sees the avatar");

        r.skip_subtree = Some(av);
        let mut fb2 = Framebuffer::new(64, 64);
        let stats2 = r.render(&tree, &observer, &mut fb2);
        assert_eq!(stats2.raster.fragments_written, 0, "owner's own avatar skipped");
    }

    #[test]
    fn transform_chain_moves_rendering() {
        let (mut tree, cam) = scene_with_triangle();
        let tri = tree.find_by_path("/tri").unwrap();
        let mut fb_before = Framebuffer::new(64, 64);
        let r = Renderer::default();
        r.render(&tree, &cam, &mut fb_before);
        tree.set_transform(tri, Transform::from_translation(Vec3::new(0.6, 0.0, 0.0)));
        let mut fb_after = Framebuffer::new(64, 64);
        r.render(&tree, &cam, &mut fb_after);
        assert!(fb_before.diff_fraction(&fb_after, 0.0) > 0.05, "image changed");
    }

    #[test]
    fn tile_render_matches_full_render() {
        let (tree, cam) = scene_with_triangle();
        let r = Renderer::default();
        let mut full = Framebuffer::new(60, 60);
        r.render(&tree, &cam, &mut full);

        let vp = Viewport::new(60, 60);
        let mut stitched = Framebuffer::new(60, 60);
        for tile in vp.split_tiles(3, 2) {
            let mut tf = Framebuffer::new(tile.width, tile.height);
            r.render_tile(&tree, &cam, &vp, &tile, &mut tf);
            stitched.blit(&tf, tile.x, tile.y);
        }
        assert_eq!(full.diff_fraction(&stitched, 0.0), 0.0);
    }

    #[test]
    fn empty_scene_renders_background_only() {
        let tree = SceneTree::new();
        let cam = CameraParams::default();
        let mut fb = Framebuffer::new(16, 16);
        let r = Renderer::default();
        let stats = r.render(&tree, &cam, &mut fb);
        assert_eq!(stats.raster.fragments_written, 0);
        assert_eq!(fb.coverage(r.background), 0);
    }

    /// THE parallel-engine invariant: binned replay equals the serial
    /// immediate-mode reference — pixels, depths, and stats — at several
    /// thread counts, on a scene exercising every command kind.
    #[test]
    fn binned_engine_bit_identical_to_reference() {
        let (tree, cam) = mixed_scene();
        let r = Renderer::default();
        let mut reference = Framebuffer::new(72, 56);
        let ref_stats = r.render_reference(&tree, &cam, &mut reference);

        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut fb = Framebuffer::new(72, 56);
            let stats = pool.install(|| r.render(&tree, &cam, &mut fb));
            assert_eq!(
                reference.diff_fraction(&fb, 0.0),
                0.0,
                "pixels differ at {threads} threads"
            );
            for y in 0..56 {
                for x in 0..72 {
                    assert_eq!(
                        reference.depth_at(x, y).to_bits(),
                        fb.depth_at(x, y).to_bits(),
                        "depth differs at ({x},{y}) with {threads} threads"
                    );
                }
            }
            assert_eq!(stats.raster, ref_stats.raster, "stats differ at {threads} threads");
        }
    }

    #[test]
    fn binned_tiles_match_reference_tiles() {
        let (tree, cam) = mixed_scene();
        let r = Renderer::default();
        let vp = Viewport::new(64, 48);
        for tile in vp.split_tiles(2, 2) {
            let mut a = Framebuffer::new(tile.width, tile.height);
            let mut b = Framebuffer::new(tile.width, tile.height);
            r.render_tile(&tree, &cam, &vp, &tile, &mut a);
            r.render_tile_reference(&tree, &cam, &vp, &tile, &mut b);
            assert_eq!(a.diff_fraction(&b, 0.0), 0.0, "tile {tile:?}");
        }
    }
}
