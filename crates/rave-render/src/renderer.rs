//! The scene renderer: walk a [`SceneTree`] with a camera and draw every
//! visible node into a framebuffer (or one tile of it).

use crate::avatar::avatar_mesh;
use crate::composite::VolumeLayer;
use crate::framebuffer::{Framebuffer, Rgb};
use crate::points::draw_points;
use crate::raster::{draw_mesh, Lighting, RasterStats};
use crate::volume::{raycast_volume, TransferFunction};
use rave_math::{frustum::Containment, Vec3, Viewport};
use rave_scene::{CameraParams, NodeId, NodeKind, SceneTree};

/// Statistics for one rendered frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderStats {
    pub raster: RasterStats,
    pub nodes_visited: u64,
    pub nodes_culled: u64,
    pub polygons_on_screen: u64,
    pub points_on_screen: u64,
    pub voxels_sampled_nodes: u64,
}

/// Frame renderer. Holds the style configuration (lighting, background,
/// volume transfer function) and scratch state reused across frames.
#[derive(Debug, Clone)]
pub struct Renderer {
    pub lighting: Lighting,
    pub background: Rgb,
    pub transfer: TransferFunction,
    /// Ray-march steps per volume (quality/cost knob).
    pub volume_steps: u32,
    /// Fallback material for meshes without vertex colors.
    pub default_material: Vec3,
    /// When set, this node (and its subtree) is skipped — a render
    /// service does not draw the avatar of the very client it renders for
    /// (you don't see your own head).
    pub skip_subtree: Option<NodeId>,
}

impl Default for Renderer {
    fn default() -> Self {
        Self {
            lighting: Lighting::default(),
            background: Rgb(24, 24, 32),
            transfer: TransferFunction::default(),
            volume_steps: 48,
            default_material: Vec3::new(0.75, 0.75, 0.78),
            skip_subtree: None,
        }
    }
}

impl Renderer {
    /// Render the whole viewport.
    pub fn render(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        let vp = fb.viewport();
        self.render_tile(tree, camera, &vp, &vp.clone(), fb)
    }

    /// Render one `tile` of the image defined by `full_viewport` into a
    /// tile-sized framebuffer. Rendering each tile of a split and
    /// stitching reproduces the full render bit-exactly (tested in
    /// `raster`): the property that makes framebuffer distribution
    /// transparent.
    pub fn render_tile(
        &self,
        tree: &SceneTree,
        camera: &CameraParams,
        full_viewport: &Viewport,
        tile: &Viewport,
        fb: &mut Framebuffer,
    ) -> RenderStats {
        assert_eq!((fb.width(), fb.height()), (tile.width, tile.height), "tile buffer size");
        fb.clear(self.background);
        let mut stats = RenderStats::default();
        let view_proj = camera.view_proj(full_viewport);
        let frustum = camera.frustum(full_viewport);

        // Iterative pre-order walk with subtree culling.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if self.skip_subtree == Some(id) {
                continue;
            }
            let Some(node) = tree.node(id) else { continue };
            stats.nodes_visited += 1;

            // Cull whole subtrees by world bounds.
            let bounds = tree.world_bounds(id);
            if !bounds.is_empty() && frustum.classify(&bounds) == Containment::Outside {
                stats.nodes_culled += 1;
                continue;
            }
            stack.extend(node.children.iter().rev().copied());

            let model = tree.world_transform(id);
            match &node.kind {
                NodeKind::Group | NodeKind::Camera(_) => {}
                NodeKind::Mesh(mesh) => {
                    stats.polygons_on_screen += mesh.triangle_count();
                    draw_mesh(
                        fb,
                        full_viewport,
                        tile,
                        mesh,
                        &model,
                        &view_proj,
                        &self.lighting,
                        self.default_material,
                        &mut stats.raster,
                    );
                }
                NodeKind::PointCloud(cloud) => {
                    stats.points_on_screen += cloud.point_count();
                    draw_points(
                        fb,
                        full_viewport,
                        tile,
                        cloud,
                        &model,
                        &view_proj,
                        self.default_material,
                        &mut stats.raster,
                    );
                }
                NodeKind::Volume(vol) => {
                    stats.voxels_sampled_nodes += 1;
                    raycast_volume(
                        fb,
                        full_viewport,
                        tile,
                        vol,
                        &model,
                        &view_proj,
                        camera.position,
                        &self.transfer,
                        self.volume_steps,
                        &mut stats.raster,
                    );
                }
                NodeKind::Avatar(info) => {
                    let mesh = avatar_mesh(info);
                    stats.polygons_on_screen += mesh.triangle_count();
                    draw_mesh(
                        fb,
                        full_viewport,
                        tile,
                        &mesh,
                        &model,
                        &view_proj,
                        &self.lighting,
                        info.color,
                        &mut stats.raster,
                    );
                }
            }
        }
        stats
    }

    /// Render only the volume content into an RGBA layer for distributed
    /// volume compositing (§6): returns the layer tagged with the volume
    /// subtree's mean view distance.
    pub fn render_volume_layer(
        &self,
        tree: &SceneTree,
        volume_node: NodeId,
        camera: &CameraParams,
        viewport: &Viewport,
    ) -> Option<VolumeLayer> {
        let node = tree.node(volume_node)?;
        let NodeKind::Volume(vol) = &node.kind else { return None };
        let mut fb = Framebuffer::new(viewport.width, viewport.height);
        fb.clear(Rgb::BLACK);
        let mut stats = RasterStats::default();
        let model = tree.world_transform(volume_node);
        raycast_volume(
            &mut fb,
            viewport,
            viewport,
            vol,
            &model,
            &camera.view_proj(viewport),
            camera.position,
            &self.transfer,
            self.volume_steps,
            &mut stats,
        );
        // Approximate alpha: luminance of the layer (the raycaster wrote
        // premultiplied color over black).
        let color = (0..viewport.pixel_count())
            .map(|i| {
                let x = i as u32 % viewport.width;
                let y = i as u32 / viewport.width;
                let c = fb.get(x, y);
                let a = if c == Rgb::BLACK { 0.0 } else { 1.0f32.min(fb_lum(c) * 2.0) };
                [c.0 as f32 / 255.0, c.1 as f32 / 255.0, c.2 as f32 / 255.0, a]
            })
            .collect();
        let dist = tree.world_bounds(volume_node).center().distance(camera.position);
        Some(VolumeLayer {
            color,
            view_distance: dist,
            width: viewport.width,
            height: viewport.height,
        })
    }
}

fn fb_lum(c: Rgb) -> f32 {
    (0.299 * c.0 as f32 + 0.587 * c.1 as f32 + 0.114 * c.2 as f32) / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rave_scene::{AvatarInfo, MeshData, Transform};
    use std::sync::Arc;

    fn scene_with_triangle() -> (SceneTree, CameraParams) {
        let mut tree = SceneTree::new();
        let mesh = MeshData::new(
            vec![Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            vec![[0, 1, 2]],
        );
        tree.add_node(tree.root(), "tri", NodeKind::Mesh(Arc::new(mesh))).unwrap();
        let cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);
        (tree, cam)
    }

    #[test]
    fn renders_scene_content() {
        let (tree, cam) = scene_with_triangle();
        let mut fb = Framebuffer::new(64, 64);
        let r = Renderer::default();
        let stats = r.render(&tree, &cam, &mut fb);
        assert!(stats.raster.fragments_written > 100);
        assert_eq!(stats.polygons_on_screen, 1);
        assert!(fb.coverage(r.background) > 100);
    }

    #[test]
    fn culls_out_of_view_subtrees() {
        let (mut tree, cam) = scene_with_triangle();
        let far = tree
            .add_node(
                tree.root(),
                "far",
                NodeKind::Mesh(Arc::new(MeshData::new(
                    vec![Vec3::ZERO, Vec3::X, Vec3::Y],
                    vec![[0, 1, 2]],
                ))),
            )
            .unwrap();
        tree.set_transform(far, Transform::from_translation(Vec3::new(1e5, 0.0, 0.0)));
        let mut fb = Framebuffer::new(32, 32);
        let stats = Renderer::default().render(&tree, &cam, &mut fb);
        assert!(stats.nodes_culled >= 1);
        // Culled node's polygon not counted on-screen.
        assert_eq!(stats.polygons_on_screen, 1);
    }

    #[test]
    fn avatar_visible_to_other_user_but_not_self() {
        let mut tree = SceneTree::new();
        let avatar_cam = CameraParams::look_at(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO, Vec3::Y);
        let av = tree
            .add_node(
                tree.root(),
                "avatar-desktop",
                NodeKind::Avatar(AvatarInfo {
                    label: "Desktop".into(),
                    color: Vec3::new(1.0, 0.2, 0.1),
                    camera: avatar_cam,
                }),
            )
            .unwrap();
        let observer = CameraParams::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y);

        let mut fb = Framebuffer::new(64, 64);
        let mut r = Renderer::default();
        let stats = r.render(&tree, &observer, &mut fb);
        assert!(stats.raster.fragments_written > 0, "observer sees the avatar");

        r.skip_subtree = Some(av);
        let mut fb2 = Framebuffer::new(64, 64);
        let stats2 = r.render(&tree, &observer, &mut fb2);
        assert_eq!(stats2.raster.fragments_written, 0, "owner's own avatar skipped");
    }

    #[test]
    fn transform_chain_moves_rendering() {
        let (mut tree, cam) = scene_with_triangle();
        let tri = tree.find_by_path("/tri").unwrap();
        let mut fb_before = Framebuffer::new(64, 64);
        let r = Renderer::default();
        r.render(&tree, &cam, &mut fb_before);
        tree.set_transform(tri, Transform::from_translation(Vec3::new(0.6, 0.0, 0.0)));
        let mut fb_after = Framebuffer::new(64, 64);
        r.render(&tree, &cam, &mut fb_after);
        assert!(fb_before.diff_fraction(&fb_after, 0.0) > 0.05, "image changed");
    }

    #[test]
    fn tile_render_matches_full_render() {
        let (tree, cam) = scene_with_triangle();
        let r = Renderer::default();
        let mut full = Framebuffer::new(60, 60);
        r.render(&tree, &cam, &mut full);

        let vp = Viewport::new(60, 60);
        let mut stitched = Framebuffer::new(60, 60);
        for tile in vp.split_tiles(3, 2) {
            let mut tf = Framebuffer::new(tile.width, tile.height);
            r.render_tile(&tree, &cam, &vp, &tile, &mut tf);
            stitched.blit(&tf, tile.x, tile.y);
        }
        assert_eq!(full.diff_fraction(&stitched, 0.0), 0.0);
    }

    #[test]
    fn empty_scene_renders_background_only() {
        let tree = SceneTree::new();
        let cam = CameraParams::default();
        let mut fb = Framebuffer::new(16, 16);
        let r = Renderer::default();
        let stats = r.render(&tree, &cam, &mut fb);
        assert_eq!(stats.raster.fragments_written, 0);
        assert_eq!(fb.coverage(r.background), 0);
    }
}
