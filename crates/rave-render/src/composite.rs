//! Compositing distributed render results.
//!
//! Two schemes, matching §3.2.5:
//!
//! - **Depth compositing** (dataset distribution): each assisting service
//!   renders *its scene subset* over the full viewport and ships color +
//!   depth; the owner merges per pixel by nearest depth. "Compositing is
//!   currently restricted to opaque solids, as this does not require any
//!   specific ordering of frame buffers."
//! - **Tile stitching** (framebuffer distribution): each assistant renders
//!   a *tile* of the viewport; the owner blits tiles into place. Stale
//!   tiles produce the tearing of Fig 5, quantified here by
//!   [`seam_discontinuity`].
//! - **Ordered alpha blending** (volume subsets, §6 future work —
//!   implemented as an extension): layers sorted by view distance and
//!   alpha-blended back-to-front.

use crate::framebuffer::{Framebuffer, Rgb};
use rave_math::Viewport;
use rayon::prelude::*;

/// Number of row bands the compositors split a target into: a few per
/// worker for load balance, never more than the row count. The output is
/// bit-identical for any band count — bands only partition the pixels.
fn band_count(height: u32) -> u32 {
    (rayon::current_num_threads() as u32 * 2).clamp(1, height)
}

/// Merge `sources` into `dst` by per-pixel depth test (all buffers must be
/// the full viewport size). The merge is order-independent for opaque
/// content — asserted by the tests.
///
/// Band-parallel: `dst` splits into contiguous row bands and every band
/// sweeps all sources over matching contiguous slices — no per-pixel
/// `get`/`set` calls, no locks. Per pixel, sources apply in argument
/// order, exactly like the serial loop.
pub fn depth_composite(dst: &mut Framebuffer, sources: &[&Framebuffer]) {
    for src in sources {
        assert_eq!(
            (src.width(), src.height()),
            (dst.width(), dst.height()),
            "depth compositing requires aligned full-viewport buffers"
        );
    }
    let w = dst.width() as usize;
    dst.row_bands(band_count(dst.height())).into_par_iter().for_each(|mut band| {
        let row0 = band.y_start() as usize;
        let (dc, dz) = band.planes_mut();
        for src in sources {
            let sc = &src.color_pixels()[row0 * w..row0 * w + dc.len()];
            let sz = &src.depth_pixels()[row0 * w..row0 * w + dz.len()];
            for i in 0..dc.len() {
                let z = sz[i];
                if z < 1.0 && z < dz[i] {
                    dc[i] = sc[i];
                    dz[i] = z;
                }
            }
        }
    });
}

/// Stitch tiles into `dst`. Each entry pairs the tile's viewport placement
/// with its rendered buffer.
///
/// Band-parallel: each row band of `dst` copies the intersecting rows of
/// every tile with contiguous slice copies. Tiles never overlap a pixel
/// (enforced by the planner), so the result matches sequential blits.
pub fn stitch_tiles(dst: &mut Framebuffer, tiles: &[(Viewport, &Framebuffer)]) {
    for (vp, fb) in tiles {
        assert_eq!((fb.width(), fb.height()), (vp.width, vp.height), "tile size mismatch");
        assert!(
            vp.x + vp.width <= dst.width() && vp.y + vp.height <= dst.height(),
            "tile outside target"
        );
    }
    dst.row_bands(band_count(dst.height())).into_par_iter().for_each(|mut band| {
        for (vp, fb) in tiles {
            let y0 = vp.y.max(band.y_start());
            let y1 = (vp.y + vp.height).min(band.y_end());
            let n = vp.width as usize;
            for y in y0..y1 {
                let s0 = ((y - vp.y) as usize) * n;
                band.color_row_mut(y, vp.x, vp.x + vp.width)
                    .copy_from_slice(&fb.color_pixels()[s0..s0 + n]);
                band.depth_row_mut(y, vp.x, vp.x + vp.width)
                    .copy_from_slice(&fb.depth_pixels()[s0..s0 + n]);
            }
        }
    });
}

/// An RGBA + depth layer from a volume-subset render, tagged with its
/// mean view distance for ordering.
pub struct VolumeLayer {
    pub color: Vec<[f32; 4]>,
    pub view_distance: f32,
    pub width: u32,
    pub height: u32,
}

/// Blend volume layers back-to-front (farthest first) into `dst` over its
/// current contents — the Visapult-style distributed volume composite.
///
/// Band-parallel: after the (serial) distance sort, each row band of
/// `dst` applies every layer in view order over contiguous slices. Each
/// pixel sees the same layer sequence as the serial loop, so the image
/// is bit-identical. Bright overlapping layers can push `r + bg*(1-a)`
/// past 1.0; channels saturate to 1.0 before quantization instead of
/// wrapping (regression-tested below).
pub fn blend_volume_layers(dst: &mut Framebuffer, layers: &mut [VolumeLayer]) {
    layers.sort_by(|a, b| b.view_distance.total_cmp(&a.view_distance));
    let layers: &[VolumeLayer] = layers;
    for layer in layers {
        assert_eq!((layer.width, layer.height), (dst.width(), dst.height()));
    }
    let w = dst.width() as usize;
    dst.row_bands(band_count(dst.height())).into_par_iter().for_each(|mut band| {
        let row0 = band.y_start() as usize;
        let (dc, _) = band.planes_mut();
        for layer in layers.iter() {
            let src = &layer.color[row0 * w..row0 * w + dc.len()];
            for (px, &[r, g, b, a]) in dc.iter_mut().zip(src) {
                if a <= 0.0 {
                    continue;
                }
                let out = [
                    (r + px.0 as f32 / 255.0 * (1.0 - a)).min(1.0),
                    (g + px.1 as f32 / 255.0 * (1.0 - a)).min(1.0),
                    (b + px.2 as f32 / 255.0 * (1.0 - a)).min(1.0),
                ];
                *px = Rgb::from_f32(out[0], out[1], out[2]);
            }
        }
    });
}

/// Mean color discontinuity across the seam between two horizontally
/// adjacent tiles in a stitched image: the average RGB distance between
/// the last column of the left tile and the first column of the right
/// tile, minus the same statistic one column *inside* the left tile
/// (which calibrates for natural image gradients). Large values indicate
/// tearing (Fig 5).
pub fn seam_discontinuity(stitched: &Framebuffer, seam_x: u32) -> f32 {
    assert!(seam_x > 1 && seam_x < stitched.width());
    let mut seam_delta = 0.0;
    let mut interior_delta = 0.0;
    for y in 0..stitched.height() {
        seam_delta += stitched.get(seam_x - 1, y).distance(stitched.get(seam_x, y));
        interior_delta += stitched.get(seam_x - 2, y).distance(stitched.get(seam_x - 1, y));
    }
    (seam_delta - interior_delta) / stitched.height() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(w: u32, h: u32, c: Rgb, z: f32) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                fb.set(x, y, c, z);
            }
        }
        fb
    }

    #[test]
    fn depth_composite_takes_nearest() {
        let near = solid(8, 8, Rgb(255, 0, 0), 0.2);
        let far = solid(8, 8, Rgb(0, 255, 0), 0.8);
        let mut dst = Framebuffer::new(8, 8);
        depth_composite(&mut dst, &[&far, &near]);
        assert_eq!(dst.get(4, 4), Rgb(255, 0, 0));
        assert_eq!(dst.depth_at(4, 4), 0.2);
    }

    #[test]
    fn depth_composite_order_independent() {
        let a = solid(8, 8, Rgb(255, 0, 0), 0.3);
        let mut b = solid(8, 8, Rgb(0, 0, 255), 0.6);
        // Make b nearer in one quadrant.
        for y in 0..4 {
            for x in 0..4 {
                b.set(x, y, Rgb(0, 0, 255), 0.1);
            }
        }
        let mut d1 = Framebuffer::new(8, 8);
        depth_composite(&mut d1, &[&a, &b]);
        let mut d2 = Framebuffer::new(8, 8);
        depth_composite(&mut d2, &[&b, &a]);
        assert_eq!(d1.diff_fraction(&d2, 0.0), 0.0, "opaque compositing commutes");
        assert_eq!(d1.get(2, 2), Rgb(0, 0, 255));
        assert_eq!(d1.get(6, 6), Rgb(255, 0, 0));
    }

    #[test]
    fn background_pixels_do_not_overwrite() {
        let mut dst = solid(4, 4, Rgb(9, 9, 9), 0.5);
        let empty = Framebuffer::new(4, 4); // all depth = 1.0
        depth_composite(&mut dst, &[&empty]);
        assert_eq!(dst.get(1, 1), Rgb(9, 9, 9), "far-plane pixels are background");
    }

    #[test]
    #[should_panic]
    fn depth_composite_size_mismatch_panics() {
        let a = Framebuffer::new(4, 4);
        let mut dst = Framebuffer::new(8, 8);
        depth_composite(&mut dst, &[&a]);
    }

    #[test]
    fn stitch_covers_viewport() {
        let full = Viewport::new(8, 8);
        let tiles = full.split_tiles(2, 1);
        let left = solid(4, 8, Rgb(255, 0, 0), 0.5);
        let right = solid(4, 8, Rgb(0, 255, 0), 0.5);
        let mut dst = Framebuffer::new(8, 8);
        stitch_tiles(&mut dst, &[(tiles[0], &left), (tiles[1], &right)]);
        assert_eq!(dst.get(1, 1), Rgb(255, 0, 0));
        assert_eq!(dst.get(6, 6), Rgb(0, 255, 0));
    }

    #[test]
    fn seam_metric_flags_tears() {
        // Continuous image: same color both sides -> ~0.
        let cont = solid(8, 8, Rgb(100, 100, 100), 0.5);
        assert!(seam_discontinuity(&cont, 4).abs() < 1e-6);
        // Torn image: hard color step at the seam.
        let full = Viewport::new(8, 8);
        let tiles = full.split_tiles(2, 1);
        let left = solid(4, 8, Rgb(100, 100, 100), 0.5);
        let right = solid(4, 8, Rgb(200, 200, 200), 0.5);
        let mut torn = Framebuffer::new(8, 8);
        stitch_tiles(&mut torn, &[(tiles[0], &left), (tiles[1], &right)]);
        assert!(seam_discontinuity(&torn, 4) > 50.0);
    }

    #[test]
    fn bright_overlapping_layers_saturate_not_wrap() {
        // Two nearly-opaque bright layers: the accumulated channel
        // r + bg*(1-a) exceeds 1.0. It must clamp to 255, not wrap to a
        // small value.
        let mk = |d: f32| VolumeLayer {
            color: vec![[0.9, 0.9, 0.2, 0.2]; 4],
            view_distance: d,
            width: 2,
            height: 2,
        };
        let mut dst = Framebuffer::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                dst.set(x, y, Rgb(250, 250, 250), 0.5);
            }
        }
        blend_volume_layers(&mut dst, &mut [mk(5.0), mk(1.0)]);
        let px = dst.get(0, 0);
        assert_eq!(px.0, 255, "saturated, not wrapped: {px:?}");
        assert_eq!(px.1, 255);
        assert!(px.2 > 150, "blue accumulated sanely: {px:?}");
        // Depth untouched by color blending.
        assert_eq!(dst.depth_at(0, 0), 0.5);
    }

    #[test]
    fn compositors_bit_identical_across_thread_counts() {
        // Build a non-trivial source pair once.
        let mut a = Framebuffer::new(33, 17);
        let mut b = Framebuffer::new(33, 17);
        for y in 0..17u32 {
            for x in 0..33u32 {
                if (x + y) % 3 == 0 {
                    a.set(x, y, Rgb((x * 7) as u8, y as u8, 3), (x as f32) / 40.0);
                }
                if (x * y) % 4 == 1 {
                    b.set(x, y, Rgb(9, (x * 5) as u8, y as u8), (y as f32) / 20.0);
                }
            }
        }
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let mut dst = Framebuffer::new(33, 17);
                depth_composite(&mut dst, &[&a, &b]);
                dst
            })
        };
        let one = run(1);
        for n in [2, 3, 8] {
            assert_eq!(one.diff_fraction(&run(n), 0.0), 0.0, "{n} threads");
        }
    }

    #[test]
    fn volume_layers_blend_in_view_order() {
        let w = 2;
        let h = 1;
        // Far layer: opaque red. Near layer: half-transparent blue.
        let far = VolumeLayer {
            color: vec![[1.0, 0.0, 0.0, 1.0]; 2],
            view_distance: 10.0,
            width: w,
            height: h,
        };
        let near = VolumeLayer {
            color: vec![[0.0, 0.0, 0.5, 0.5]; 2],
            view_distance: 1.0,
            width: w,
            height: h,
        };
        let mut dst = Framebuffer::new(w, h);
        // Intentionally pass near-first: the sort must fix the order.
        blend_volume_layers(&mut dst, &mut [near, far]);
        let px = dst.get(0, 0);
        // red*0.5 + blue contribution.
        assert!(px.0 > 100 && px.0 < 150, "red attenuated: {px:?}");
        assert!(px.2 > 100, "blue present: {px:?}");
    }
}
