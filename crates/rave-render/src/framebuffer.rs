//! Color + depth framebuffers.
//!
//! Sizing matches the paper's arithmetic: a 200×200 framebuffer at 24
//! bits-per-pixel is exactly the "120kB for a 200x200 image" the Zaurus
//! must import (§4.4).

use rave_math::Viewport;
use std::io::Write;

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    pub const BLACK: Rgb = Rgb(0, 0, 0);
    pub const WHITE: Rgb = Rgb(255, 255, 255);

    /// From float RGB in [0,1], clamped.
    pub fn from_f32(r: f32, g: f32, b: f32) -> Self {
        let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5) as u8;
        Rgb(q(r), q(g), q(b))
    }

    /// Euclidean distance in 8-bit RGB space (seam/tear metrics).
    pub fn distance(self, o: Rgb) -> f32 {
        let d0 = self.0 as f32 - o.0 as f32;
        let d1 = self.1 as f32 - o.1 as f32;
        let d2 = self.2 as f32 - o.2 as f32;
        (d0 * d0 + d1 * d1 + d2 * d2).sqrt()
    }
}

/// A color + depth render target. Depth follows the GL convention:
/// cleared to `1.0` (far), smaller is closer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<Rgb>,
    depth: Vec<f32>,
}

impl Framebuffer {
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "zero-sized framebuffer");
        let n = (width as usize) * (height as usize);
        Self { width, height, color: vec![Rgb::BLACK; n], depth: vec![1.0; n] }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn viewport(&self) -> Viewport {
        Viewport::new(self.width, self.height)
    }

    pub fn pixel_count(&self) -> usize {
        self.color.len()
    }

    /// Bytes of the raw 24-bpp image (what travels to a thin client).
    pub fn color_bytes(&self) -> u64 {
        self.pixel_count() as u64 * 3
    }

    /// Bytes of color + 32-bit depth (what travels between render services
    /// for depth compositing).
    pub fn color_depth_bytes(&self) -> u64 {
        self.pixel_count() as u64 * 7
    }

    pub fn clear(&mut self, c: Rgb) {
        self.color.fill(c);
        self.depth.fill(1.0);
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.color[self.idx(x, y)]
    }

    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.idx(x, y)]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb, z: f32) {
        let i = self.idx(x, y);
        self.color[i] = c;
        self.depth[i] = z;
    }

    /// Depth-tested write: stores the fragment only if it is closer.
    /// Returns whether the write happened.
    #[inline]
    pub fn set_if_closer(&mut self, x: u32, y: u32, c: Rgb, z: f32) -> bool {
        let i = self.idx(x, y);
        if z < self.depth[i] {
            self.color[i] = c;
            self.depth[i] = z;
            true
        } else {
            false
        }
    }

    /// Copy `src` into this buffer with its top-left at `(dst_x, dst_y)`
    /// (tile stitching). Color-only: tiles from remote services replace
    /// whatever was there, including stale local pixels — exactly the
    /// behaviour that produces Fig 5's tearing when the tile is old.
    pub fn blit(&mut self, src: &Framebuffer, dst_x: u32, dst_y: u32) {
        assert!(
            dst_x + src.width <= self.width && dst_y + src.height <= self.height,
            "blit out of bounds"
        );
        for row in 0..src.height {
            let s0 = src.idx(0, row);
            let d0 = self.idx(dst_x, dst_y + row);
            let n = src.width as usize;
            self.color[d0..d0 + n].copy_from_slice(&src.color[s0..s0 + n]);
            self.depth[d0..d0 + n].copy_from_slice(&src.depth[s0..s0 + n]);
        }
    }

    /// Extract a sub-rectangle as its own framebuffer.
    pub fn crop(&self, vp: Viewport) -> Framebuffer {
        assert!(vp.x + vp.width <= self.width && vp.y + vp.height <= self.height);
        let mut out = Framebuffer::new(vp.width, vp.height);
        for row in 0..vp.height {
            let s0 = self.idx(vp.x, vp.y + row);
            let d0 = out.idx(0, row);
            let n = vp.width as usize;
            out.color[d0..d0 + n].copy_from_slice(&self.color[s0..s0 + n]);
            out.depth[d0..d0 + n].copy_from_slice(&self.depth[s0..s0 + n]);
        }
        out
    }

    /// Fraction of pixels that differ from `other` by more than `tol` in
    /// RGB distance. Panics on size mismatch.
    pub fn diff_fraction(&self, other: &Framebuffer, tol: f32) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let differing =
            self.color.iter().zip(&other.color).filter(|(a, b)| a.distance(**b) > tol).count();
        differing as f64 / self.pixel_count() as f64
    }

    /// Count of non-background (non-`bg`) pixels — coverage metric for
    /// tests ("did anything render?").
    pub fn coverage(&self, bg: Rgb) -> usize {
        self.color.iter().filter(|&&c| c != bg).count()
    }

    /// Write as binary PPM (P6) — the figure-regeneration output format.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width as usize * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.get(x, y);
                row.extend_from_slice(&[c.0, c.1, c.2]);
            }
            w.write_all(&row)?;
        }
        Ok(())
    }

    /// Raw color bytes row-major RGB (the thin-client wire payload).
    pub fn to_rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 3);
        for c in &self.color {
            out.extend_from_slice(&[c.0, c.1, c.2]);
        }
        out
    }

    /// Rebuild from raw RGB bytes (depth unknown → far).
    pub fn from_rgb_bytes(width: u32, height: u32, bytes: &[u8]) -> Option<Framebuffer> {
        if bytes.len() != (width as usize) * (height as usize) * 3 {
            return None;
        }
        let mut fb = Framebuffer::new(width, height);
        for (i, px) in bytes.chunks_exact(3).enumerate() {
            fb.color[i] = Rgb(px[0], px[1], px[2]);
        }
        Some(fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_200x200_is_120kb() {
        let fb = Framebuffer::new(200, 200);
        assert_eq!(fb.color_bytes(), 120_000);
    }

    #[test]
    fn sizing_640x480_is_920kb() {
        // §5.1: "a 640x480 24 bits-per-pixel image (920Kb in size)".
        let fb = Framebuffer::new(640, 480);
        assert_eq!(fb.color_bytes(), 921_600);
    }

    #[test]
    fn clear_resets_color_and_depth() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set(1, 1, Rgb::WHITE, 0.5);
        fb.clear(Rgb(10, 20, 30));
        assert_eq!(fb.get(1, 1), Rgb(10, 20, 30));
        assert_eq!(fb.depth_at(1, 1), 1.0);
    }

    #[test]
    fn depth_test_keeps_closer_fragment() {
        let mut fb = Framebuffer::new(2, 2);
        assert!(fb.set_if_closer(0, 0, Rgb(1, 1, 1), 0.5));
        assert!(!fb.set_if_closer(0, 0, Rgb(2, 2, 2), 0.7), "farther loses");
        assert_eq!(fb.get(0, 0), Rgb(1, 1, 1));
        assert!(fb.set_if_closer(0, 0, Rgb(3, 3, 3), 0.2), "closer wins");
        assert_eq!(fb.get(0, 0), Rgb(3, 3, 3));
    }

    #[test]
    fn blit_places_tile() {
        let mut dst = Framebuffer::new(8, 8);
        let mut src = Framebuffer::new(3, 2);
        src.set(0, 0, Rgb::WHITE, 0.1);
        src.set(2, 1, Rgb(9, 9, 9), 0.2);
        dst.blit(&src, 4, 5);
        assert_eq!(dst.get(4, 5), Rgb::WHITE);
        assert_eq!(dst.get(6, 6), Rgb(9, 9, 9));
        assert_eq!(dst.depth_at(4, 5), 0.1);
        assert_eq!(dst.get(0, 0), Rgb::BLACK);
    }

    #[test]
    #[should_panic]
    fn blit_out_of_bounds_panics() {
        let mut dst = Framebuffer::new(4, 4);
        let src = Framebuffer::new(3, 3);
        dst.blit(&src, 2, 2);
    }

    #[test]
    fn crop_blit_roundtrip() {
        let mut fb = Framebuffer::new(10, 10);
        fb.set(5, 5, Rgb(100, 0, 0), 0.4);
        let vp = Viewport::with_origin(4, 4, 3, 3);
        let tile = fb.crop(vp);
        assert_eq!(tile.get(1, 1), Rgb(100, 0, 0));
        let mut dst = Framebuffer::new(10, 10);
        dst.blit(&tile, 4, 4);
        assert_eq!(dst.get(5, 5), Rgb(100, 0, 0));
        assert_eq!(dst.depth_at(5, 5), 0.4);
    }

    #[test]
    fn diff_fraction_detects_changes() {
        let a = Framebuffer::new(10, 10);
        let mut b = Framebuffer::new(10, 10);
        assert_eq!(a.diff_fraction(&b, 0.0), 0.0);
        for x in 0..10 {
            b.set(x, 0, Rgb::WHITE, 0.1);
        }
        assert!((a.diff_fraction(&b, 0.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let mut buf = Vec::new();
        fb.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(buf.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn rgb_bytes_roundtrip() {
        let mut fb = Framebuffer::new(5, 4);
        fb.set(2, 3, Rgb(7, 8, 9), 0.3);
        let bytes = fb.to_rgb_bytes();
        let back = Framebuffer::from_rgb_bytes(5, 4, &bytes).unwrap();
        assert_eq!(back.get(2, 3), Rgb(7, 8, 9));
        assert!(Framebuffer::from_rgb_bytes(5, 5, &bytes).is_none());
    }

    #[test]
    fn rgb_from_f32_clamps() {
        assert_eq!(Rgb::from_f32(2.0, -1.0, 0.5), Rgb(255, 0, 128));
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        Framebuffer::new(0, 10);
    }
}
