//! Color + depth framebuffers.
//!
//! Sizing matches the paper's arithmetic: a 200×200 framebuffer at 24
//! bits-per-pixel is exactly the "120kB for a 200x200 image" the Zaurus
//! must import (§4.4).

use rave_math::Viewport;
use std::io::Write;

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    pub const BLACK: Rgb = Rgb(0, 0, 0);
    pub const WHITE: Rgb = Rgb(255, 255, 255);

    /// From float RGB in [0,1], clamped.
    pub fn from_f32(r: f32, g: f32, b: f32) -> Self {
        let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5) as u8;
        Rgb(q(r), q(g), q(b))
    }

    /// Euclidean distance in 8-bit RGB space (seam/tear metrics).
    pub fn distance(self, o: Rgb) -> f32 {
        let d0 = self.0 as f32 - o.0 as f32;
        let d1 = self.1 as f32 - o.1 as f32;
        let d2 = self.2 as f32 - o.2 as f32;
        (d0 * d0 + d1 * d1 + d2 * d2).sqrt()
    }
}

/// A color + depth render target. Depth follows the GL convention:
/// cleared to `1.0` (far), smaller is closer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<Rgb>,
    depth: Vec<f32>,
}

impl Framebuffer {
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "zero-sized framebuffer");
        let n = (width as usize) * (height as usize);
        Self { width, height, color: vec![Rgb::BLACK; n], depth: vec![1.0; n] }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn viewport(&self) -> Viewport {
        Viewport::new(self.width, self.height)
    }

    pub fn pixel_count(&self) -> usize {
        self.color.len()
    }

    /// Bytes of the raw 24-bpp image (what travels to a thin client).
    pub fn color_bytes(&self) -> u64 {
        self.pixel_count() as u64 * 3
    }

    /// Bytes of color + 32-bit depth (what travels between render services
    /// for depth compositing).
    pub fn color_depth_bytes(&self) -> u64 {
        self.pixel_count() as u64 * 7
    }

    pub fn clear(&mut self, c: Rgb) {
        self.color.fill(c);
        self.depth.fill(1.0);
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.color[self.idx(x, y)]
    }

    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.idx(x, y)]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb, z: f32) {
        let i = self.idx(x, y);
        self.color[i] = c;
        self.depth[i] = z;
    }

    /// Depth-tested write: stores the fragment only if it is closer.
    /// Returns whether the write happened.
    #[inline]
    pub fn set_if_closer(&mut self, x: u32, y: u32, c: Rgb, z: f32) -> bool {
        let i = self.idx(x, y);
        if z < self.depth[i] {
            self.color[i] = c;
            self.depth[i] = z;
            true
        } else {
            false
        }
    }

    /// Read-only view of the color plane, row-major.
    pub fn color_pixels(&self) -> &[Rgb] {
        &self.color
    }

    /// Read-only view of the depth plane, row-major.
    pub fn depth_pixels(&self) -> &[f32] {
        &self.depth
    }

    /// Split the buffer into at most `max_bands` horizontal row bands of
    /// near-equal height, top to bottom. Each band is an exclusive
    /// mutable view over a **contiguous** region of the color and depth
    /// planes, so bands can be handed to parallel workers with no locks
    /// and no false sharing (bands never straddle a row). The union of
    /// the bands is exactly the buffer; bands never overlap.
    pub fn row_bands(&mut self, max_bands: u32) -> Vec<FramebufferBand<'_>> {
        let n = max_bands.clamp(1, self.height) as usize;
        let width = self.width;
        let height = self.height as usize;
        let w = width as usize;
        let mut bands = Vec::with_capacity(n);
        let (mut color, mut depth): (&mut [Rgb], &mut [f32]) = (&mut self.color, &mut self.depth);
        let mut row = 0usize;
        for k in 0..n {
            let end_row = height * (k + 1) / n;
            let rows = end_row - row;
            let (c, crest) = color.split_at_mut(rows * w);
            let (d, drest) = depth.split_at_mut(rows * w);
            bands.push(FramebufferBand {
                y0: row as u32,
                width,
                rows: rows as u32,
                color: c,
                depth: d,
            });
            color = crest;
            depth = drest;
            row = end_row;
        }
        bands
    }

    /// The whole buffer as a single band (the serial path's view).
    pub fn as_band(&mut self) -> FramebufferBand<'_> {
        FramebufferBand {
            y0: 0,
            width: self.width,
            rows: self.height,
            color: &mut self.color,
            depth: &mut self.depth,
        }
    }

    /// Copy `src` into this buffer with its top-left at `(dst_x, dst_y)`
    /// (tile stitching). Color-only: tiles from remote services replace
    /// whatever was there, including stale local pixels — exactly the
    /// behaviour that produces Fig 5's tearing when the tile is old.
    pub fn blit(&mut self, src: &Framebuffer, dst_x: u32, dst_y: u32) {
        assert!(
            dst_x + src.width <= self.width && dst_y + src.height <= self.height,
            "blit out of bounds"
        );
        for row in 0..src.height {
            let s0 = src.idx(0, row);
            let d0 = self.idx(dst_x, dst_y + row);
            let n = src.width as usize;
            self.color[d0..d0 + n].copy_from_slice(&src.color[s0..s0 + n]);
            self.depth[d0..d0 + n].copy_from_slice(&src.depth[s0..s0 + n]);
        }
    }

    /// Extract a sub-rectangle as its own framebuffer.
    pub fn crop(&self, vp: Viewport) -> Framebuffer {
        assert!(vp.x + vp.width <= self.width && vp.y + vp.height <= self.height);
        let mut out = Framebuffer::new(vp.width, vp.height);
        for row in 0..vp.height {
            let s0 = self.idx(vp.x, vp.y + row);
            let d0 = out.idx(0, row);
            let n = vp.width as usize;
            out.color[d0..d0 + n].copy_from_slice(&self.color[s0..s0 + n]);
            out.depth[d0..d0 + n].copy_from_slice(&self.depth[s0..s0 + n]);
        }
        out
    }

    /// Fraction of pixels that differ from `other` by more than `tol` in
    /// RGB distance. Panics on size mismatch.
    pub fn diff_fraction(&self, other: &Framebuffer, tol: f32) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let differing =
            self.color.iter().zip(&other.color).filter(|(a, b)| a.distance(**b) > tol).count();
        differing as f64 / self.pixel_count() as f64
    }

    /// Count of non-background (non-`bg`) pixels — coverage metric for
    /// tests ("did anything render?").
    pub fn coverage(&self, bg: Rgb) -> usize {
        self.color.iter().filter(|&&c| c != bg).count()
    }

    /// Write as binary PPM (P6) — the figure-regeneration output format.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width as usize * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.get(x, y);
                row.extend_from_slice(&[c.0, c.1, c.2]);
            }
            w.write_all(&row)?;
        }
        Ok(())
    }

    /// Raw color bytes row-major RGB (the thin-client wire payload).
    pub fn to_rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 3);
        for c in &self.color {
            out.extend_from_slice(&[c.0, c.1, c.2]);
        }
        out
    }

    /// Rebuild from raw RGB bytes (depth unknown → far).
    pub fn from_rgb_bytes(width: u32, height: u32, bytes: &[u8]) -> Option<Framebuffer> {
        if bytes.len() != (width as usize) * (height as usize) * 3 {
            return None;
        }
        let mut fb = Framebuffer::new(width, height);
        for (i, px) in bytes.chunks_exact(3).enumerate() {
            fb.color[i] = Rgb(px[0], px[1], px[2]);
        }
        Some(fb)
    }
}

/// An exclusive view over a contiguous run of framebuffer rows
/// (`[y_start, y_end)`), produced by [`Framebuffer::row_bands`].
/// Coordinates passed to accessors are **framebuffer-local** (same `y`
/// you would pass to [`Framebuffer::set`]); the band translates them to
/// its own slice offsets. Out-of-band rows are a `debug_assert`, exactly
/// like out-of-range pixels on the full buffer.
#[derive(Debug)]
pub struct FramebufferBand<'a> {
    y0: u32,
    width: u32,
    rows: u32,
    color: &'a mut [Rgb],
    depth: &'a mut [f32],
}

impl FramebufferBand<'_> {
    /// First framebuffer row covered by this band.
    pub fn y_start(&self) -> u32 {
        self.y0
    }

    /// One past the last framebuffer row covered by this band.
    pub fn y_end(&self) -> u32 {
        self.y0 + self.rows
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y >= self.y0 && y < self.y0 + self.rows);
        ((y - self.y0) as usize) * (self.width as usize) + x as usize
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.color[self.idx(x, y)]
    }

    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.idx(x, y)]
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb, z: f32) {
        let i = self.idx(x, y);
        self.color[i] = c;
        self.depth[i] = z;
    }

    /// Color-only write (depth untouched) — volume blending over
    /// already-written depth.
    #[inline]
    pub fn set_color(&mut self, x: u32, y: u32, c: Rgb) {
        let i = self.idx(x, y);
        self.color[i] = c;
    }

    /// Depth-tested write, identical semantics to
    /// [`Framebuffer::set_if_closer`].
    #[inline]
    pub fn set_if_closer(&mut self, x: u32, y: u32, c: Rgb, z: f32) -> bool {
        let i = self.idx(x, y);
        if z < self.depth[i] {
            self.color[i] = c;
            self.depth[i] = z;
            true
        } else {
            false
        }
    }

    /// Mutable color slice of one framebuffer row restricted to
    /// `[x0, x1)` — contiguous-copy compositing (tile stitching).
    pub fn color_row_mut(&mut self, y: u32, x0: u32, x1: u32) -> &mut [Rgb] {
        let a = self.idx(x0, y);
        &mut self.color[a..a + (x1 - x0) as usize]
    }

    /// Mutable depth slice of one framebuffer row restricted to
    /// `[x0, x1)`.
    pub fn depth_row_mut(&mut self, y: u32, x0: u32, x1: u32) -> &mut [f32] {
        let a = self.idx(x0, y);
        &mut self.depth[a..a + (x1 - x0) as usize]
    }

    /// The band's whole color and depth planes (rows `[y_start, y_end)`),
    /// for contiguous per-pixel sweeps.
    pub fn planes_mut(&mut self) -> (&mut [Rgb], &mut [f32]) {
        (&mut *self.color, &mut *self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_200x200_is_120kb() {
        let fb = Framebuffer::new(200, 200);
        assert_eq!(fb.color_bytes(), 120_000);
    }

    #[test]
    fn sizing_640x480_is_920kb() {
        // §5.1: "a 640x480 24 bits-per-pixel image (920Kb in size)".
        let fb = Framebuffer::new(640, 480);
        assert_eq!(fb.color_bytes(), 921_600);
    }

    #[test]
    fn clear_resets_color_and_depth() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set(1, 1, Rgb::WHITE, 0.5);
        fb.clear(Rgb(10, 20, 30));
        assert_eq!(fb.get(1, 1), Rgb(10, 20, 30));
        assert_eq!(fb.depth_at(1, 1), 1.0);
    }

    #[test]
    fn depth_test_keeps_closer_fragment() {
        let mut fb = Framebuffer::new(2, 2);
        assert!(fb.set_if_closer(0, 0, Rgb(1, 1, 1), 0.5));
        assert!(!fb.set_if_closer(0, 0, Rgb(2, 2, 2), 0.7), "farther loses");
        assert_eq!(fb.get(0, 0), Rgb(1, 1, 1));
        assert!(fb.set_if_closer(0, 0, Rgb(3, 3, 3), 0.2), "closer wins");
        assert_eq!(fb.get(0, 0), Rgb(3, 3, 3));
    }

    #[test]
    fn blit_places_tile() {
        let mut dst = Framebuffer::new(8, 8);
        let mut src = Framebuffer::new(3, 2);
        src.set(0, 0, Rgb::WHITE, 0.1);
        src.set(2, 1, Rgb(9, 9, 9), 0.2);
        dst.blit(&src, 4, 5);
        assert_eq!(dst.get(4, 5), Rgb::WHITE);
        assert_eq!(dst.get(6, 6), Rgb(9, 9, 9));
        assert_eq!(dst.depth_at(4, 5), 0.1);
        assert_eq!(dst.get(0, 0), Rgb::BLACK);
    }

    #[test]
    #[should_panic]
    fn blit_out_of_bounds_panics() {
        let mut dst = Framebuffer::new(4, 4);
        let src = Framebuffer::new(3, 3);
        dst.blit(&src, 2, 2);
    }

    #[test]
    fn crop_blit_roundtrip() {
        let mut fb = Framebuffer::new(10, 10);
        fb.set(5, 5, Rgb(100, 0, 0), 0.4);
        let vp = Viewport::with_origin(4, 4, 3, 3);
        let tile = fb.crop(vp);
        assert_eq!(tile.get(1, 1), Rgb(100, 0, 0));
        let mut dst = Framebuffer::new(10, 10);
        dst.blit(&tile, 4, 4);
        assert_eq!(dst.get(5, 5), Rgb(100, 0, 0));
        assert_eq!(dst.depth_at(5, 5), 0.4);
    }

    #[test]
    fn diff_fraction_detects_changes() {
        let a = Framebuffer::new(10, 10);
        let mut b = Framebuffer::new(10, 10);
        assert_eq!(a.diff_fraction(&b, 0.0), 0.0);
        for x in 0..10 {
            b.set(x, 0, Rgb::WHITE, 0.1);
        }
        assert!((a.diff_fraction(&b, 0.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let mut buf = Vec::new();
        fb.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(buf.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn rgb_bytes_roundtrip() {
        let mut fb = Framebuffer::new(5, 4);
        fb.set(2, 3, Rgb(7, 8, 9), 0.3);
        let bytes = fb.to_rgb_bytes();
        let back = Framebuffer::from_rgb_bytes(5, 4, &bytes).unwrap();
        assert_eq!(back.get(2, 3), Rgb(7, 8, 9));
        assert!(Framebuffer::from_rgb_bytes(5, 5, &bytes).is_none());
    }

    #[test]
    fn rgb_from_f32_clamps() {
        assert_eq!(Rgb::from_f32(2.0, -1.0, 0.5), Rgb(255, 0, 128));
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        Framebuffer::new(0, 10);
    }

    #[test]
    fn row_bands_partition_rows_exactly() {
        let mut fb = Framebuffer::new(7, 11); // height not divisible
        for n in [1u32, 2, 3, 4, 11, 50] {
            let bands = fb.row_bands(n);
            assert_eq!(bands.len() as u32, n.min(11));
            let mut next = 0;
            for b in &bands {
                assert_eq!(b.y_start(), next, "bands contiguous");
                assert!(b.y_end() > b.y_start(), "no empty band");
                next = b.y_end();
            }
            assert_eq!(next, 11, "bands cover every row");
        }
    }

    #[test]
    fn band_writes_land_in_parent_buffer() {
        let mut fb = Framebuffer::new(4, 6);
        {
            let mut bands = fb.row_bands(3);
            // Middle band covers rows 2..4; write via fb-local coords.
            let b = &mut bands[1];
            assert_eq!((b.y_start(), b.y_end()), (2, 4));
            b.set(1, 2, Rgb(5, 6, 7), 0.25);
            assert!(b.set_if_closer(3, 3, Rgb::WHITE, 0.5));
            assert!(!b.set_if_closer(3, 3, Rgb(1, 1, 1), 0.9), "farther loses");
            b.set_color(0, 3, Rgb(9, 9, 9));
        }
        assert_eq!(fb.get(1, 2), Rgb(5, 6, 7));
        assert_eq!(fb.depth_at(1, 2), 0.25);
        assert_eq!(fb.get(3, 3), Rgb::WHITE);
        assert_eq!(fb.get(0, 3), Rgb(9, 9, 9));
        assert_eq!(fb.depth_at(0, 3), 1.0, "set_color leaves depth alone");
    }

    #[test]
    fn as_band_is_whole_buffer() {
        let mut fb = Framebuffer::new(3, 3);
        let mut band = fb.as_band();
        assert_eq!((band.y_start(), band.y_end(), band.width()), (0, 3, 3));
        band.set(2, 2, Rgb::WHITE, 0.1);
        assert_eq!(fb.get(2, 2), Rgb::WHITE);
    }

    #[test]
    fn band_row_slices_are_contiguous() {
        let mut fb = Framebuffer::new(8, 4);
        {
            let mut bands = fb.row_bands(2);
            let row = bands[1].color_row_mut(2, 2, 6);
            assert_eq!(row.len(), 4);
            row.fill(Rgb(1, 2, 3));
            bands[1].depth_row_mut(2, 2, 6).fill(0.5);
        }
        assert_eq!(fb.get(2, 2), Rgb(1, 2, 3));
        assert_eq!(fb.get(5, 2), Rgb(1, 2, 3));
        assert_eq!(fb.get(6, 2), Rgb::BLACK);
        assert_eq!(fb.depth_at(3, 2), 0.5);
    }
}
