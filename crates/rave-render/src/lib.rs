//! The RAVE rendering substrate: a deterministic software rasterizer plus
//! the machine cost models that stand in for the paper's 2004 GPUs.
//!
//! Two concerns, deliberately separated:
//!
//! 1. **Images** are produced by real rasterization ([`raster`],
//!    [`points`], [`volume`]) into a [`framebuffer::Framebuffer`]. Figures
//!    2/3/5 of the paper are regenerated from these actual pixels, and the
//!    tile/depth compositors ([`composite`]) operate on real buffers, so
//!    distribution correctness (seams, depth resolution) is exercised for
//!    real, not modelled.
//! 2. **Durations** come from [`machine::MachineProfile`] cost models (the
//!    render rates of the paper's testbed hardware), charged to the
//!    `rave-sim` virtual clock. Tables 2–4 derive from these.
//!
//! The renderer itself is deliberately simple — Gouraud-shaded z-buffered
//! scan conversion, point splatting, front-to-back volume ray casting —
//! i.e. feature-equivalent to the fixed-function Java3D pipeline the paper
//! used.

pub mod avatar;
pub mod composite;
pub mod framebuffer;
pub mod machine;
pub mod pick;
pub mod points;
pub mod raster;
pub mod renderer;
pub mod stereo;
pub mod volume;

pub use framebuffer::{Framebuffer, Rgb};
pub use machine::{MachineProfile, OffscreenMode, RenderCost};
pub use renderer::{RenderStats, Renderer};
pub use stereo::{Eye, StereoRig};
